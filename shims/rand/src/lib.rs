//! A minimal, offline, API-compatible stand-in for the `rand` facade.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], and the extension trait [`Rng`] with `gen_bool` /
//! `gen_range` — over any concrete generator (the vendored
//! `rand_chacha::ChaCha8Rng` here). Streams are deterministic per seed but
//! are **not** bit-compatible with upstream `rand`; derived experiment
//! numbers are regenerated rather than compared against old runs.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, trimmed to the `seed_from_u64` entry point the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift keeps the draw unbiased enough for
                // simulation workloads without a rejection loop.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The user-facing extension trait: sampling helpers over [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits; exact for p = 0 and p = 1.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Counting(u64);

    impl RngCore for Counting {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counting(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = Counting(7);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn gen_bool_rejects_bad_probability() {
        Counting(7).gen_bool(1.5);
    }
}
