//! A minimal, offline stand-in for the `crossbeam` facade, providing the
//! `channel` module surface this workspace uses: [`channel::bounded`] and
//! [`channel::unbounded`] MPMC channels with cloneable senders *and*
//! receivers, blocking `send`/`recv`, and a draining [`channel::Receiver::iter`].
//!
//! Built on `std::sync::{Mutex, Condvar}` — slower than real crossbeam,
//! but semantically equivalent for the simulator's coordination patterns.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned when receiving from an empty channel with no
    /// senders left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers blocked on an empty queue so they can
                // observe disconnection.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails
        /// only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.0.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty. Fails
        /// only when the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }

        /// Returns a blocking iterator that yields until the channel is
        /// empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    /// Creates a channel holding at most `cap` in-flight messages. A
    /// zero-capacity rendezvous degenerates to capacity 1 here; the
    /// simulator only uses `cap >= 1`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};
    use std::thread;

    #[test]
    fn unbounded_fan_in_drains_with_iter() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for j in 0..10 {
                        tx.send(i * 10 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got.len(), 40);
        assert_eq!(got[0], 0);
        assert_eq!(got[39], 39);
    }

    #[test]
    fn bounded_ping_pong() {
        let (tx, rx) = bounded::<u32>(1);
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        h.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
