//! A minimal, offline stand-in for the `bytes` crate: a cheaply cloneable
//! immutable byte container with the small API surface this workspace
//! uses (`from_static`, `From<Vec<u8>>`, slice deref).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub enum Bytes {
    /// Borrowed from a `'static` location — zero-cost clone.
    Static(&'static [u8]),
    /// Shared heap allocation — reference-counted clone.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::Static(bytes)
    }

    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes::Static(&[])
    }

    /// Returns the contents as a byte slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(s) => s,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_ref().len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.as_ref().is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Shared(v.into())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::Static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::Static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_agree() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[1..3], b"el");
    }

    #[test]
    fn iterates_as_slice() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let sum: u8 = a.iter().sum();
        assert_eq!(sum, 6);
    }
}
