//! A minimal, offline stand-in for `rand_chacha`, exposing
//! [`ChaCha8Rng`] over the vendored `rand` trait shim.
//!
//! The core is a genuine ChaCha8 block function (8 rounds), so streams
//! have the usual statistical quality and are fully deterministic per
//! seed. `seed_from_u64` expands the seed with SplitMix64 rather than
//! upstream's scheme, so streams are **not** bit-compatible with the real
//! crate — experiment tables derived from seeded runs are regenerated,
//! not compared against historical output.

#![forbid(unsafe_code)]

pub use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha-8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    word: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Builds a generator from a full 32-byte key.
    pub fn from_key(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16 are the block counter and nonce, starting at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, out) in self.block.iter_mut().enumerate() {
            *out = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit counter across words 12 and 13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        // More than one 16-word block worth of draws.
        let draws: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert!(distinct.len() > 30, "stream should not cycle early");
    }
}
