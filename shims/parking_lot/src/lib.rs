//! A minimal, offline stand-in for `parking_lot`, backed by
//! `std::sync::Mutex`. Matches the upstream ergonomics this workspace
//! relies on: `lock()` returns the guard directly (poisoning is ignored —
//! upstream parking_lot has no poisoning either).

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError, TryLockError};

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic while a prior
    /// guard was held does not poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking; `None` if another
    /// holder has it right now (parking_lot returns `Option`, not a
    /// `Result`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_skips_a_held_lock() {
        let m = Mutex::new(1);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none(), "held elsewhere");
        }
        assert_eq!(*m.try_lock().expect("free now"), 1);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
