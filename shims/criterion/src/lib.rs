//! A minimal, offline stand-in for `criterion`: same macro and builder
//! surface (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`), but measurement
//! is a simple fixed-iteration wall-clock average printed to stdout — no
//! statistics, plots, or baselines. Good enough to keep benches compiling
//! and runnable in a hermetic environment.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Number of timed iterations per benchmark.
const ITERS: u32 = 10;

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration.
        hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERS {
            hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    }
}

fn report(name: &str, nanos: f64) {
    let (value, unit) = if nanos >= 1e9 {
        (nanos / 1e9, "s")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "us")
    } else {
        (nanos, "ns")
    };
    println!("bench {name:<50} {value:>10.3} {unit}/iter");
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    report(name, b.nanos_per_iter);
}

/// Identifies a parameterized benchmark within a group.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combines a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without a parameter, labeled by `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= ITERS);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("p", 7), &7u64, |b, &p| {
            b.iter(|| {
                seen = p;
                p
            })
        });
        g.finish();
        assert_eq!(seen, 7);
    }
}
