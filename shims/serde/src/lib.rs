//! A minimal, offline, API-compatible stand-in for the `serde` facade.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `serde` cannot be fetched. This shim keeps the workspace
//! compiling and behaving by providing the small surface the repo actually
//! uses: `Serialize`/`Deserialize` traits (derivable via the sibling
//! `serde_derive` shim) over a self-describing [`Content`] tree that
//! `serde_json` (also shimmed) renders and parses.
//!
//! It is **not** wire-compatible with upstream serde; it only guarantees
//! that values this workspace serializes round-trip through this
//! workspace's `serde_json`.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both traits speak.
///
/// Numbers are kept as their exact decimal rendering so that `u128` and
/// `f64` survive round-trips without precision games.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number, stored as its decimal text.
    Num(String),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Content)>),
}

/// Errors surfaced when rebuilding a value from [`Content`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Upstream-compatible alias: anything deserializable without borrowing.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

fn num_err<T>(c: &Content, ty: &str) -> Result<T, DeError> {
    Err(DeError(format!("expected {ty}, found {c:?}")))
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Num(s) => s
                        .parse::<$t>()
                        .map_err(|e| DeError(format!("bad {}: {e}", stringify!($t)))),
                    other => num_err(other, stringify!($t)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if self.is_finite() {
                    let mut s = format!("{self}");
                    // JSON numbers need a decimal point or exponent to stay
                    // floats on the way back in; `{}` drops ".0".
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        s.push_str(".0");
                    }
                    Content::Num(s)
                } else {
                    Content::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Num(s) => s
                        .parse::<$t>()
                        .map_err(|e| DeError(format!("bad {}: {e}", stringify!($t)))),
                    Content::Null => Ok(<$t>::NAN),
                    other => num_err(other, stringify!($t)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => num_err(other, "bool"),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => num_err(other, "string"),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => num_err(other, "char"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => num_err(other, "sequence"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => num_err(other, "map"),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $t::from_content(
                                it.next().ok_or_else(|| DeError("tuple too short".into()))?,
                            )?,
                        )+))
                    }
                    other => num_err(other, "tuple"),
                }
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()), Ok(42));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5),);
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_content(&o.to_content()), Ok(None));
        let t = (1u8, "x".to_string());
        assert_eq!(
            <(u8, String)>::from_content(&t.to_content()),
            Ok((1u8, "x".to_string()))
        );
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        match 2.0f64.to_content() {
            Content::Num(s) => assert_eq!(s, "2.0"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
