//! A minimal JSON front-end for the vendored serde shim: renders and
//! parses the shim's [`Content`] tree. Supports exactly the API this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`].

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Errors from JSON parsing or value rebuilding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convenience alias mirroring upstream.
pub type Result<T> = std::result::Result<T, Error>;

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::Num(n) => out.push_str(n),
        Content::Str(s) => escape(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_content(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(Error(format!("expected number at byte {start}")));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .to_string())
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        other => {
                            return Err(Error(format!("bad array token {other:?}")));
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        other => {
                            return Err(Error(format!("bad object token {other:?}")));
                        }
                    }
                }
            }
            _ => Ok(Content::Num(self.parse_number()?)),
        }
    }
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(|e| Error(e.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
    }
}
