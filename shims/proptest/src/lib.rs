//! A minimal, offline stand-in for `proptest`: the same macro and
//! strategy surface this workspace uses (`proptest!`, `prop_assert!`,
//! integer/float range strategies, `collection::vec`,
//! `sample::subsequence`, `prop_map`, `prop_shuffle`, tuple strategies,
//! `ProptestConfig::with_cases`), implemented as plain seeded random
//! sampling. There is **no shrinking** — a failing case panics with the
//! sampled values in the assertion message instead of a minimized
//! counterexample. Runs are deterministic per test binary.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Randomly permutes generated collections (only available when
        /// `Self::Value` is a `Vec`).
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_shuffle`].
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
        type Value = Vec<T>;

        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.sample(rng);
            rng.shuffle_len(v.len(), |a, b| v.swap(a, b));
            v
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

pub mod test_runner {
    //! Run configuration and the deterministic RNG behind sampling.

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` samples.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; a leaner default keeps the
            // hermetic suite fast while still exercising the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 — small, seedable, and deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator `proptest!` uses; every run of a test
        /// binary sees the same case sequence.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5354_505f_5052_4f50, // "STP_PROP"
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Fisher–Yates over indices `0..len`, swapping through `swap`.
        pub fn shuffle_len(&mut self, len: usize, mut swap: impl FnMut(usize, usize)) {
            for i in (1..len).rev() {
                let j = self.below(i as u64 + 1) as usize;
                swap(i, j);
            }
        }
    }

    /// A size specification accepted by collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Smallest size, inclusive.
        pub min: usize,
        /// Largest size, inclusive.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        /// Draws a size uniformly from the range.
        pub fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::{SizeRange, TestRng};

    /// Strategy producing `Vec`s of values from `element`, with lengths
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from fixed collections.

    use crate::strategy::Strategy;
    use crate::test_runner::{SizeRange, TestRng};

    /// Strategy producing order-preserving subsequences of `values`, with
    /// lengths drawn from `size` (clamped to the source length).
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> SubsequenceStrategy<T> {
        SubsequenceStrategy {
            values,
            size: size.into(),
        }
    }

    /// Strategy returned by [`subsequence`].
    pub struct SubsequenceStrategy<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;

        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let max = self.size.max.min(self.values.len());
            let min = self.size.min.min(max);
            let want = SizeRange { min, max }.sample(rng);
            // Reservoir-free selection: shuffle indices, keep the first
            // `want`, restore source order.
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            rng.shuffle_len(idx.len(), |a, b| idx.swap(a, b));
            idx.truncate(want);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniform booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Upstream-compatible alias so `prop::bool::ANY` etc. resolve.
    pub use crate as prop;
}

/// Asserts a condition inside a property; failure panics with the message
/// (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Binds `name in strategy` argument lists inside generated test bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident;) => {};
}

/// Expands each property into a plain test function running `cases`
/// sampled iterations.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng; $($args)*);
                $body
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// The `proptest!` block: declares property tests with `arg in strategy`
/// parameters and an optional `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, p in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&p));
        }

        #[test]
        fn map_applies(x in evens()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u16..4, prop::bool::ANY), 0..10),
        ) {
            prop_assert!(v.len() < 10);
            for (n, _b) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn subsequence_preserves_relative_order(
            s in prop::sample::subsequence(vec![1u8, 2, 3, 4, 5], 0..=5),
        ) {
            let mut sorted = s.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&s, &sorted);
        }

        #[test]
        fn shuffle_keeps_elements(
            s in prop::sample::subsequence(vec![1u8, 2, 3, 4], 0..=4).prop_shuffle(),
        ) {
            prop_assert!(s.len() <= 4);
            for x in &s {
                prop_assert!((1..=4).contains(x));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_is_used_without_header(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }
}
