//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The build environment has no registry access, so `syn`/`quote` are
//! unavailable; the input item is parsed directly from the raw token
//! stream. Supported shapes — which cover every derive in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (including newtypes),
//! * enums whose variants are unit, newtype/tuple, or struct-like.
//!
//! Generics are intentionally unsupported (no workspace type needs them);
//! hitting that limit is a compile error rather than silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// A named field plus the one field attribute the shim honours:
/// `#[serde(default)]` / `#[serde(default = "path")]` (a missing key
/// deserializes via `Default::default()` or the named function instead of
/// being fed `Content::Null`). `default` is `None` for no attribute,
/// `Some(None)` for the bare form, `Some(Some(path))` for the function
/// form.
#[derive(Debug)]
struct Field {
    name: String,
    default: Option<Option<String>>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Splits a token list at top-level commas. Commas nested in generic
/// angle brackets (`BTreeMap<String, u32>`) are not split points; angle
/// brackets are tracked by depth since they are not token groups.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn strip_prefix(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // the attribute's bracket group follows
                if matches!(&tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// The `#[serde(default)]` / `#[serde(default = "path")]` attribute of an
/// (un-stripped) field segment, if present — possibly alongside other
/// serde arguments, which the shim ignores. See [`Field::default`] for
/// the encoding.
fn serde_default(segment: &[TokenTree]) -> Option<Option<String>> {
    for w in segment.windows(2) {
        if !matches!(&w[0], TokenTree::Punct(p) if p.as_char() == '#') {
            continue;
        }
        let TokenTree::Group(attr) = &w[1] else {
            continue;
        };
        let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
        if !matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            continue;
        }
        let Some(TokenTree::Group(args)) = toks.get(1) else {
            continue;
        };
        for arg in split_commas(&args.stream().into_iter().collect::<Vec<_>>()) {
            if !matches!(arg.first(), Some(TokenTree::Ident(id)) if id.to_string() == "default") {
                continue;
            }
            match arg.len() {
                // `default`
                1 => return Some(None),
                // `default = "path"`
                3 if matches!(&arg[1], TokenTree::Punct(p) if p.as_char() == '=') => {
                    if let TokenTree::Literal(lit) = &arg[2] {
                        let path = lit.to_string();
                        let path = path.trim_matches('"').to_string();
                        return Some(Some(path));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// The first identifier of a (stripped) field segment, i.e. the field name.
fn field_name(segment: &[TokenTree]) -> Option<String> {
    let segment = strip_prefix(segment);
    match segment.first() {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<Field> {
    split_commas(group_tokens)
        .iter()
        .filter_map(|seg| {
            field_name(seg).map(|name| Field {
                name,
                default: serde_default(seg),
            })
        })
        .collect()
}

fn parse_variant(segment: &[TokenTree]) -> Option<Variant> {
    let segment = strip_prefix(segment);
    let name = match segment.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    let kind = match segment.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantKind::Named(parse_named_fields(&toks))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantKind::Tuple(split_commas(&toks).len())
        }
        _ => VariantKind::Unit,
    };
    Some(Variant { name, kind })
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let rest = strip_prefix(&tokens);
    let mut it = rest.iter();
    let kw = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => continue,
            None => return Err("no struct/enum keyword found".into()),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    let body = it.next();
    if matches!(body, Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "shim serde_derive does not support generic type `{name}`"
        ));
    }
    match (kw.as_str(), body) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Shape::NamedStruct {
                name,
                fields: parse_named_fields(&toks),
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Shape::TupleStruct {
                name,
                arity: split_commas(&toks).len(),
            })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Shape::TupleStruct { name, arity: 0 })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_commas(&toks)
                .iter()
                .filter_map(|seg| parse_variant(seg))
                .collect();
            Ok(Shape::Enum { name, variants })
        }
        _ => Err(format!("unsupported item shape for `{name}`")),
    }
}

fn field_lookup(field: &Field, source: &str) -> String {
    let name = &field.name;
    match &field.default {
        Some(fallback) => {
            let absent = match fallback {
                Some(path) => format!("{path}()"),
                None => "::std::default::Default::default()".to_string(),
            };
            format!(
                "match {source}.iter().find(|(k, _)| k == \"{name}\") {{\
                     Some((_, v)) => ::serde::Deserialize::from_content(v)?,\
                     None => {absent},\
                 }}"
            )
        }
        None => format!(
            "::serde::Deserialize::from_content({source}.iter().find(|(k, _)| k == \"{name}\")\
             .map(|(_, v)| v).unwrap_or(&::serde::Content::Null))?"
        ),
    }
}

fn emit_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = match arity {
                0 => "::serde::Content::Null".to_string(),
                1 => "::serde::Serialize::to_content(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::Content::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_content(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn emit_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {},", f.name, field_lookup(f, "entries")))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match c {{\n\
                             ::serde::Content::Map(entries) => Ok({name} {{ {} }}),\n\
                             other => Err(::serde::DeError(format!(\n\
                                 \"expected map for {name}, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                inits.join(" ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = match arity {
                0 => format!("Ok({name})"),
                1 => format!("Ok({name}(::serde::Deserialize::from_content(c)?))"),
                n => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                        .collect();
                    format!(
                        "match c {{\n\
                             ::serde::Content::Seq(items) if items.len() == {n} => \
                                 Ok({name}({})),\n\
                             other => Err(::serde::DeError(format!(\n\
                                 \"expected {n}-seq for {name}, found {{other:?}}\"))),\n\
                         }}",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(v)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match v {{\n\
                                     ::serde::Content::Seq(items) if items.len() == {n} => \
                                         Ok({name}::{vname}({})),\n\
                                     other => Err(::serde::DeError(format!(\n\
                                         \"expected {n}-seq for {name}::{vname}, \
                                          found {{other:?}}\"))),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{}: {},", f.name, field_lookup(f, "fields")))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match v {{\n\
                                     ::serde::Content::Map(fields) => \
                                         Ok({name}::{vname} {{ {} }}),\n\
                                     other => Err(::serde::DeError(format!(\n\
                                         \"expected field map for {name}::{vname}, \
                                          found {{other:?}}\"))),\n\
                                 }},",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match c {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (k, v) = &entries[0];\n\
                                 match k.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::DeError(format!(\n\
                                         \"unknown {name} variant {{other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError(format!(\n\
                                 \"expected variant for {name}, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}

fn run(input: TokenStream, emit: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => emit(&shape)
            .parse()
            .expect("shim serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!(\"{msg}\");").parse().unwrap(),
    }
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, emit_serialize)
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, emit_deserialize)
}
