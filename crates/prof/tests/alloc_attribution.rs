//! With [`CountingAlloc`] installed as the global allocator, heap traffic
//! inside a profiled phase window is charged to that phase, and a prof
//! report flips to `alloc_metered: true`.

use stp_prof::CountingAlloc;
use stp_sim::{Phase, PhaseProfiler};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn allocations_inside_a_window_are_charged_to_its_phase() {
    let prof = PhaseProfiler::new(1);
    let grown = prof.time(Phase::SenderStep, || {
        let mut v: Vec<u64> = Vec::with_capacity(8_192);
        v.push(std::hint::black_box(7));
        v
    });
    assert_eq!(grown[0], 7);

    let report = prof.report("stp-prof", "alloc_attribution");
    assert!(report.alloc_metered, "global allocator shim not detected");
    let sender = report
        .phases
        .iter()
        .find(|p| p.phase == "sender_step")
        .expect("sender_step row present");
    // The Vec above cost one allocation of 8_192 * 8 bytes; anything else
    // the closure allocated only adds to the totals, so assert with >=.
    assert!(sender.allocs >= 1, "allocs = {}", sender.allocs);
    assert!(
        sender.alloc_bytes >= 8_192 * 8,
        "alloc_bytes = {}",
        sender.alloc_bytes
    );
    assert!(report.allocs_total >= sender.allocs);
    assert!(report.alloc_bytes_total >= sender.alloc_bytes);
}

#[test]
fn allocations_outside_any_window_stay_unattributed() {
    let prof = PhaseProfiler::new(1);
    // Allocate with no phase window open: the traffic lands in the
    // unattributed slot, not in the phase this thread profiles next.
    // (Only per-thread attribution can be asserted here — the counters
    // are process-global and the other test runs concurrently.)
    let stray: Vec<u8> = vec![0; 1 << 16];
    std::hint::black_box(&stray);
    prof.time(Phase::ReceiverStep, || std::hint::black_box(1));

    let report = prof.report("stp-prof", "alloc_attribution");
    // The stray 64 KiB must be in the run totals (unattributed counts
    // toward totals) but must not have been charged to receiver_step.
    assert!(report.alloc_bytes_total >= 1 << 16);
    if let Some(recv) = report.phases.iter().find(|p| p.phase == "receiver_step") {
        assert!(
            recv.alloc_bytes < 1 << 16,
            "stray allocation charged to receiver_step: {} bytes",
            recv.alloc_bytes
        );
    }
}
