//! # stp-prof — allocation metering for bench and test builds
//!
//! A counting [`GlobalAlloc`] that forwards every request to the system
//! allocator and reports the traffic to the phase-scoped profiler in
//! `stp-sim` via [`stp_sim::note_alloc`]. Install it per *binary* (the
//! global allocator is a link-time choice, which is why this lives in its
//! own crate instead of `stp-sim`, whose library code forbids `unsafe`):
//!
//! ```ignore
//! use stp_prof::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//! ```
//!
//! With the allocator installed, every allocation made inside a profiled
//! phase window (a [`PhaseProfiler::time`](stp_sim::PhaseProfiler::time)
//! closure or an engine step window) is charged to that phase; allocations
//! outside any window land in the profiler's *unattributed* slot. Without
//! it, `note_alloc` is never called and prof reports say
//! `alloc_metered: false` — the timers keep working either way.
//!
//! ## Caveats
//!
//! - Counting costs two relaxed atomic adds and a thread-local read per
//!   allocation. That is noise next to the allocation itself, but it is
//!   not *zero*: keep the shim out of latency-gated release binaries.
//! - `realloc` is charged for the full new size (the old block's size is
//!   not refunded), so byte totals measure allocator *pressure*, not live
//!   heap. Deallocations are deliberately not tracked.
//! - Attribution is per-thread: a worker thread allocating on behalf of a
//!   profiled coordinator charges the slot *its own* thread is in
//!   (usually unattributed), not the coordinator's phase.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};

/// A [`System`]-backed allocator that reports every allocation to
/// [`stp_sim::note_alloc`] before satisfying it.
///
/// Zero-sized and unit: install with `#[global_allocator]` as shown in
/// the crate docs.
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// GlobalAlloc contract. `note_alloc` only touches static atomics and a
// `Cell` thread-local (no allocation, no panic), so calling it from
// inside the allocator cannot recurse or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        stp_sim::note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        stp_sim::note_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        stp_sim::note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}
