//! Env-gated JSONL export shared by every experiment binary.
//!
//! All helpers are silent no-ops when `STP_TELEMETRY` is unset or empty,
//! so the tables the binaries print to stdout stay byte-identical to the
//! committed `results/*.txt`. Set the variable to a path to append JSON
//! Lines there (several binaries can share one file, as `run_all` does),
//! or to `-` to interleave them on stdout. Failures to open or write the
//! sink are reported on stderr and never abort an experiment: telemetry
//! is an observer, not a participant.

use std::time::Duration;
use stp_sim::{
    ExperimentSummary, FleetRecord, ProfRecord, ProgressMeter, SessionsRecord, StabilizationRecord,
    StallRecord, SweepOutcome, TelemetryWriter,
};

/// The writer configured by `STP_TELEMETRY`, or `None` when telemetry is
/// off or the sink failed to open (reported on stderr).
pub fn writer() -> Option<TelemetryWriter> {
    match TelemetryWriter::from_env() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("telemetry: cannot open sink, export disabled: {e}");
            None
        }
    }
}

/// Exports a whole sweep under an experiment tag: one `{"run": …}` line
/// per run, then the aggregate `{"report": …}` line.
pub fn export_sweep(experiment: &str, outcome: &SweepOutcome) {
    if let Some(mut w) = writer() {
        if let Err(e) = w.export_outcome(experiment, outcome) {
            eprintln!("telemetry: sweep export failed for {experiment}: {e}");
        }
    }
}

/// Exports an experiment digest — the one line every binary emits, even
/// the ones whose output is a certificate rather than a sweep.
pub fn export_summary(experiment: &str, rows: usize, ok: bool) {
    if let Some(mut w) = writer() {
        let summary = ExperimentSummary {
            experiment: experiment.to_string(),
            rows,
            ok,
        };
        if let Err(e) = w.emit_summary(&summary).and_then(|()| w.flush()) {
            eprintln!("telemetry: summary export failed for {experiment}: {e}");
        }
    }
}

/// Exports stabilization probe records — one `{"stabilization": …}` line
/// per certified grid cell.
pub fn export_stabilizations(experiment: &str, records: &[StabilizationRecord]) {
    if let Some(mut w) = writer() {
        let result = records
            .iter()
            .try_for_each(|r| w.emit_stabilization(r))
            .and_then(|()| w.flush());
        if let Err(e) = result {
            eprintln!("telemetry: stabilization export failed for {experiment}: {e}");
        }
    }
}

/// Exports churn-bench records — one `{"sessions": …}` line per lane.
pub fn export_sessions(experiment: &str, records: &[SessionsRecord]) {
    if let Some(mut w) = writer() {
        let result = records
            .iter()
            .try_for_each(|r| w.emit_sessions(r))
            .and_then(|()| w.flush());
        if let Err(e) = result {
            eprintln!("telemetry: sessions export failed for {experiment}: {e}");
        }
    }
}

/// Exports fleet-metrics snapshots — one `{"fleet": …}` line per
/// per-shard or aggregate sample.
pub fn export_fleet(experiment: &str, records: &[FleetRecord]) {
    if let Some(mut w) = writer() {
        let result = records
            .iter()
            .try_for_each(|r| w.emit_fleet(r))
            .and_then(|()| w.flush());
        if let Err(e) = result {
            eprintln!("telemetry: fleet export failed for {experiment}: {e}");
        }
    }
}

/// Exports profiler cost-attribution reports — one `{"prof": …}` line
/// per profiled lane or workload.
pub fn export_profs(experiment: &str, records: &[ProfRecord]) {
    if let Some(mut w) = writer() {
        let result = records
            .iter()
            .try_for_each(|r| w.emit_prof(r))
            .and_then(|()| w.flush());
        if let Err(e) = result {
            eprintln!("telemetry: prof export failed for {experiment}: {e}");
        }
    }
}

/// Exports stall-watchdog flags — one `{"stall": …}` line per flagged
/// session.
pub fn export_stalls(experiment: &str, records: &[StallRecord]) {
    if let Some(mut w) = writer() {
        let result = records
            .iter()
            .try_for_each(|r| w.emit_stall(r))
            .and_then(|()| w.flush());
        if let Err(e) = result {
            eprintln!("telemetry: stall export failed for {experiment}: {e}");
        }
    }
}

/// A progress meter that prints to stderr once per second — stdout stays
/// reserved for tables and telemetry.
pub fn progress() -> ProgressMeter {
    ProgressMeter::stderr(Duration::from_secs(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_noops_without_the_env_var() {
        // The test runner never sets STP_TELEMETRY, so this must not
        // write anywhere or panic.
        assert!(writer().is_none() || std::env::var("STP_TELEMETRY").is_ok());
        export_summary("test", 0, true);
    }
}
