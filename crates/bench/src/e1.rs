//! **E1 — Theorem 1 achievability.** The tight protocol solves
//! `X`-STP(dup) for the full repetition-free family (`|X| = α(m)`): every
//! sequence completes safely under duplication-storm, reorder-maximizing
//! and random adversaries.

use serde::{Deserialize, Serialize};
use stp_channel::{DupChannel, DupStormScheduler, RandomScheduler, ReorderScheduler, Scheduler};
use stp_core::alpha::alpha;
use stp_protocols::{ResendPolicy, TightFamily};
use stp_sim::{sweep_family, FamilyRunConfig};

/// One row of the E1 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E1Row {
    /// Alphabet (= domain) size.
    pub m: u16,
    /// `α(m)`: number of sequences transmitted.
    pub alpha: u128,
    /// Adversary label.
    pub adversary: String,
    /// Total runs (sequences × seeds).
    pub runs: usize,
    /// Runs that delivered the whole input safely.
    pub complete: usize,
    /// Mean messages sent per delivered item.
    pub sends_per_item: f64,
}

/// The adversaries E1 sweeps.
#[allow(clippy::type_complexity)]
fn adversaries() -> Vec<(&'static str, Box<dyn Fn(u64) -> Box<dyn Scheduler>>)> {
    vec![
        (
            "dup-storm",
            Box::new(|seed| Box::new(DupStormScheduler::new(seed, 0.9)) as Box<dyn Scheduler>),
        ),
        (
            "reorder-max",
            Box::new(|_| Box::new(ReorderScheduler::new()) as Box<dyn Scheduler>),
        ),
        (
            "random-0.5",
            Box::new(|seed| Box::new(RandomScheduler::new(seed, 0.5)) as Box<dyn Scheduler>),
        ),
    ]
}

/// Runs E1 for `m = 1..=max_m` with `seeds_per_case` seeds per adversary.
pub fn run(max_m: u16, seeds_per_case: u64) -> Vec<E1Row> {
    let mut rows = Vec::new();
    for m in 1..=max_m {
        let family = TightFamily::new(m, ResendPolicy::Once);
        for (label, mk) in adversaries() {
            let cfg = FamilyRunConfig {
                max_steps: 4_000 * m as u64,
                seeds: (0..seeds_per_case).collect(),
            };
            let outcome = sweep_family(
                &family,
                &cfg,
                || Box::new(DupChannel::new()),
                |seed| mk(seed),
            );
            rows.push(E1Row {
                m,
                alpha: alpha(m as u32).expect("small m"),
                adversary: label.to_string(),
                runs: outcome.len(),
                complete: outcome.len() - outcome.failures.len(),
                sends_per_item: outcome.mean_sends_per_item().unwrap_or(0.0),
            });
        }
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[E1Row]) -> String {
    crate::table::render(
        &[
            "m",
            "alpha(m)",
            "adversary",
            "runs",
            "complete",
            "sends/item",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.alpha.to_string(),
                    r.adversary.clone(),
                    r.runs.to_string(),
                    r.complete.to_string(),
                    format!("{:.2}", r.sends_per_item),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_all_runs_complete_for_small_m() {
        let rows = run(3, 2);
        assert_eq!(rows.len(), 9); // 3 alphabets × 3 adversaries
        for r in &rows {
            assert_eq!(
                r.complete, r.runs,
                "m={} {}: achievability must hold",
                r.m, r.adversary
            );
            assert_eq!(r.runs as u128, r.alpha * 2);
        }
    }

    #[test]
    fn e1_table_renders() {
        let rows = run(2, 1);
        let t = render(&rows);
        assert!(t.contains("dup-storm"));
        assert!(t.contains("alpha(m)"));
    }
}
