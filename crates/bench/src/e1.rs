//! **E1 — Theorem 1 achievability.** The tight protocol solves
//! `X`-STP(dup) for the full repetition-free family (`|X| = α(m)`): every
//! sequence completes safely under duplication-storm, reorder-maximizing
//! and random adversaries.

use serde::{Deserialize, Serialize};
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_core::alpha::alpha;
use stp_core::event::TraceMode;
use stp_protocols::{ResendPolicy, TightFamily};
use stp_sim::{sweep_family, SweepSpec};

/// One row of the E1 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E1Row {
    /// Alphabet (= domain) size.
    pub m: u16,
    /// `α(m)`: number of sequences transmitted.
    pub alpha: u128,
    /// Adversary label.
    pub adversary: String,
    /// Total runs (sequences × seeds).
    pub runs: usize,
    /// Runs that delivered the whole input safely.
    pub complete: usize,
    /// Mean messages sent per delivered item.
    pub sends_per_item: f64,
}

/// The adversaries E1 sweeps.
pub fn adversaries() -> Vec<(&'static str, SchedulerSpec)> {
    vec![
        ("dup-storm", SchedulerSpec::DupStorm { p_deliver: 0.9 }),
        ("reorder-max", SchedulerSpec::Reorder),
        ("random-0.5", SchedulerSpec::Random { p_deliver: 0.5 }),
    ]
}

/// The sweep spec E1 uses for alphabet size `m` under one adversary.
/// Stats-only: the table needs counters, not event traces, so the sweep
/// runs trace-free with a streaming [`MetricsProbe`](stp_sim::MetricsProbe).
pub fn spec_for(m: u16, seeds_per_case: u64, scheduler: SchedulerSpec) -> SweepSpec {
    SweepSpec::new(ChannelSpec::Dup, scheduler)
        .max_steps(4_000 * m as u64)
        .seeds(0..seeds_per_case)
        .trace_mode(TraceMode::Off)
        .probe(true)
}

/// Runs E1 for `m = 1..=max_m` with `seeds_per_case` seeds per adversary.
pub fn run(max_m: u16, seeds_per_case: u64) -> Vec<E1Row> {
    let mut rows = Vec::new();
    for m in 1..=max_m {
        let family = TightFamily::new(m, ResendPolicy::Once);
        for (label, scheduler) in adversaries() {
            let outcome = sweep_family(&family, &spec_for(m, seeds_per_case, scheduler));
            crate::telemetry::export_sweep("e1", &outcome);
            rows.push(E1Row {
                m,
                alpha: alpha(m as u32).expect("small m"),
                adversary: label.to_string(),
                runs: outcome.len(),
                complete: outcome.len() - outcome.failures.len(),
                sends_per_item: outcome.mean_sends_per_item().unwrap_or(0.0),
            });
        }
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[E1Row]) -> String {
    crate::table::render(
        &[
            "m",
            "alpha(m)",
            "adversary",
            "runs",
            "complete",
            "sends/item",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.alpha.to_string(),
                    r.adversary.clone(),
                    r.runs.to_string(),
                    r.complete.to_string(),
                    format!("{:.2}", r.sends_per_item),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_all_runs_complete_for_small_m() {
        let rows = run(3, 2);
        assert_eq!(rows.len(), 9); // 3 alphabets × 3 adversaries
        for r in &rows {
            assert_eq!(
                r.complete, r.runs,
                "m={} {}: achievability must hold",
                r.m, r.adversary
            );
            assert_eq!(r.runs as u128, r.alpha * 2);
        }
    }

    #[test]
    fn e1_table_renders() {
        let rows = run(2, 1);
        let t = render(&rows);
        assert!(t.contains("dup-storm"));
        assert!(t.contains("alpha(m)"));
    }
}
