//! Noise-aware benchmark regression gates over the durable history.
//!
//! Two kinds of gate guard the perf trajectory:
//!
//! 1. **Static budgets and floors** — absolute bounds injected by CI as
//!    environment variables (`PROF_BUDGET=0.05`, `SESSIONS_FLOOR=…`).
//!    The numbers live in the workflow file, not here: loosening one is
//!    a reviewed workflow change, never a silent code change.
//! 2. **Baseline comparison** — the fresh run against the **median** of
//!    its own prior records in `BENCH_history.jsonl`, within a relative
//!    tolerance. The median is the noise-aware choice: a single hot or
//!    cold historical run moves it little, while a mean smears every
//!    past hiccup straight into the gate. Direction is inferred from
//!    the metric name — `*_secs` and `*_overhead` must not rise,
//!    `*_per_sec`, `scaling_*` and `*_completed` must not fall; other
//!    metrics are informational and never gated. Per-phase busy-time
//!    shares are gated the same way, so a regression report names the
//!    *offending phase*, not just a slower total.
//!
//! Baseline gates stay silent until [`MIN_HISTORY`] prior records
//! exist: two data points are weather, not a trajectory.

use crate::history::HistoryRecord;
use std::fmt;

/// Prior records required before baseline gates arm. Below this the
/// median is too easily owned by one noisy run.
pub const MIN_HISTORY: usize = 3;

/// Default relative tolerance for baseline comparison (±30%): generous
/// because CI hosts differ run to run; the static budgets stay tight.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Absolute slack added to per-phase share gates: a phase share can
/// wander a couple of points without any code changing (sampling noise),
/// so only drifts beyond `median * (1 + tol) + SHARE_SLACK` fail.
pub const SHARE_SLACK: f64 = 0.02;

/// Absolute slack added to `*_overhead` baseline gates. Overheads are
/// near-zero ratios, so pure relative tolerance is the wrong shape: a
/// 0.02 → 0.04 wobble is +100% relative but two points absolute and
/// comfortably inside every static budget. Only drifts beyond
/// `median * (1 + tol) + OVERHEAD_SLACK` fail — the static budget still
/// caps the absolute value.
pub const OVERHEAD_SLACK: f64 = 0.03;

/// One failed gate: which metric, what it was, what it was allowed.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The bench the metric came from (`bench_sweep`, …).
    pub bench: String,
    /// The offending metric (`prof_overhead`, `phase:sender_step`, …).
    pub metric: String,
    /// The measured value.
    pub value: f64,
    /// The bound it violated.
    pub bound: f64,
    /// How the bound was derived (`budget`, `floor`, `baseline`).
    pub kind: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} = {:.4} violates {} {:.4}",
            self.bench, self.metric, self.value, self.kind, self.bound
        )
    }
}

/// Reads a bound from the environment; `None` (gate off) when unset,
/// empty, or unparseable (unparseable is reported on stderr).
pub fn env_bound(var: &str) -> Option<f64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    match raw.parse::<f64>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("bench_gate: ignoring unparseable {var}={raw:?}");
            None
        }
    }
}

/// Gates one metric against an upper bound: present and `<= budget`.
/// A record that *lacks* the metric fails the gate — a budget whose
/// metric silently vanished from the bench must not pass green.
pub fn check_budget(record: &HistoryRecord, metric: &str, budget: f64) -> Option<Violation> {
    let value = record.metrics.get(metric).copied().unwrap_or(f64::INFINITY);
    (value > budget).then(|| Violation {
        bench: record.bench.clone(),
        metric: metric.to_string(),
        value,
        bound: budget,
        kind: "budget".to_string(),
    })
}

/// Gates one metric against a lower bound: present and `>= floor`.
pub fn check_floor(record: &HistoryRecord, metric: &str, floor: f64) -> Option<Violation> {
    let value = record
        .metrics
        .get(metric)
        .copied()
        .unwrap_or(f64::NEG_INFINITY);
    (value < floor).then(|| Violation {
        bench: record.bench.clone(),
        metric: metric.to_string(),
        value,
        bound: floor,
        kind: "floor".to_string(),
    })
}

/// The median of a non-empty sample (mean of the middle two when even).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Which way a metric is allowed to move, inferred from its name.
fn lower_is_better(metric: &str) -> Option<bool> {
    if metric.ends_with("_secs") || metric.ends_with("_overhead") {
        Some(true)
    } else if metric.contains("per_sec")
        || metric.starts_with("scaling_")
        || metric.ends_with("_completed")
    {
        Some(false)
    } else {
        None
    }
}

/// Compares `current` against the median of its own bench's history,
/// metric by metric and phase by phase, within relative `tolerance`.
///
/// Only prior records for the same bench count, and at least
/// [`MIN_HISTORY`] of them must carry a metric before it is gated.
/// Metrics whose name encodes no direction are never gated.
pub fn baseline_violations(
    history: &[HistoryRecord],
    current: &HistoryRecord,
    tolerance: f64,
) -> Vec<Violation> {
    let prior: Vec<&HistoryRecord> = history
        .iter()
        .filter(|r| r.bench == current.bench)
        .collect();
    let mut violations = Vec::new();

    for (metric, &value) in &current.metrics {
        let Some(lower_better) = lower_is_better(metric) else {
            continue;
        };
        let samples: Vec<f64> = prior
            .iter()
            .filter_map(|r| r.metrics.get(metric).copied())
            .collect();
        if samples.len() < MIN_HISTORY {
            continue;
        }
        let base = median(samples);
        let slack = if metric.ends_with("_overhead") {
            OVERHEAD_SLACK
        } else {
            0.0
        };
        let (bound, bad) = if lower_better {
            let bound = base * (1.0 + tolerance) + slack;
            (bound, value > bound)
        } else {
            let bound = base * (1.0 - tolerance);
            (bound, value < bound)
        };
        if bad {
            violations.push(Violation {
                bench: current.bench.clone(),
                metric: metric.clone(),
                value,
                bound,
                kind: format!("baseline (median of {} runs)", prior.len()),
            });
        }
    }

    for phase in &current.phases {
        let samples: Vec<f64> = prior
            .iter()
            .filter_map(|r| {
                r.phases
                    .iter()
                    .find(|p| p.phase == phase.phase)
                    .map(|p| p.share)
            })
            .collect();
        if samples.len() < MIN_HISTORY {
            continue;
        }
        let base = median(samples);
        let bound = base * (1.0 + tolerance) + SHARE_SLACK;
        if phase.share > bound {
            violations.push(Violation {
                bench: current.bench.clone(),
                metric: format!("phase:{}", phase.phase),
                value: phase.share,
                bound,
                kind: format!("baseline share (median of {} runs)", prior.len()),
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::PhaseShare;

    fn rec(bench: &str, metric: &str, value: f64) -> HistoryRecord {
        HistoryRecord::new(bench).metric(metric, value)
    }

    #[test]
    fn budget_passes_within_and_fails_over_and_on_absence() {
        let r = rec("bench_sweep", "prof_overhead", 0.03);
        assert!(check_budget(&r, "prof_overhead", 0.05).is_none());
        let v = check_budget(&r, "prof_overhead", 0.02).expect("over budget");
        assert_eq!(v.metric, "prof_overhead");
        assert!(v.to_string().contains("prof_overhead"));
        // A vanished metric fails rather than silently passing.
        assert!(check_budget(&r, "no_such_metric", 1.0).is_some());
    }

    #[test]
    fn floor_fails_under_and_on_absence() {
        let r = rec("bench_sessions", "sessions_per_sec_4", 300_000.0);
        assert!(check_floor(&r, "sessions_per_sec_4", 250_000.0).is_none());
        assert!(check_floor(&r, "sessions_per_sec_4", 400_000.0).is_some());
        assert!(check_floor(&r, "gone", 0.0).is_some());
    }

    #[test]
    fn synthetic_regression_trips_the_baseline_gate() {
        // Three clean historical runs at ~1.0s, then a run 50% slower:
        // with ±30% tolerance the gate must fire and name the metric.
        let history = vec![
            rec("bench_sweep", "engine_secs", 1.00),
            rec("bench_sweep", "engine_secs", 0.98),
            rec("bench_sweep", "engine_secs", 1.02),
        ];
        let slow = rec("bench_sweep", "engine_secs", 1.50);
        let violations = baseline_violations(&history, &slow, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].metric, "engine_secs");
        assert!(violations[0].value > violations[0].bound);

        // An *improvement* on a lower-is-better metric never fires.
        let fast = rec("bench_sweep", "engine_secs", 0.50);
        assert!(baseline_violations(&history, &fast, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn overhead_jitter_inside_the_absolute_slack_never_fires() {
        // 0.02 → 0.04 is +100% relative but two points absolute:
        // baseline gates must leave that to the static budget.
        let history = vec![
            rec("bench_sweep", "prof_overhead", 0.020),
            rec("bench_sweep", "prof_overhead", 0.022),
            rec("bench_sweep", "prof_overhead", 0.018),
        ];
        let wobble = rec("bench_sweep", "prof_overhead", 0.040);
        assert!(baseline_violations(&history, &wobble, DEFAULT_TOLERANCE).is_empty());
        // A real blow-up still fires.
        let blown = rec("bench_sweep", "prof_overhead", 0.30);
        let violations = baseline_violations(&history, &blown, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "prof_overhead");
    }

    #[test]
    fn throughput_collapse_trips_the_gate_downward() {
        let history = vec![
            rec("bench_sessions", "sessions_per_sec_4", 300_000.0),
            rec("bench_sessions", "sessions_per_sec_4", 310_000.0),
            rec("bench_sessions", "sessions_per_sec_4", 295_000.0),
        ];
        let collapsed = rec("bench_sessions", "sessions_per_sec_4", 100_000.0);
        let violations = baseline_violations(&history, &collapsed, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "sessions_per_sec_4");
    }

    #[test]
    fn phase_share_regression_names_the_offending_phase() {
        let with_phase = |share: f64| {
            let mut r = HistoryRecord::new("bench_sweep");
            r.phases = vec![
                PhaseShare {
                    phase: "sender_step".to_string(),
                    share,
                    total_ns: (share * 1e9) as u64,
                },
                PhaseShare {
                    phase: "receiver_step".to_string(),
                    share: 0.20,
                    total_ns: 200_000_000,
                },
            ];
            r
        };
        let history = vec![with_phase(0.30), with_phase(0.31), with_phase(0.29)];
        let bloated = with_phase(0.60);
        let violations = baseline_violations(&history, &bloated, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].metric, "phase:sender_step");
    }

    #[test]
    fn gates_stay_silent_until_enough_history_exists() {
        let history = vec![
            rec("bench_sweep", "engine_secs", 1.0),
            rec("bench_sweep", "engine_secs", 1.0),
        ];
        let slow = rec("bench_sweep", "engine_secs", 10.0);
        assert!(baseline_violations(&history, &slow, DEFAULT_TOLERANCE).is_empty());
        // Other benches' records don't count toward this bench's history.
        let other = vec![
            rec("bench_sessions", "engine_secs", 1.0),
            rec("bench_sessions", "engine_secs", 1.0),
            rec("bench_sessions", "engine_secs", 1.0),
        ];
        assert!(baseline_violations(&other, &slow, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn undirected_metrics_are_never_gated() {
        let history = vec![
            rec("bench_sweep", "speedup", 4.0),
            rec("bench_sweep", "speedup", 4.0),
            rec("bench_sweep", "speedup", 4.0),
        ];
        // `speedup` encodes no direction suffix: informational only.
        let odd = rec("bench_sweep", "speedup", 0.1);
        assert!(baseline_violations(&history, &odd, DEFAULT_TOLERANCE).is_empty());
    }
}
