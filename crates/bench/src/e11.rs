//! **E11 — fault campaigns and recovery envelopes.** Three exhibits from
//! the chaos engine:
//!
//! 1. *Recovery envelopes* (Definition 2, measured end-to-end): a silence
//!    window is fired right after the receiver writes item 0, via an
//!    `OnWrite` campaign trigger, and we count the steps until the next
//!    write. Sweeping the input length separates the protocol classes —
//!    the tight (bounded) protocol's recovery is flat in `|X|`, the
//!    Section-5 hybrid's grows with it.
//! 2. *Composite-campaign survival*: the tight-del pair rides out a
//!    campaign of four distinct fault actions (deletion bursts, targeted
//!    strikes, silence windows, reorder floods) on a deleting channel,
//!    completing safely.
//! 3. *Shrunk witness*: a kitchen-sink campaign that drives the
//!    over-capacity naive family into a genuine safety violation is
//!    shrunk to a one-clause plan and packaged as a bit-identically
//!    replayable witness.

use serde::{Deserialize, Serialize};
use stp_channel::campaign::{Direction, FaultAction, FaultClause, FaultPlan, Trigger};
use stp_channel::{ChannelSpec, DelChannel, DupChannel, EagerScheduler, SchedulerSpec};
use stp_core::data::DataSeq;
use stp_core::event::Step;
use stp_protocols::{HybridFamily, NaiveFamily, ProtocolFamily, ResendPolicy, TightFamily};
use stp_sim::{
    classify, is_one_minimal, probe_recovery, run_with_plan, shrink_to_witness, CampaignJudge,
    ProgressMeter, SloConfig, Witness,
};

/// One recovery-envelope measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E11Row {
    /// Protocol label.
    pub protocol: String,
    /// Input length.
    pub n: usize,
    /// Index whose write triggered the fault.
    pub index: usize,
    /// Steps from the fault to the next write.
    pub recovery: Option<Step>,
    /// Steps from the fault to completion.
    pub completion: Option<Step>,
}

/// Measures the envelopes: strike right after item `index` is written,
/// sweep the input length.
pub fn run_envelopes(sizes: &[usize], index: usize) -> Vec<E11Row> {
    let silent = ProgressMeter::new(std::time::Duration::from_secs(3600), |_| {});
    run_envelopes_observed(sizes, index, &silent)
}

/// [`run_envelopes`] with live progress: each probe is one full
/// fault-injected execution, and the large sizes dominate, so the meter
/// ticks once per probe rather than once per size.
pub fn run_envelopes_observed(sizes: &[usize], index: usize, meter: &ProgressMeter) -> Vec<E11Row> {
    meter.begin(sizes.len() * 2);
    meter.worker_started();
    let mut rows = Vec::new();
    for &n in sizes {
        let input = DataSeq::from_indices(0..n as u16);

        let tight = TightFamily::new(n as u16, ResendPolicy::EveryTick);
        let cfg = SloConfig::silence(6, 100_000);
        let p = probe_recovery(
            &tight,
            &input,
            &ChannelSpec::Del,
            &SchedulerSpec::Eager,
            &cfg,
            index,
        );
        meter.record_done(1);
        rows.push(E11Row {
            protocol: "tight-del (bounded)".into(),
            n,
            index,
            recovery: p.as_ref().and_then(|p| p.steps_to_next_write),
            completion: p.as_ref().and_then(|p| p.steps_to_completion),
        });

        let hybrid = HybridFamily::new(n as u16, 4, n);
        let cfg = SloConfig::silence(8, 100_000);
        let p = probe_recovery(
            &hybrid,
            &input,
            &ChannelSpec::Timed { deadline: 4 },
            &SchedulerSpec::Eager,
            &cfg,
            index,
        );
        meter.record_done(1);
        rows.push(E11Row {
            protocol: "hybrid-weakly-bounded".into(),
            n,
            index,
            recovery: p.as_ref().and_then(|p| p.steps_to_next_write),
            completion: p.as_ref().and_then(|p| p.steps_to_completion),
        });
    }
    meter.worker_finished();
    meter.finish();
    rows
}

/// Renders the envelope table.
pub fn render_envelopes(rows: &[E11Row]) -> String {
    let fmt = |o: Option<Step>| o.map_or_else(|| "-".into(), |v| v.to_string());
    crate::table::render(
        &[
            "protocol",
            "|X|",
            "struck index",
            "steps to next write",
            "steps to completion",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.n.to_string(),
                    r.index.to_string(),
                    fmt(r.recovery),
                    fmt(r.completion),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Outcome of the composite-campaign survival run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Distinct fault actions in the campaign.
    pub actions: usize,
    /// Input length.
    pub n: usize,
    /// Steps the run took.
    pub steps: Step,
    /// Whether the whole input was written.
    pub completed: bool,
    /// Whether safety held throughout.
    pub safe: bool,
}

/// The four-action campaign the tight-del pair must survive.
pub fn composite_plan() -> FaultPlan {
    FaultPlan::new(2024)
        .with(
            FaultClause::new(
                FaultAction::DeletionBurst { copies: 1 },
                Trigger::EveryK {
                    period: 25,
                    offset: 5,
                },
            )
            .repeats(0),
        )
        .with(
            FaultClause::new(
                FaultAction::TargetedStrike { copies: 1 },
                Trigger::OnWrite { index: 2 },
            )
            .direction(Direction::ToReceiver),
        )
        .with(
            FaultClause::new(
                FaultAction::SilenceWindow,
                Trigger::EveryK {
                    period: 40,
                    offset: 10,
                },
            )
            .lasting(4)
            .repeats(3),
        )
        .with(
            FaultClause::new(FaultAction::ReorderFlood, Trigger::AtStep(0))
                .lasting(15)
                .repeats(2),
        )
}

/// Runs the composite campaign against tight-del on a deleting channel.
pub fn run_composite(n: usize) -> CampaignOutcome {
    let input = DataSeq::from_indices(0..n as u16);
    let fam = TightFamily::new(n as u16, ResendPolicy::EveryTick);
    let plan = composite_plan();
    let trace = run_with_plan(
        &fam,
        &input,
        Box::new(DelChannel::new()),
        Box::new(EagerScheduler::new()),
        &plan,
        100_000,
    );
    let violation = classify(&trace, input.len());
    CampaignOutcome {
        actions: 4,
        n,
        steps: trace.steps(),
        completed: trace.output().len() == input.len(),
        safe: !matches!(violation, Some(stp_sim::Violation::Safety { .. })),
    }
}

/// Renders the survival outcome.
pub fn render_composite(o: &CampaignOutcome) -> String {
    crate::table::render(
        &["campaign", "|X|", "steps", "completed", "safe"],
        &[vec![
            format!(
                "{} distinct fault actions on tight-del/DelChannel",
                o.actions
            ),
            o.n.to_string(),
            o.steps.to_string(),
            o.completed.to_string(),
            o.safe.to_string(),
        ]],
    )
}

/// Result of the shrink demo.
#[derive(Debug, Clone)]
pub struct ShrinkDemo {
    /// The shrunk witness.
    pub witness: Witness,
    /// Clauses before shrinking.
    pub clauses_before: usize,
    /// Whether the shrunk plan is 1-minimal.
    pub one_minimal: bool,
    /// Whether the witness script replayed bit-identically to the same
    /// violation.
    pub replay_identical: bool,
}

/// Builds the deliberately failing campaign: a duplication storm (which
/// replays a stale ack to the naive sender) buried among decoy clauses.
pub fn failing_plan() -> FaultPlan {
    FaultPlan::new(11)
        .with(
            FaultClause::new(FaultAction::DuplicationStorm, Trigger::AtStep(0))
                .lasting(400)
                .direction(Direction::Both),
        )
        .with(
            FaultClause::new(
                FaultAction::ReorderFlood,
                Trigger::EveryK {
                    period: 13,
                    offset: 5,
                },
            )
            .lasting(3)
            .repeats(0)
            .direction(Direction::ToReceiver),
        )
        .with(FaultClause::new(FaultAction::SilenceWindow, Trigger::AtStep(37)).lasting(2))
        .with(
            FaultClause::new(
                FaultAction::DeletionBurst { copies: 3 },
                Trigger::AtStep(20),
            )
            .direction(Direction::ToSender),
        )
}

/// Runs the shrink demo: drive the over-capacity naive family into a
/// safety violation, shrink the campaign, and check the witness.
pub fn run_shrink_demo() -> ShrinkDemo {
    let fam = NaiveFamily::new(4, 4);
    let input = DataSeq::from_indices([0u16, 1, 0, 2]);
    let judge = CampaignJudge {
        family: &fam,
        input: &input,
        channel: ChannelSpec::Dup,
        inner: SchedulerSpec::idle(),
        max_steps: 400,
    };
    let original = failing_plan();
    let witness = shrink_to_witness(&judge, &original).expect("the storm campaign violates safety");
    let one_minimal = is_one_minimal(&judge, &witness.plan, witness.violation.kind());
    let (trace, violation) = witness.replay(
        fam.sender_for(&input),
        fam.receiver(),
        Box::new(DupChannel::new()),
    );
    let replay_identical = violation.as_ref() == Some(&witness.violation)
        && stp_sim::script_from_trace(&trace) == witness.script
        && trace.steps() == witness.steps;
    ShrinkDemo {
        witness,
        clauses_before: original.clauses.len(),
        one_minimal,
        replay_identical,
    }
}

/// Renders the shrink demo summary (including the witness JSON).
pub fn render_shrink(demo: &ShrinkDemo) -> String {
    let mut out = crate::table::render(
        &[
            "protocol",
            "clauses before",
            "clauses after",
            "violation",
            "1-minimal",
            "replay identical",
        ],
        &[vec![
            demo.witness.protocol.clone(),
            demo.clauses_before.to_string(),
            demo.witness.plan.clauses.len().to_string(),
            demo.witness.violation.kind().to_string(),
            demo.one_minimal.to_string(),
            demo.replay_identical.to_string(),
        ]],
    );
    out.push_str("\nwitness (replayable JSON):\n");
    out.push_str(&demo.witness.to_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_envelopes_separate_the_protocol_classes() {
        let rows = run_envelopes(&[4, 16], 0);
        let get = |proto: &str, n: usize| -> Step {
            rows.iter()
                .find(|r| r.protocol.starts_with(proto) && r.n == n)
                .and_then(|r| r.recovery)
                .unwrap_or_else(|| panic!("{proto}/{n} should recover"))
        };
        let (t4, t16) = (get("tight", 4), get("tight", 16));
        let (h4, h16) = (get("hybrid", 4), get("hybrid", 16));
        assert!(t16 <= t4 + 2, "tight stays flat: {t4} -> {t16}");
        assert!(h16 > h4, "hybrid grows: {h4} -> {h16}");
    }

    #[test]
    fn e11_tight_survives_the_composite_campaign() {
        let o = run_composite(8);
        assert!(o.completed, "{o:?}");
        assert!(o.safe, "{o:?}");
    }

    #[test]
    fn e11_shrink_demo_holds_its_guarantees() {
        let d = run_shrink_demo();
        assert_eq!(d.witness.violation.kind(), "safety");
        assert_eq!(d.witness.plan.clauses.len(), 1);
        assert!(d.one_minimal);
        assert!(d.replay_identical);
    }
}
