//! **E9 — probabilistic `X`-STP (the §6 future-work direction).** A
//! randomized codebook transmits families far larger than `α(m)` with a
//! small, measurable failure probability: exactly the trade the paper
//! conjectures would "affect our results". Measured failure fractions
//! track the birthday-style analytic estimate
//! `1 − ((K−1)/K)^{N−1}` with `K = m!` codes and `N = |X|`.

use serde::{Deserialize, Serialize};
use stp_channel::{DupChannel, DupStormScheduler};
use stp_core::alpha::{alpha, factorial};
use stp_protocols::{ProbabilisticFamily, ProtocolFamily};
use stp_sim::run_family_member;

/// One row of the E9 table (one alphabet size, aggregated over seeds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E9Row {
    /// Message alphabet size.
    pub m: u16,
    /// Deterministic capacity `α(m)`.
    pub alpha: u128,
    /// Code space size `m!`.
    pub codes: u128,
    /// Claimed family size `N` (beyond `α(m)` is the point).
    pub claimed: usize,
    /// Codebook seeds evaluated.
    pub seeds: u64,
    /// Mean fraction of members whose runs failed (collision victims).
    pub measured_failure: f64,
    /// Analytic per-member collision probability `1 − ((K−1)/K)^{N−1}`.
    pub analytic_failure: f64,
}

/// Runs E9: domain `d`, sequence lengths ≤ `max_len`, alphabet sizes `ms`,
/// `seeds` codebooks each; every member of every codebook is actually
/// transmitted over a duplication-storm channel and checked.
pub fn run(d: u16, max_len: usize, ms: &[u16], seeds: u64) -> Vec<E9Row> {
    let mut rows = Vec::new();
    for &m in ms {
        let mut failed_fracs = Vec::new();
        let mut claimed_len = 0usize;
        for seed in 0..seeds {
            let family = ProbabilisticFamily::new(d, max_len, m, seed);
            let claimed = family.claimed_family();
            claimed_len = claimed.len();
            let mut failures = 0usize;
            for x in claimed.iter() {
                let trace = run_family_member(
                    &family,
                    x,
                    Box::new(DupChannel::new()),
                    Box::new(DupStormScheduler::new(seed.wrapping_add(17), 0.9)),
                    4_000,
                );
                if trace.output() != *x {
                    failures += 1;
                }
            }
            failed_fracs.push(failures as f64 / claimed.len() as f64);
        }
        let n = claimed_len as f64;
        let k = factorial(m as u32).expect("small m") as f64;
        rows.push(E9Row {
            m,
            alpha: alpha(m as u32).expect("small m"),
            codes: factorial(m as u32).expect("small m"),
            claimed: claimed_len,
            seeds,
            measured_failure: failed_fracs.iter().sum::<f64>() / failed_fracs.len() as f64,
            analytic_failure: 1.0 - ((k - 1.0) / k).powf(n - 1.0),
        });
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[E9Row]) -> String {
    crate::table::render(
        &[
            "m",
            "alpha(m)",
            "codes m!",
            "claimed N",
            "seeds",
            "measured P(fail)",
            "analytic P(fail)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.alpha.to_string(),
                    r.codes.to_string(),
                    r.claimed.to_string(),
                    r.seeds.to_string(),
                    format!("{:.4}", r.measured_failure),
                    format!("{:.4}", r.analytic_failure),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_failure_probability_shrinks_with_code_space() {
        // 15 sequences (d=2, len ≤ 3); code spaces 4! = 24 … 7! = 5040.
        let rows = run(2, 3, &[4, 5, 6, 7], 6);
        for w in rows.windows(2) {
            assert!(
                w[1].measured_failure <= w[0].measured_failure + 0.15,
                "failures should trend down: {w:?}"
            );
        }
        let last = rows.last().unwrap();
        assert!(
            last.measured_failure < 0.05,
            "with 5040 codes for 15 sequences, failures are rare: {last:?}"
        );
        // The claimed family genuinely exceeds the deterministic capacity
        // at the smallest alphabet.
        assert!(rows[0].claimed as u128 > 0 && rows[0].alpha < 100);
    }

    #[test]
    fn e9_measured_tracks_analytic_at_small_code_spaces() {
        let rows = run(2, 2, &[3], 20);
        let r = &rows[0];
        // 7 sequences, 6 codes: collisions are likely; measured and
        // analytic should be within a generous tolerance of each other.
        assert!(r.measured_failure > 0.2, "{r:?}");
        assert!(
            (r.measured_failure - r.analytic_failure).abs() < 0.45,
            "{r:?}"
        );
    }
}
