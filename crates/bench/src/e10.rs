//! **E10 — Definition 2, measured.** The boundedness prober walks faulted
//! runs and asks, at every point past `t_{i-1}`: does a *fresh-messages-
//! only* extension write the next item within budget `B`? A protocol is
//! (empirically) bounded when every probed point answers `Some(k ≤ B)`
//! with one global `B`; the hybrid answers `None` at every mid-recovery
//! point until the budget covers the whole remaining reverse pass —
//! "weakly bounded but not bounded", point by point.

use serde::{Deserialize, Serialize};
use stp_channel::{CampaignScheduler, DelChannel, EagerScheduler, TimedChannel};
use stp_core::data::DataSeq;
use stp_core::event::Step;
use stp_protocols::{HybridReceiver, HybridSender, ResendPolicy, TightReceiver, TightSender};
use stp_sim::{burst_plan, World};
use stp_verify::min_recovery_steps;

/// One row of the E10 table (one protocol × input length, aggregated over
/// the probed points of a faulted run).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E10Row {
    /// Protocol label.
    pub protocol: String,
    /// Input length.
    pub n: usize,
    /// The probe budget `B`.
    pub budget: Step,
    /// Points probed (mid-run, with items still outstanding).
    pub points: usize,
    /// Points with a fresh-only extension within the budget.
    pub bounded_points: usize,
    /// Worst witness `f(i)` over the bounded points.
    pub worst_witness: Step,
}

fn probe_world(mut w: World, n: usize, budget: Step, max_steps: Step) -> (usize, usize, Step) {
    let mut points = 0usize;
    let mut bounded = 0usize;
    let mut worst: Step = 0;
    while !w.is_complete() && w.step_count() < max_steps {
        w.step();
        let written = w.written();
        if written >= 1 && written < n {
            points += 1;
            let (s, r, c, wr) = w.fork_parts();
            if let Some(k) = min_recovery_steps(s, r, c, wr, budget) {
                bounded += 1;
                worst = worst.max(k);
            }
        }
    }
    (points, bounded, worst)
}

/// Runs E10 for the given input lengths and probe budget.
pub fn run(sizes: &[usize], budget: Step) -> Vec<E10Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        // tight-del with a mid-run fault.
        let input: DataSeq = DataSeq::from_indices(0..n as u16);
        let w = World::builder(input.clone())
            .sender(Box::new(TightSender::new(
                input.clone(),
                n as u16,
                ResendPolicy::EveryTick,
            )))
            .receiver(Box::new(TightReceiver::new(
                n as u16,
                ResendPolicy::EveryTick,
            )))
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(CampaignScheduler::new(
                Box::new(EagerScheduler::new()),
                burst_plan(4, 2),
            )))
            .build()
            .expect("all components supplied");
        let (points, bounded, worst) = probe_world(w, n, budget, 400);
        rows.push(E10Row {
            protocol: "tight-del (bounded)".into(),
            n,
            budget,
            points,
            bounded_points: bounded,
            worst_witness: worst,
        });

        // hybrid with a fault after the first item.
        let input: DataSeq = DataSeq::from_indices((0..n).map(|i| (i % 2) as u16));
        let w = World::builder(input.clone())
            .sender(Box::new(HybridSender::new(input.clone(), 2, 3)))
            .receiver(Box::new(HybridReceiver::new(2)))
            .channel(Box::new(TimedChannel::new(3)))
            .scheduler(Box::new(CampaignScheduler::new(
                Box::new(EagerScheduler::new()),
                burst_plan(3, 1),
            )))
            .build()
            .expect("all components supplied");
        let (points, bounded, worst) = probe_world(w, n, budget, 2_000);
        rows.push(E10Row {
            protocol: "hybrid-weakly-bounded".into(),
            n,
            budget,
            points,
            bounded_points: bounded,
            worst_witness: worst,
        });
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[E10Row]) -> String {
    crate::table::render(
        &[
            "protocol",
            "|X|",
            "budget B",
            "points",
            "bounded points",
            "worst f(i) witness",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.n.to_string(),
                    r.budget.to_string(),
                    r.points.to_string(),
                    r.bounded_points.to_string(),
                    r.worst_witness.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_tight_is_bounded_everywhere_hybrid_is_not() {
        let rows = run(&[8, 12], 6);
        for r in &rows {
            assert!(r.points > 0, "{r:?}");
            if r.protocol.starts_with("tight") {
                assert_eq!(r.bounded_points, r.points, "{r:?}");
                assert!(r.worst_witness <= 6);
            } else {
                // The hybrid has unbounded (mid-recovery) points.
                assert!(r.bounded_points < r.points, "{r:?}");
            }
        }
    }
}
