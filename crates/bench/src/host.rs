//! Host-shape introspection shared by the benchmark binaries.
//!
//! The benches record two core counts next to every measurement so a
//! number in `BENCH_*.json` or `BENCH_history.jsonl` can always be read
//! against the hardware it came from: `host_cores_effective` — the
//! parallelism actually granted to the process — and
//! `host_cores_present` — the CPUs the kernel reports.

/// Parallelism granted to this process and CPUs present on the host.
///
/// `available_parallelism` respects cgroup quotas and CPU affinity, so
/// it is the honest answer to "how parallel were the measurements";
/// `/proc/cpuinfo` (when readable) says how many CPUs exist regardless.
/// The present count is clamped to at least the effective count so the
/// pair is always ordered.
pub fn host_parallelism() -> (usize, usize) {
    let effective = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let present = std::fs::read_to_string("/proc/cpuinfo")
        .map(|body| {
            body.lines()
                .filter(|line| line.starts_with("processor"))
                .count()
        })
        .unwrap_or(0)
        .max(effective);
    (effective, present)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_is_positive_and_no_larger_than_present() {
        let (effective, present) = host_parallelism();
        assert!(effective >= 1);
        assert!(present >= effective);
    }
}
