//! **E3 — Theorem 2 achievability.** The retransmitting tight protocol is
//! a *bounded* solution to `X`-STP(del) at `|X| = α(m)`:
//!
//! * every repetition-free sequence completes safely under deletion-heavy
//!   adversaries, and
//! * after a one-shot fault injected right after item `i` is learnt, the
//!   receiver learns item `i+1` within a constant number of steps —
//!   independent of both `i` and the input length. That constant is an
//!   empirical `f(i)` witness for Definition 2.

use serde::{Deserialize, Serialize};
use stp_channel::{CampaignScheduler, ChannelSpec, DelChannel, EagerScheduler, SchedulerSpec};
use stp_core::data::DataSeq;
use stp_core::event::{Step, TraceMode};
use stp_protocols::{ResendPolicy, TightFamily, TightReceiver, TightSender};
use stp_sim::{burst_plan, sweep_family, SweepSpec, World};

/// One row of the E3 completeness table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E3CompletenessRow {
    /// Alphabet size.
    pub m: u16,
    /// Total runs.
    pub runs: usize,
    /// Completed runs.
    pub complete: usize,
    /// Worst observed gap between consecutive writes.
    pub worst_gap: Step,
}

/// One row of the E3 recovery profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E3RecoveryRow {
    /// Alphabet size (= input length here: the input is a permutation).
    pub m: u16,
    /// Item index `i` after which the fault strikes (1-based).
    pub fault_after_item: usize,
    /// Steps from the fault to the write of item `i+1`.
    pub recovery_steps: Step,
}

/// Completeness sweep under deletion-heavy adversaries.
pub fn run_completeness(max_m: u16, seeds: u64) -> Vec<E3CompletenessRow> {
    let mut rows = Vec::new();
    for m in 1..=max_m {
        let family = TightFamily::new(m, ResendPolicy::EveryTick);
        let spec = SweepSpec::new(
            ChannelSpec::Del,
            SchedulerSpec::DropHeavy {
                p_drop: 0.3,
                p_deliver: 0.6,
            },
        )
        .max_steps(30_000)
        .seeds(0..seeds)
        .trace_mode(TraceMode::Off)
        .probe(true);
        let outcome = sweep_family(&family, &spec);
        crate::telemetry::export_sweep("e3", &outcome);
        rows.push(E3CompletenessRow {
            m,
            runs: outcome.len(),
            complete: outcome.len() - outcome.failures.len(),
            worst_gap: outcome.worst_gap().unwrap_or(0),
        });
    }
    rows
}

/// Builds the tight-del world on the identity permutation of length `m`.
fn perm_world(m: u16, fault_at: Option<Step>) -> World {
    let input: DataSeq = DataSeq::from_indices(0..m);
    let sched: Box<dyn stp_channel::Scheduler> = match fault_at {
        Some(at) => Box::new(CampaignScheduler::new(
            Box::new(EagerScheduler::new()),
            burst_plan(at, 1),
        )),
        None => Box::new(EagerScheduler::new()),
    };
    World::builder(input.clone())
        .sender(Box::new(TightSender::new(
            input,
            m,
            ResendPolicy::EveryTick,
        )))
        .receiver(Box::new(TightReceiver::new(m, ResendPolicy::EveryTick)))
        .channel(Box::new(DelChannel::new()))
        .scheduler(sched)
        .build()
        .expect("all components supplied")
}

/// Measures recovery after a fault following each item `i` of the identity
/// permutation over `m` items.
pub fn run_recovery(m: u16) -> Vec<E3RecoveryRow> {
    // Reference run: when is each item written without faults?
    let mut base = perm_world(m, None);
    base.run_until(100_000, World::is_complete);
    let base_writes = base.trace().write_steps();
    let mut rows = Vec::new();
    for i in 1..m as usize {
        let fault_at = base_writes[i - 1] + 1;
        let mut w = perm_world(m, Some(fault_at));
        w.run_until(100_000, World::is_complete);
        let writes = w.trace().write_steps();
        assert!(
            writes.len() > i,
            "tight-del must recover and write item {} (m={m})",
            i + 1
        );
        rows.push(E3RecoveryRow {
            m,
            fault_after_item: i,
            recovery_steps: writes[i].saturating_sub(fault_at),
        });
    }
    rows
}

/// Renders the completeness table.
pub fn render_completeness(rows: &[E3CompletenessRow]) -> String {
    crate::table::render(
        &["m", "runs", "complete", "worst gap"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.runs.to_string(),
                    r.complete.to_string(),
                    r.worst_gap.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Renders the recovery profile.
pub fn render_recovery(rows: &[E3RecoveryRow]) -> String {
    crate::table::render(
        &["m", "fault after item i", "steps to learn i+1"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.fault_after_item.to_string(),
                    r.recovery_steps.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_completeness_holds() {
        for r in run_completeness(3, 3) {
            assert_eq!(r.complete, r.runs, "m={}", r.m);
        }
    }

    #[test]
    fn e3_recovery_is_flat_and_small() {
        let rows = run_recovery(8);
        let max = rows.iter().map(|r| r.recovery_steps).max().unwrap();
        let min = rows.iter().map(|r| r.recovery_steps).min().unwrap();
        assert!(max <= 8, "recovery should be a small constant, got {max}");
        assert!(
            max.saturating_sub(min) <= 4,
            "recovery must not grow with i: {rows:?}"
        );
        // And it is flat across input lengths too.
        let short = run_recovery(4);
        let short_max = short.iter().map(|r| r.recovery_steps).max().unwrap();
        assert!(max <= short_max + 4, "no growth with |X|");
    }
}
