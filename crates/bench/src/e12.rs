//! **E12 — transient state corruption and self-stabilization.** Two
//! exhibits from the corruption layer (DESIGN.md §13):
//!
//! 1. *Fragility*: the classical protocols (tight, ABP), struck by a
//!    single transient state corruption — a scrambled register or a
//!    desynchronized counter on either side — either reconverge (their
//!    write tail becomes a clean in-order input suffix) or are flagged
//!    divergent by the run classifier. At least one strike must diverge:
//!    the classical designs never claimed self-stabilization, and the
//!    table shows where that bites (the canonical case is a tight-sender
//!    counter desync, which deadlocks the handshake into a stall).
//! 2. *Certified stabilization bounds*: the self-stabilizing variant
//!    reconverges from every corruption kind on every cell of a
//!    (d × corruption-kind × channel) grid, and each cell's measured
//!    bound ships as a [`stabilization certificate`](stp_verify::stabilization_certificate)
//!    that the *independent* checker re-validates by replaying the
//!    corrupted campaign.

use serde::{Deserialize, Serialize};
use stp_channel::campaign::{Direction, FaultAction, FaultClause, FaultPlan, Trigger};
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_core::data::DataSeq;
use stp_core::event::Step;
use stp_protocols::{AbpFamily, FamilySpec, ProtocolFamily, ResendPolicy, TightFamily};
use stp_sim::{probe_stabilization, CampaignJudge, SloConfig, StabilizationRecord};
use stp_verify::{check_certificate, stabilization_certificate, Certificate, WitnessKind};

/// One corruption strike against a classical protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E12FragilityRow {
    /// Protocol label.
    pub protocol: String,
    /// Channel tag.
    pub channel: String,
    /// Corruption kind tag.
    pub kind: String,
    /// Which side was struck.
    pub direction: String,
    /// The campaign seed.
    pub seed: u64,
    /// Whether the run reconverged (its write tail became a clean
    /// in-order input suffix).
    pub reconverged: bool,
    /// The classifier's verdict on the same deterministic run
    /// (`"none"` for a clean run).
    pub violation: String,
}

/// The corruption kinds the fragility sweep throws at each protocol,
/// with their ledger tags.
fn corruption_kinds() -> Vec<(FaultAction, &'static str)> {
    vec![
        (FaultAction::StateScramble, "state-scramble"),
        (FaultAction::CounterDesync, "counter-desync"),
    ]
}

/// Strikes each classical protocol once per (kind × direction × seed)
/// and records whether it reconverged and how the classifier judged the
/// run. Strikes that never land (the hook found nothing to perturb) are
/// omitted.
pub fn run_fragility(seeds: u64) -> Vec<E12FragilityRow> {
    let families: Vec<(Box<dyn ProtocolFamily>, ChannelSpec, &'static str)> = vec![
        (
            Box::new(TightFamily::new(8, ResendPolicy::EveryTick)),
            ChannelSpec::Del,
            "del",
        ),
        (Box::new(AbpFamily::new(4, 8)), ChannelSpec::Fifo, "fifo"),
    ];
    let input = DataSeq::from_indices([2u16, 0, 1, 3]);
    let index = 1;
    let mut rows = Vec::new();
    for (family, channel, chan_tag) in &families {
        for (action, kind_tag) in corruption_kinds() {
            for (direction, dir_tag) in [
                (Direction::ToSender, "sender"),
                (Direction::ToReceiver, "receiver"),
            ] {
                for seed in 0..seeds {
                    let cfg = SloConfig {
                        action: action.clone(),
                        duration: 1,
                        direction,
                        seed,
                        max_steps: 20_000,
                    };
                    let Some(probe) = probe_stabilization(
                        family.as_ref(),
                        &input,
                        channel,
                        &SchedulerSpec::Eager,
                        &cfg,
                        index,
                    ) else {
                        continue;
                    };
                    // The same deterministic run, re-judged by the
                    // classical safety/stall classifier.
                    let clause = FaultClause::new(action.clone(), Trigger::OnWrite { index })
                        .direction(direction);
                    let plan = FaultPlan::single(seed.wrapping_add(index as u64), clause);
                    let judge = CampaignJudge {
                        family: family.as_ref(),
                        input: &input,
                        channel: channel.clone(),
                        inner: SchedulerSpec::Eager,
                        max_steps: 20_000,
                    };
                    let violation = judge
                        .judge(&plan)
                        .map_or_else(|| "none".to_string(), |v| v.kind().to_string());
                    rows.push(E12FragilityRow {
                        protocol: family.name().to_string(),
                        channel: (*chan_tag).to_string(),
                        kind: kind_tag.to_string(),
                        direction: dir_tag.to_string(),
                        seed,
                        reconverged: probe.stabilized_at.is_some(),
                        violation,
                    });
                }
            }
        }
    }
    rows
}

/// Renders the fragility table.
pub fn render_fragility(rows: &[E12FragilityRow]) -> String {
    crate::table::render(
        &[
            "protocol",
            "channel",
            "kind",
            "struck",
            "seed",
            "reconverged",
            "violation",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.channel.clone(),
                    r.kind.clone(),
                    r.direction.clone(),
                    r.seed.to_string(),
                    r.reconverged.to_string(),
                    r.violation.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One certified cell of the stabilization grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E12StabilizationRow {
    /// Data-domain size of the stabilizing family.
    pub d: u16,
    /// Corruption kind tag.
    pub kind: String,
    /// Channel tag.
    pub channel: String,
    /// The seed whose strike landed and was certified.
    pub seed: u64,
    /// Step of the last corruption strike.
    pub fault_end: Step,
    /// The stabilization point.
    pub stabilized_at: Step,
    /// The certified bound (`stabilized_at − fault_end`).
    pub bound: Step,
    /// Whether the independent checker accepted the certificate.
    pub cert_ok: bool,
}

/// The grid's corruption kinds (a superset of the fragility sweep's:
/// noise injection is corruption *of the channel's content* rather than
/// of processor state, and the stabilizing variant must shrug it off
/// too).
fn grid_kinds() -> Vec<(FaultAction, &'static str)> {
    vec![
        (FaultAction::StateScramble, "state-scramble"),
        (FaultAction::CounterDesync, "counter-desync"),
        (FaultAction::InjectNoise, "inject-noise"),
    ]
}

/// Runs the (d × corruption-kind × channel) grid: for each cell, scans
/// seeds until a strike lands and leaves a certifiable run (some
/// scramble draws land the receiver counter exactly on the input length
/// — the absorbing blind spot of DESIGN.md §13 — and are correctly
/// declined by the emitter), then hands the certificate to the
/// independent checker.
pub fn run_stabilization_grid() -> Vec<E12StabilizationRow> {
    let mut rows = Vec::new();
    for d in [2u16, 3] {
        let family = FamilySpec::Stabilizing { d, max_len: 6 };
        let input = DataSeq::from_indices((0..4u16).map(|i| (i + 1) % d));
        for (action, kind_tag) in grid_kinds() {
            for (channel, chan_tag) in [(ChannelSpec::Dup, "dup"), (ChannelSpec::Del, "del")] {
                let clause = FaultClause::new(action.clone(), Trigger::OnWrite { index: 1 })
                    .direction(Direction::ToReceiver);
                let found = (0..64u64).find_map(|seed| {
                    stabilization_certificate(
                        &family,
                        &channel,
                        &input,
                        &FaultPlan::single(seed, clause.clone()),
                        &SchedulerSpec::Eager,
                        20_000,
                        5_000,
                    )
                    .map(|cert| (seed, cert))
                });
                let Some((seed, cert)) = found else {
                    // An uncertifiable cell still gets a row, so the
                    // headline predicate fails loudly instead of the cell
                    // silently vanishing from the table.
                    rows.push(E12StabilizationRow {
                        d,
                        kind: kind_tag.to_string(),
                        channel: chan_tag.to_string(),
                        seed: 0,
                        fault_end: 0,
                        stabilized_at: 0,
                        bound: 0,
                        cert_ok: false,
                    });
                    continue;
                };
                let WitnessKind::Stabilization(w) = &cert.witness else {
                    unreachable!("the emitter wraps a stabilization witness");
                };
                rows.push(E12StabilizationRow {
                    d,
                    kind: kind_tag.to_string(),
                    channel: chan_tag.to_string(),
                    seed,
                    fault_end: w.fault_end,
                    stabilized_at: w.stabilized_at,
                    bound: w.claimed_bound,
                    cert_ok: check_certificate(&cert).is_ok(),
                });
            }
        }
    }
    rows
}

/// Renders the stabilization-grid table.
pub fn render_stabilization(rows: &[E12StabilizationRow]) -> String {
    crate::table::render(
        &[
            "d",
            "kind",
            "channel",
            "seed",
            "last strike",
            "stabilized at",
            "certified bound",
            "checker",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.d.to_string(),
                    r.kind.clone(),
                    r.channel.clone(),
                    r.seed.to_string(),
                    r.fault_end.to_string(),
                    r.stabilized_at.to_string(),
                    r.bound.to_string(),
                    if r.cert_ok { "accepted" } else { "rejected" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Flattens the grid rows into telemetry records (`{"stabilization": …}`
/// lines, one per certified cell).
pub fn stabilization_records(rows: &[E12StabilizationRow]) -> Vec<StabilizationRecord> {
    rows.iter()
        .map(|r| StabilizationRecord {
            experiment: "e12".to_string(),
            protocol: "stabilizing".to_string(),
            channel: r.channel.clone(),
            kind: r.kind.clone(),
            seed: r.seed,
            index: 1,
            fault_end: r.fault_end,
            corruption_events: 1,
            stabilized_at: Some(r.stabilized_at),
            steps_to_stabilize: Some(r.bound),
        })
        .collect()
}

/// Re-emits one grid cell's certificate (for artifact export).
pub fn cell_certificate(row: &E12StabilizationRow) -> Option<Certificate> {
    let family = FamilySpec::Stabilizing {
        d: row.d,
        max_len: 6,
    };
    let input = DataSeq::from_indices((0..4u16).map(|i| (i + 1) % row.d));
    let action = grid_kinds()
        .into_iter()
        .find(|(_, tag)| *tag == row.kind)?
        .0;
    let channel = match row.channel.as_str() {
        "dup" => ChannelSpec::Dup,
        _ => ChannelSpec::Del,
    };
    let clause =
        FaultClause::new(action, Trigger::OnWrite { index: 1 }).direction(Direction::ToReceiver);
    stabilization_certificate(
        &family,
        &channel,
        &input,
        &FaultPlan::single(row.seed, clause),
        &SchedulerSpec::Eager,
        20_000,
        5_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_classical_protocols_diverge_under_corruption() {
        let rows = run_fragility(3);
        assert!(!rows.is_empty(), "some strikes must land");
        // Every landed strike is either reconverged or flagged.
        for r in &rows {
            assert!(
                r.reconverged || r.violation != "none",
                "{r:?}: neither reconverged nor flagged"
            );
        }
        // …and at least one classical protocol genuinely diverges: the
        // tight sender's desynchronized counter deadlocks the handshake.
        assert!(
            rows.iter()
                .any(|r| !r.reconverged && r.violation == "stall"),
            "no strike stalled a classical protocol"
        );
    }

    #[test]
    fn e12_stabilization_grid_certifies_every_cell() {
        let rows = run_stabilization_grid();
        assert_eq!(rows.len(), 12, "2 domains × 3 kinds × 2 channels");
        for r in &rows {
            assert!(r.cert_ok, "{r:?}: checker rejected the cell");
            assert_eq!(r.bound, r.stabilized_at.saturating_sub(r.fault_end));
        }
    }

    #[test]
    fn e12_cell_certificates_rebuild_and_check() {
        let rows = run_stabilization_grid();
        let cert = cell_certificate(&rows[0]).expect("the certified cell rebuilds");
        check_certificate(&cert).expect("rebuilt certificate still checks");
    }
}
