//! The durable benchmark trajectory: `BENCH_history.jsonl`.
//!
//! `BENCH_sweep.json` and `BENCH_sessions.json` are snapshots — each run
//! overwrites the last, so the repo only ever knows its *current* speed.
//! This module makes the trajectory durable: every bench run appends one
//! schema-versioned [`HistoryRecord`] (commit, host shape, lane metrics,
//! per-phase cost breakdown) to a JSON-Lines file that CI uploads as an
//! artifact, and the `bench_gate` binary reads back to compare a fresh
//! run against the *median of its own history* — a noise-aware baseline
//! no single hot or cold run can move much (see [`crate::gate`]).
//!
//! Records from future schema versions are skipped on load, never
//! errors: an old gate binary must not fail CI because a newer one wrote
//! a richer record next to its own.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::Path;
use stp_sim::ProfRecord;

/// The schema version this crate writes. Bump on any incompatible change
/// to [`HistoryRecord`]; loaders skip records with a *newer* version.
pub const HISTORY_SCHEMA_VERSION: u32 = 1;

/// The canonical history file name, written in the working directory
/// next to `BENCH_sweep.json` / `BENCH_sessions.json`.
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// One phase's slice of a run's busy time, as persisted in history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseShare {
    /// Phase name (`sender_step`, `deliver_dup`, …).
    pub phase: String,
    /// Fraction of attributed busy time spent in this phase.
    pub share: f64,
    /// Absolute nanoseconds attributed to this phase.
    pub total_ns: u64,
}

/// One benchmark run's durable record: who ran, where, and what it cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Schema version of this record ([`HISTORY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Which benchmark wrote it (`bench_sweep`, `bench_sessions`).
    pub bench: String,
    /// The commit the benched tree was at, or `unknown` outside a repo.
    pub commit: String,
    /// Parallelism actually granted to the bench process.
    pub host_cores_effective: usize,
    /// CPUs the kernel reports, `>= host_cores_effective`.
    pub host_cores_present: usize,
    /// Flat name → value map of every gate-relevant lane metric.
    pub metrics: BTreeMap<String, f64>,
    /// Per-phase cost breakdown from the profiled lane, busiest first.
    #[serde(default = "Vec::new")]
    pub phases: Vec<PhaseShare>,
}

impl HistoryRecord {
    /// Starts a record for `bench` stamped with the current commit and
    /// host shape; metrics and phases are added with [`Self::metric`] and
    /// [`Self::phases_from`].
    pub fn new(bench: &str) -> HistoryRecord {
        let (effective, present) = crate::host::host_parallelism();
        HistoryRecord {
            schema_version: HISTORY_SCHEMA_VERSION,
            bench: bench.to_string(),
            commit: commit_id(),
            host_cores_effective: effective,
            host_cores_present: present,
            metrics: BTreeMap::new(),
            phases: Vec::new(),
        }
    }

    /// Adds one gate-relevant metric (builder style).
    #[must_use]
    pub fn metric(mut self, name: &str, value: f64) -> HistoryRecord {
        self.metrics.insert(name.to_string(), value);
        self
    }

    /// Copies the per-phase breakdown out of a profiler report.
    #[must_use]
    pub fn phases_from(mut self, prof: &ProfRecord) -> HistoryRecord {
        self.phases = prof
            .phases
            .iter()
            .map(|p| PhaseShare {
                phase: p.phase.clone(),
                share: p.share,
                total_ns: p.total_ns,
            })
            .collect();
        self
    }
}

/// The commit identifier to stamp records with: `STP_COMMIT` if set
/// (lets CI pin the exact sha it checked out), else `GITHUB_SHA`, else
/// `git rev-parse --short=12 HEAD`, else `"unknown"`.
pub fn commit_id() -> String {
    for var in ["STP_COMMIT", "GITHUB_SHA"] {
        if let Ok(v) = std::env::var(var) {
            if !v.trim().is_empty() {
                return v.trim().to_string();
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Appends one record as a JSON line, creating the file if needed.
///
/// # Errors
///
/// Propagates serialization and file I/O errors.
pub fn append(path: &Path, record: &HistoryRecord) -> io::Result<()> {
    let line = serde_json::to_string(record).map_err(io::Error::other)?;
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{line}")
}

/// Loads every readable record from a history file, oldest first.
///
/// Missing files read as an empty history (a fresh checkout has no
/// trajectory yet); unparseable lines and records from a newer schema
/// are skipped with a note on stderr rather than failing the caller.
pub fn load(path: &Path) -> Vec<HistoryRecord> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(_) => return Vec::new(),
    };
    let mut records = Vec::new();
    for (no, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<HistoryRecord>(line) {
            Ok(r) if r.schema_version <= HISTORY_SCHEMA_VERSION => records.push(r),
            Ok(r) => eprintln!(
                "history: {}:{}: skipping schema v{} record (this binary reads <= v{})",
                path.display(),
                no + 1,
                r.schema_version,
                HISTORY_SCHEMA_VERSION
            ),
            Err(e) => eprintln!(
                "history: {}:{}: skipping unparseable line: {e}",
                path.display(),
                no + 1
            ),
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("stp-bench-history-tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    #[test]
    fn records_round_trip_through_append_and_load() {
        let path = scratch("round_trip.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = HistoryRecord::new("bench_sweep")
            .metric("engine_secs", 0.012)
            .metric("prof_overhead", 0.021);
        append(&path, &rec).expect("append");
        append(&path, &rec.clone().metric("engine_secs", 0.013)).expect("append");
        let back = load(&path);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], rec);
        assert_eq!(back[1].metrics["engine_secs"], 0.013);
        assert_eq!(back[0].schema_version, HISTORY_SCHEMA_VERSION);
        assert!(back[0].host_cores_present >= back[0].host_cores_effective);
    }

    #[test]
    fn load_skips_junk_and_newer_schemas_without_failing() {
        let path = scratch("skips.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = HistoryRecord::new("bench_sessions").metric("busy_secs", 1.5);
        append(&path, &rec).expect("append");
        let mut newer = rec.clone();
        newer.schema_version = HISTORY_SCHEMA_VERSION + 1;
        append(&path, &newer).expect("append");
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "not json at all"))
            .expect("junk line");
        let back = load(&path);
        assert_eq!(back, vec![rec]);
    }

    #[test]
    fn missing_file_is_an_empty_history() {
        assert!(load(Path::new("/nonexistent/BENCH_history.jsonl")).is_empty());
    }

    #[test]
    fn phases_copy_out_of_a_prof_report() {
        let prof = stp_sim::PhaseProfiler::new(1);
        prof.time(stp_sim::Phase::SenderStep, || std::hint::black_box(3));
        let report = prof.report("bench", "test");
        let rec = HistoryRecord::new("bench_sweep").phases_from(&report);
        assert!(!rec.phases.is_empty());
        assert_eq!(rec.phases[0].phase, "sender_step");
        assert!(rec.phases[0].total_ns > 0);
    }
}
