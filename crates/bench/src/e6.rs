//! **E6 — the `α` function.** The bound itself: exact values, the
//! recurrence `α(m) = m·α(m-1) + 1`, the enumeration cross-check (the
//! number of repetition-free sequences really is `α(m)`), and the
//! convergence `α(m)/m! → e`.

use serde::{Deserialize, Serialize};
use stp_core::alpha::{alpha, alpha_over_factorial, RepetitionFreeSeqs};

/// One row of the α table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E6Row {
    /// Alphabet size.
    pub m: u32,
    /// `α(m)`.
    pub alpha: u128,
    /// `α(m)/m!`.
    pub ratio: f64,
    /// `e − α(m)/m!` (positive, shrinking).
    pub gap_to_e: f64,
    /// Enumerated repetition-free sequence count (`None` above the
    /// enumeration cutoff).
    pub enumerated: Option<u128>,
}

/// Runs E6 for `m = 0..=max_m`, enumerating explicitly up to
/// `enumerate_up_to`.
pub fn run(max_m: u32, enumerate_up_to: u32) -> Vec<E6Row> {
    (0..=max_m)
        .map(|m| {
            let a = alpha(m).expect("within u128 range");
            let ratio = alpha_over_factorial(m).expect("within range");
            let enumerated =
                (m <= enumerate_up_to).then(|| RepetitionFreeSeqs::new(m as u16).count() as u128);
            E6Row {
                m,
                alpha: a,
                ratio,
                gap_to_e: std::f64::consts::E - ratio,
                enumerated,
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(rows: &[E6Row]) -> String {
    crate::table::render(
        &["m", "alpha(m)", "alpha/m!", "e - ratio", "enumerated"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.alpha.to_string(),
                    format!("{:.12}", r.ratio),
                    format!("{:.3e}", r.gap_to_e),
                    r.enumerated
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_enumeration_matches_closed_form() {
        for r in run(7, 7) {
            assert_eq!(r.enumerated, Some(r.alpha), "m={}", r.m);
        }
    }

    #[test]
    fn e6_gap_to_e_shrinks_monotonically() {
        let rows = run(20, 0);
        for w in rows.windows(2).skip(1) {
            assert!(w[1].gap_to_e <= w[0].gap_to_e, "m={}", w[1].m);
            assert!(w[1].gap_to_e >= 0.0);
        }
    }
}
