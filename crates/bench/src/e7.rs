//! **E7 — protocol cost comparison.** The early protocol literature the
//! paper builds on (\[BSW69\], \[Ste76\], \[AUY79\]) optimized message counts;
//! this experiment reports messages-per-delivered-item and
//! steps-per-item for every protocol on its home channel, across fault
//! intensities — including the dishonest cell: ABP placed on a
//! *reordering* channel, where its alternating bit is no longer sound.

use serde::{Deserialize, Serialize};
use stp_channel::{
    Channel, DelChannel, DropHeavyScheduler, DupChannel, DupStormScheduler, EagerScheduler,
    LossyFifoChannel, Scheduler, TimedChannel,
};
use stp_core::data::DataSeq;
use stp_core::require::check_safety;
use stp_protocols::{
    AbpReceiver, AbpSender, GoBackNReceiver, GoBackNSender, HybridReceiver, HybridSender,
    ResendPolicy, StenningReceiver, StenningSender, TightReceiver, TightSender,
};
use stp_sim::{RunStats, World};

/// One row of the cost table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E7Row {
    /// Protocol label.
    pub protocol: String,
    /// Channel label.
    pub channel: String,
    /// Fault intensity label.
    pub faults: String,
    /// Whether the run completed safely.
    pub complete: bool,
    /// Whether safety held (liveness may still fail).
    pub safe: bool,
    /// Messages per delivered item.
    pub sends_per_item: f64,
    /// Steps per delivered item.
    pub steps_per_item: f64,
}

const N: usize = 8;

#[allow(clippy::too_many_arguments)]
fn run_one(
    protocol: &str,
    channel_label: &str,
    faults: &str,
    input: DataSeq,
    sender: Box<dyn stp_core::proto::Sender>,
    receiver: Box<dyn stp_core::proto::Receiver>,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
) -> E7Row {
    let mut w = World::builder(input)
        .sender(sender)
        .receiver(receiver)
        .channel(channel)
        .scheduler(scheduler)
        .build()
        .expect("all components supplied");
    w.run_until(200_000, World::is_complete);
    let stats = RunStats::of(w.trace());
    E7Row {
        protocol: protocol.to_string(),
        channel: channel_label.to_string(),
        faults: faults.to_string(),
        complete: stats.is_complete(),
        safe: check_safety(w.trace()).is_ok(),
        sends_per_item: stats.sends_per_item().unwrap_or(f64::NAN),
        steps_per_item: if stats.written > 0 {
            stats.steps as f64 / stats.written as f64
        } else {
            f64::NAN
        },
    }
}

/// Runs the cost grid with one seed.
pub fn run(seed: u64) -> Vec<E7Row> {
    let perm: DataSeq = DataSeq::from_indices(0..N as u16);
    let bits: DataSeq = DataSeq::from_indices((0..N).map(|i| (i % 2) as u16));
    let mut rows = Vec::new();

    // Tight protocol on its home channels.
    rows.push(run_one(
        "tight-dup",
        "reorder+dup",
        "storm 0.9",
        perm.clone(),
        Box::new(TightSender::new(perm.clone(), N as u16, ResendPolicy::Once)),
        Box::new(TightReceiver::new(N as u16, ResendPolicy::Once)),
        Box::new(DupChannel::new()),
        Box::new(DupStormScheduler::new(seed, 0.9)),
    ));
    for (label, p_drop, p_del) in [
        ("drop 0.1", 0.1, 0.8),
        ("drop 0.3", 0.3, 0.6),
        ("drop 0.5", 0.5, 0.5),
    ] {
        rows.push(run_one(
            "tight-del",
            "reorder+del",
            label,
            perm.clone(),
            Box::new(TightSender::new(
                perm.clone(),
                N as u16,
                ResendPolicy::EveryTick,
            )),
            Box::new(TightReceiver::new(N as u16, ResendPolicy::EveryTick)),
            Box::new(DelChannel::new()),
            Box::new(DropHeavyScheduler::new(seed, p_drop, p_del)),
        ));
    }

    // ABP and Stenning on the lossy FIFO they were designed for.
    for (label, p_drop, p_del) in [
        ("drop 0.0", 0.0, 0.9),
        ("drop 0.2", 0.2, 0.8),
        ("drop 0.4", 0.4, 0.6),
    ] {
        rows.push(run_one(
            "abp",
            "lossy-fifo",
            label,
            bits.clone(),
            Box::new(AbpSender::new(bits.clone(), 2)),
            Box::new(AbpReceiver::new(2)),
            Box::new(LossyFifoChannel::new()),
            Box::new(DropHeavyScheduler::new(seed, p_drop, p_del)),
        ));
        rows.push(run_one(
            "stenning-4",
            "lossy-fifo",
            label,
            bits.clone(),
            Box::new(StenningSender::new(bits.clone(), 2, 4)),
            Box::new(StenningReceiver::new(2, 4)),
            Box::new(LossyFifoChannel::new()),
            Box::new(DropHeavyScheduler::new(seed, p_drop, p_del)),
        ));
        rows.push(run_one(
            "go-back-4",
            "lossy-fifo",
            label,
            bits.clone(),
            Box::new(GoBackNSender::new(bits.clone(), 2, 8, 4)),
            Box::new(GoBackNReceiver::new(2, 8)),
            Box::new(LossyFifoChannel::new()),
            Box::new(DropHeavyScheduler::new(seed, p_drop, p_del)),
        ));
    }

    // The dishonest cell: ABP on a *reordering, duplicating* channel.
    // Stale bits masquerade as fresh; completeness or safety gives way —
    // the motivation for the paper's whole setup.
    rows.push(run_one(
        "abp",
        "reorder+dup",
        "storm 0.9",
        bits.clone(),
        Box::new(AbpSender::new(bits.clone(), 2)),
        Box::new(AbpReceiver::new(2)),
        Box::new(DupChannel::new()),
        Box::new(DupStormScheduler::new(seed, 0.9)),
    ));

    // The hybrid on its timed channel, fault-free.
    rows.push(run_one(
        "hybrid",
        "timed",
        "none",
        bits.clone(),
        Box::new(HybridSender::new(bits.clone(), 2, 3)),
        Box::new(HybridReceiver::new(2)),
        Box::new(TimedChannel::new(3)),
        Box::new(EagerScheduler::new()),
    ));
    rows
}

/// Renders the cost table.
pub fn render(rows: &[E7Row]) -> String {
    crate::table::render(
        &[
            "protocol",
            "channel",
            "faults",
            "complete",
            "safe",
            "sends/item",
            "steps/item",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.channel.clone(),
                    r.faults.clone(),
                    r.complete.to_string(),
                    r.safe.to_string(),
                    format!("{:.2}", r.sends_per_item),
                    format!("{:.2}", r.steps_per_item),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_home_channels_complete() {
        let rows = run(7);
        for r in rows
            .iter()
            .filter(|r| !(r.protocol == "abp" && r.channel == "reorder+dup"))
        {
            assert!(r.complete, "{} on {} ({})", r.protocol, r.channel, r.faults);
        }
    }

    #[test]
    fn e7_abp_misbehaves_on_reordering_channels() {
        // Under a duplication storm the alternating bit is unsound: the
        // run must fail to complete correctly (either unsafe writes or a
        // stall — with ⟨0,1,0,1,…⟩ stale (bit,value) replays typically
        // corrupt the output).
        let rows = run(7);
        let cell = rows
            .iter()
            .find(|r| r.protocol == "abp" && r.channel == "reorder+dup")
            .unwrap();
        assert!(
            !cell.complete || !cell.safe,
            "ABP should not survive a reordering+duplicating channel: {cell:?}"
        );
    }

    #[test]
    fn e7_windowed_protocol_finishes_faster_than_stop_and_wait() {
        // With frames pipelined, go-back-N needs fewer steps per item than
        // ABP on the same lossless link.
        let rows = run(11);
        let abp = rows
            .iter()
            .find(|r| r.protocol == "abp" && r.faults == "drop 0.0")
            .unwrap();
        let gbn = rows
            .iter()
            .find(|r| r.protocol == "go-back-4" && r.faults == "drop 0.0")
            .unwrap();
        assert!(gbn.complete);
        assert!(
            gbn.steps_per_item < abp.steps_per_item,
            "gbn {gbn:?} vs abp {abp:?}"
        );
    }

    #[test]
    fn e7_costs_rise_with_drop_rate() {
        let rows = run(3);
        let abp: Vec<&E7Row> = rows
            .iter()
            .filter(|r| r.protocol == "abp" && r.channel == "lossy-fifo")
            .collect();
        assert!(abp[0].sends_per_item <= abp[2].sends_per_item * 1.5 + 5.0);
        // Loss can only make things more expensive on average; allow noise
        // but insist the lossless run is no more costly than the worst.
        assert!(
            abp[0].sends_per_item
                <= abp.iter().map(|r| r.sends_per_item).fold(0.0, f64::max) + f64::EPSILON
        );
    }
}
