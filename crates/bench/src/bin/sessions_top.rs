//! `top` for the session fleet: runs a seeded churn workload on the
//! sharded session store and renders a live, refreshing per-shard table
//! (throughput, p50/p99 latency, queue depth, oldest-active-age, stall
//! flags) sampled lock-free from the [`FleetRegistry`] while the shards
//! step — the dashboard the `stp-sim::fleet` module exists to feed.
//!
//! Modes:
//!
//! * default — live view: the workload runs on worker threads, the main
//!   thread redraws the table every `--interval` milliseconds from
//!   [`FleetWatch`](stp_sim::fleet::FleetWatch) deltas until the run
//!   completes.
//! * `--once` — non-interactive: run the workload to completion, print
//!   the final table exactly once (no ANSI escapes), for CI and scripts.
//! * `--prometheus` — additionally print the final snapshot in the
//!   Prometheus text exposition format.
//!
//! With `STP_TELEMETRY` set, every refresh emits an aggregate
//! `{"fleet": …}` line, the final snapshot adds one line per shard, and
//! every watchdog flag becomes a `{"stall": …}` line — all validated by
//! `validate_telemetry`.
//!
//! Usage: `sessions_top [--once] [--prometheus] [--shards N]
//! [--sessions N] [--interval MS]`

use std::time::Duration;
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_protocols::{FamilySpec, ResendPolicy};
use stp_sim::fleet::{
    prometheus_text, FleetDelta, FleetRegistry, FleetSnapshot, ShardDelta, WatchdogSpec, NO_SAMPLES,
};
use stp_sim::sessions::{run_churn_fleet, ChurnSpec, ServerSpec, SessionTemplate};

struct Args {
    once: bool,
    prometheus: bool,
    shards: u16,
    sessions: u64,
    interval: Duration,
}

fn parse_args() -> Args {
    let mut args = Args {
        once: false,
        prometheus: false,
        shards: 4,
        sessions: 200_000,
        interval: Duration::from_millis(500),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--once" => args.once = true,
            "--prometheus" => args.prometheus = true,
            "--shards" => {
                args.shards = value("--shards").parse().unwrap_or_else(|e| {
                    die(&format!("--shards: {e}"));
                })
            }
            "--sessions" => {
                args.sessions = value("--sessions").parse().unwrap_or_else(|e| {
                    die(&format!("--sessions: {e}"));
                })
            }
            "--interval" => {
                let ms: u64 = value("--interval").parse().unwrap_or_else(|e| {
                    die(&format!("--interval: {e}"));
                });
                args.interval = Duration::from_millis(ms.max(50));
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!(
        "sessions_top: {msg}\nusage: sessions_top [--once] [--prometheus] [--shards N] \
         [--sessions N] [--interval MS]"
    );
    std::process::exit(2);
}

// The same mix the churn bench runs, scaled to a dashboard-sized
// workload, with the default watchdog armed so the STALLS column is
// live.
fn workload(args: &Args) -> ChurnSpec {
    ChurnSpec {
        sessions: args.sessions,
        arrivals_per_round: 1_024,
        server: ServerSpec {
            shards: args.shards,
            capacity_per_shard: 2_048,
            quantum: 8,
            watchdog: Some(WatchdogSpec::default()),
        },
        max_steps: 2_000,
        seed: 0x70_5E55,
        disconnect_rate: 0.05,
        disconnect_after: 2,
        mix: vec![
            SessionTemplate {
                family: FamilySpec::Tight {
                    d: 3,
                    policy: ResendPolicy::Once,
                },
                channel: ChannelSpec::Dup,
                scheduler: SchedulerSpec::DupStorm { p_deliver: 0.9 },
            },
            SessionTemplate {
                family: FamilySpec::Abp {
                    domain: 2,
                    max_len: 3,
                },
                channel: ChannelSpec::LossyFifo,
                scheduler: SchedulerSpec::Random { p_deliver: 0.8 },
            },
        ],
    }
}

fn fmt_quantile(q: f64) -> String {
    if q == NO_SAMPLES {
        "-".to_string()
    } else {
        format!("{q:.0}")
    }
}

fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) if r >= 0.0 => format!("{r:.0}"),
        _ => "-".to_string(),
    }
}

// One table: a header, one row per shard, and an aggregate row. Rates
// come from the watch delta when there is one (live view); the final
// `--once` table reports the whole-run average instead.
fn render(snapshot: &FleetSnapshot, deltas: Option<&FleetDelta>, avg_rate: Option<f64>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>5} {:>8} {:>7} {:>7} {:>9} {:>9} {:>6} {:>6} {:>7} {:>7}\n",
        "SHARD", "ROUND", "ACTIVE", "QUEUE", "DONE", "RATE/s", "p50", "p99", "OLDEST", "STALLS"
    ));
    let shard_rate = |shard: u16| -> Option<f64> {
        let d = deltas?;
        let per: &ShardDelta = d.per_shard.iter().find(|p| p.shard == shard)?;
        (d.secs > 0.0).then(|| per.completed as f64 / d.secs)
    };
    for s in &snapshot.shards {
        out.push_str(&format!(
            "{:>5} {:>8} {:>7} {:>7} {:>9} {:>9} {:>6} {:>6} {:>7} {:>7}\n",
            s.shard,
            s.round,
            s.active,
            s.queued,
            s.completed,
            fmt_rate(shard_rate(s.shard)),
            fmt_quantile(s.p50_latency_rounds()),
            fmt_quantile(s.p99_latency_rounds()),
            s.oldest_active_age,
            s.stalls,
        ));
    }
    let stats = snapshot.stats();
    let rate = deltas
        .filter(|d| d.secs > 0.0)
        .map(FleetDelta::sessions_per_sec)
        .or(avg_rate);
    out.push_str(&format!(
        "{:>5} {:>8} {:>7} {:>7} {:>9} {:>9} {:>6} {:>6} {:>7} {:>7}\n",
        "ALL",
        stats.round,
        stats.active,
        stats.queued,
        stats.completed,
        fmt_rate(rate),
        fmt_quantile(stats.p50_latency_rounds()),
        fmt_quantile(stats.p99_latency_rounds()),
        stats.oldest_active_age,
        stats.stalls,
    ));
    out
}

fn main() {
    let args = parse_args();
    let spec = workload(&args);
    let fleet = FleetRegistry::new(args.shards);
    let mut telemetry = stp_bench::telemetry::writer();
    let mut emit = |record: &stp_sim::FleetRecord| {
        if let Some(w) = telemetry.as_mut() {
            if let Err(e) = w.emit_fleet(record) {
                eprintln!("sessions_top: fleet telemetry failed: {e}");
            }
        }
    };

    let report = if args.once {
        run_churn_fleet(&spec, None, &fleet)
    } else {
        // Live view: the workload runs on its own thread (which spawns
        // one worker per shard); this thread samples and redraws.
        let mut watch = fleet.watch();
        let worker = {
            let spec = spec.clone();
            let fleet = fleet.clone();
            std::thread::spawn(move || run_churn_fleet(&spec, None, &fleet))
        };
        while !worker.is_finished() {
            std::thread::sleep(args.interval);
            let delta = watch.tick();
            emit(&delta.snapshot.stats().record("sessions_top"));
            // Clear screen + home, then the table — plain ANSI, no TUI
            // dependency.
            print!(
                "\x1b[2J\x1b[H{}",
                render(&delta.snapshot, Some(&delta), None)
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        worker.join().expect("churn worker panicked")
    };

    // Final state: the definitive table (printed once, no escapes), the
    // per-shard + aggregate telemetry lines, and any watchdog flags.
    let snapshot = fleet.snapshot();
    let avg_rate = (report.wall_secs > 0.0).then(|| report.completed as f64 / report.wall_secs);
    print!("{}", render(&snapshot, None, avg_rate));
    println!(
        "{} sessions: {} completed, {} disconnected, {} exhausted, {} stalled in {:.2}s",
        report.submitted,
        report.completed,
        report.disconnected,
        report.exhausted,
        report.stalls.len(),
        report.wall_secs,
    );
    for shard in &snapshot.shards {
        emit(&shard.record("sessions_top"));
    }
    emit(&snapshot.stats().record("sessions_top"));
    if let Some(w) = telemetry.as_mut() {
        let result = report
            .stalls
            .iter()
            .cloned()
            .try_for_each(|mut stall| {
                stall.experiment = "sessions_top".to_string();
                w.emit_stall(&stall)
            })
            .and_then(|()| w.flush());
        if let Err(e) = result {
            eprintln!("sessions_top: stall telemetry failed: {e}");
        }
    }

    if args.prometheus {
        print!("{}", prometheus_text(&snapshot));
    }
}
