//! `top` for the session fleet: runs a seeded churn workload on the
//! sharded session store and renders a live, refreshing per-shard table
//! (throughput, p50/p99 latency, queue depth, oldest-active-age, stall
//! flags) sampled lock-free from the [`FleetRegistry`] while the shards
//! step — the dashboard the `stp-sim::fleet` module exists to feed.
//!
//! Modes:
//!
//! * default — live view: the workload runs on worker threads, the main
//!   thread redraws the table every `--interval` milliseconds from
//!   [`FleetWatch`](stp_sim::fleet::FleetWatch) deltas until the run
//!   completes.
//! * `--once` — non-interactive: run the workload to completion, print
//!   the final table exactly once (no ANSI escapes), for CI and scripts.
//! * `--prometheus` — additionally print the final snapshot in the
//!   Prometheus text exposition format, followed by the per-phase cost
//!   metrics from the phase-scoped profiler that rides along with every
//!   run (`stp_prof_*` families).
//!
//! With `STP_TELEMETRY` set, every refresh emits an aggregate
//! `{"fleet": …}` line, the final snapshot adds one line per shard, and
//! every watchdog flag becomes a `{"stall": …}` line — all validated by
//! `validate_telemetry`.
//!
//! Usage: `sessions_top [--once] [--prometheus] [--shards N]
//! [--sessions N] [--interval MS]`

use std::sync::Arc;
use std::time::Duration;
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_protocols::{FamilySpec, ResendPolicy};
use stp_sim::fleet::{
    prometheus_text, FleetDelta, FleetRegistry, FleetSnapshot, ShardDelta, WatchdogSpec, NO_SAMPLES,
};
use stp_sim::sessions::{run_churn_fleet_profiled, ChurnSpec, ServerSpec, SessionTemplate};
use stp_sim::{prometheus_prof_text, PhaseProfiler, ProfRecord};

struct Args {
    once: bool,
    prometheus: bool,
    shards: u16,
    sessions: u64,
    interval: Duration,
}

fn parse_args() -> Args {
    let mut args = Args {
        once: false,
        prometheus: false,
        shards: 4,
        sessions: 200_000,
        interval: Duration::from_millis(500),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--once" => args.once = true,
            "--prometheus" => args.prometheus = true,
            "--shards" => {
                args.shards = value("--shards").parse().unwrap_or_else(|e| {
                    die(&format!("--shards: {e}"));
                })
            }
            "--sessions" => {
                args.sessions = value("--sessions").parse().unwrap_or_else(|e| {
                    die(&format!("--sessions: {e}"));
                })
            }
            "--interval" => {
                let ms: u64 = value("--interval").parse().unwrap_or_else(|e| {
                    die(&format!("--interval: {e}"));
                });
                args.interval = Duration::from_millis(ms.max(50));
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!(
        "sessions_top: {msg}\nusage: sessions_top [--once] [--prometheus] [--shards N] \
         [--sessions N] [--interval MS]"
    );
    std::process::exit(2);
}

// The same mix the churn bench runs, scaled to a dashboard-sized
// workload, with the default watchdog armed so the STALLS column is
// live.
fn workload(args: &Args) -> ChurnSpec {
    ChurnSpec {
        sessions: args.sessions,
        arrivals_per_round: 1_024,
        server: ServerSpec {
            shards: args.shards,
            capacity_per_shard: 2_048,
            quantum: 8,
            watchdog: Some(WatchdogSpec::default()),
        },
        max_steps: 2_000,
        seed: 0x70_5E55,
        disconnect_rate: 0.05,
        disconnect_after: 2,
        mix: vec![
            SessionTemplate {
                family: FamilySpec::Tight {
                    d: 3,
                    policy: ResendPolicy::Once,
                },
                channel: ChannelSpec::Dup,
                scheduler: SchedulerSpec::DupStorm { p_deliver: 0.9 },
            },
            SessionTemplate {
                family: FamilySpec::Abp {
                    domain: 2,
                    max_len: 3,
                },
                channel: ChannelSpec::LossyFifo,
                scheduler: SchedulerSpec::Random { p_deliver: 0.8 },
            },
        ],
    }
}

fn fmt_quantile(q: f64) -> String {
    if q == NO_SAMPLES {
        "-".to_string()
    } else {
        format!("{q:.0}")
    }
}

fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) if r >= 0.0 => format!("{r:.0}"),
        _ => "-".to_string(),
    }
}

// One table: a header, one row per shard, and an aggregate row. Rates
// come from the watch delta when there is one (live view); the final
// `--once` table reports the whole-run average instead.
fn render(snapshot: &FleetSnapshot, deltas: Option<&FleetDelta>, avg_rate: Option<f64>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>5} {:>8} {:>7} {:>7} {:>9} {:>9} {:>6} {:>6} {:>7} {:>7}\n",
        "SHARD", "ROUND", "ACTIVE", "QUEUE", "DONE", "RATE/s", "p50", "p99", "OLDEST", "STALLS"
    ));
    let shard_rate = |shard: u16| -> Option<f64> {
        let d = deltas?;
        let per: &ShardDelta = d.per_shard.iter().find(|p| p.shard == shard)?;
        (d.secs > 0.0).then(|| per.completed as f64 / d.secs)
    };
    for s in &snapshot.shards {
        out.push_str(&format!(
            "{:>5} {:>8} {:>7} {:>7} {:>9} {:>9} {:>6} {:>6} {:>7} {:>7}\n",
            s.shard,
            s.round,
            s.active,
            s.queued,
            s.completed,
            fmt_rate(shard_rate(s.shard)),
            fmt_quantile(s.p50_latency_rounds()),
            fmt_quantile(s.p99_latency_rounds()),
            s.oldest_active_age,
            s.stalls,
        ));
    }
    let stats = snapshot.stats();
    let rate = deltas
        .filter(|d| d.secs > 0.0)
        .map(FleetDelta::sessions_per_sec)
        .or(avg_rate);
    out.push_str(&format!(
        "{:>5} {:>8} {:>7} {:>7} {:>9} {:>9} {:>6} {:>6} {:>7} {:>7}\n",
        "ALL",
        stats.round,
        stats.active,
        stats.queued,
        stats.completed,
        fmt_rate(rate),
        fmt_quantile(stats.p50_latency_rounds()),
        fmt_quantile(stats.p99_latency_rounds()),
        stats.oldest_active_age,
        stats.stalls,
    ));
    out
}

/// The full exposition page: fleet families first, then the profiler's
/// `stp_prof_*` families. Kept as a function so the unit tests below can
/// check the combined page is well-formed.
fn exposition(snapshot: &FleetSnapshot, prof: &ProfRecord) -> String {
    format!(
        "{}{}",
        prometheus_text(snapshot),
        prometheus_prof_text(prof)
    )
}

fn main() {
    let args = parse_args();
    let spec = workload(&args);
    let fleet = FleetRegistry::new(args.shards);
    // The profiler rides along on every run (sparse sampling, so the
    // dashboard numbers are unperturbed); its report feeds the
    // --prometheus page and the {"prof": …} telemetry line.
    let prof = Arc::new(PhaseProfiler::new(PhaseProfiler::DEFAULT_PERIOD));
    let mut telemetry = stp_bench::telemetry::writer();
    let mut emit = |record: &stp_sim::FleetRecord| {
        if let Some(w) = telemetry.as_mut() {
            if let Err(e) = w.emit_fleet(record) {
                eprintln!("sessions_top: fleet telemetry failed: {e}");
            }
        }
    };

    let report = if args.once {
        run_churn_fleet_profiled(&spec, None, &fleet, &prof)
    } else {
        // Live view: the workload runs on its own thread (which spawns
        // one worker per shard); this thread samples and redraws.
        let mut watch = fleet.watch();
        let worker = {
            let spec = spec.clone();
            let fleet = fleet.clone();
            let prof = Arc::clone(&prof);
            std::thread::spawn(move || run_churn_fleet_profiled(&spec, None, &fleet, &prof))
        };
        while !worker.is_finished() {
            std::thread::sleep(args.interval);
            let delta = watch.tick();
            emit(&delta.snapshot.stats().record("sessions_top"));
            // Clear screen + home, then the table — plain ANSI, no TUI
            // dependency.
            print!(
                "\x1b[2J\x1b[H{}",
                render(&delta.snapshot, Some(&delta), None)
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        worker.join().expect("churn worker panicked")
    };

    // Final state: the definitive table (printed once, no escapes), the
    // per-shard + aggregate telemetry lines, and any watchdog flags.
    let snapshot = fleet.snapshot();
    let avg_rate = (report.wall_secs > 0.0).then(|| report.completed as f64 / report.wall_secs);
    print!("{}", render(&snapshot, None, avg_rate));
    println!(
        "{} sessions: {} completed, {} disconnected, {} exhausted, {} stalled in {:.2}s",
        report.submitted,
        report.completed,
        report.disconnected,
        report.exhausted,
        report.stalls.len(),
        report.wall_secs,
    );
    for shard in &snapshot.shards {
        emit(&shard.record("sessions_top"));
    }
    emit(&snapshot.stats().record("sessions_top"));
    let prof_record = prof.report("sessions_top", "churn");
    if let Some(w) = telemetry.as_mut() {
        if let Err(e) = w.emit_prof(&prof_record) {
            eprintln!("sessions_top: prof telemetry failed: {e}");
        }
    }
    if let Some(w) = telemetry.as_mut() {
        let result = report
            .stalls
            .iter()
            .cloned()
            .try_for_each(|mut stall| {
                stall.experiment = "sessions_top".to_string();
                w.emit_stall(&stall)
            })
            .and_then(|()| w.flush());
        if let Err(e) = result {
            eprintln!("sessions_top: stall telemetry failed: {e}");
        }
    }

    if args.prometheus {
        print!("{}", exposition(&snapshot, &prof_record));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A small but real exposition page: a registry with traffic on two
    // shards (shard 1 left idle so NO_SAMPLES quantiles are in play) and
    // a profiler with one timed window.
    fn sample_page() -> String {
        let fleet = FleetRegistry::new(2);
        fleet.shard(0).note_submitted();
        fleet.shard(0).note_admitted(false);
        fleet.shard(0).note_completed(3);
        let prof = PhaseProfiler::new(1);
        prof.time(stp_sim::Phase::SenderStep, || std::hint::black_box(1));
        exposition(&fleet.snapshot(), &prof.report("sessions_top", "churn"))
    }

    #[test]
    fn exposition_page_parses_as_prometheus_text_format() {
        let page = sample_page();
        assert!(page.ends_with('\n'), "exposition must end in a newline");
        for line in page.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in the page");
            if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment form: {line}");
            // Sample lines: `name{labels} value` or `name value`.
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!series.is_empty());
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in: {line}"
            );
        }
    }

    #[test]
    fn help_and_type_are_emitted_once_per_family() {
        let page = sample_page();
        let mut helps = std::collections::BTreeMap::new();
        let mut types = std::collections::BTreeMap::new();
        for line in page.lines() {
            for (prefix, counts) in [("# HELP ", &mut helps), ("# TYPE ", &mut types)] {
                if let Some(rest) = line.strip_prefix(prefix) {
                    let family = rest.split(' ').next().expect("family name").to_string();
                    *counts.entry(family).or_insert(0usize) += 1;
                }
            }
        }
        assert!(!helps.is_empty() && !types.is_empty());
        for (family, count) in helps.iter().chain(types.iter()) {
            assert_eq!(*count, 1, "duplicate HELP/TYPE for {family}");
        }
        // The fleet and prof halves must not collide on family names.
        assert!(helps.keys().any(|f| f.starts_with("stp_prof_")));
    }

    #[test]
    fn no_samples_sentinel_never_leaks_into_the_page() {
        let page = sample_page();
        for line in page.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let v: f64 = value.parse().expect("numeric sample");
            assert!(
                v != NO_SAMPLES,
                "NO_SAMPLES sentinel leaked as a sample: {series}"
            );
        }
    }
}
