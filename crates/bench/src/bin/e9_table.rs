//! Prints the E9 table (probabilistic X-STP, §6 future work).
fn main() {
    let rows = stp_bench::e9::run(2, 3, &[4, 5, 6, 7], 8);
    println!("E9 — probabilistic codebooks beyond alpha(m): failure probability vs code space");
    println!("{}", stp_bench::e9::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
    let ok = rows.iter().all(|r| r.claimed as u128 > r.alpha);
    stp_bench::telemetry::export_summary("e9", rows.len(), ok);
}
