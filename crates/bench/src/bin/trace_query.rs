//! Causal trace recorder and query tool.
//!
//! ```text
//! trace_query record [OUT_DIR] [SEED]     record one traced E1-style cell
//! trace_query --validate PERFETTO.json   structural checks on an export
//! trace_query fate ID [SPANS.jsonl]       full fate of one MsgId
//! trace_query critical I [SPANS.jsonl]    critical path of input item I
//! trace_query stalls [K] [SPANS.jsonl]    top-K stall intervals
//! ```
//!
//! `record` runs the tight protocol (`m = 4`) over a duplicating channel
//! under a duplication storm with `TraceProbe` + `FrontierProbe` +
//! `MetricsProbe` attached, reconciles spans against statistics, and
//! writes `OUT_DIR/trace.perfetto.json` (open it in `ui.perfetto.dev`)
//! plus `OUT_DIR/spans.jsonl` (run + span + frontier telemetry lines).
//! The query subcommands answer questions from the JSONL; `--validate`
//! checks the Perfetto JSON parses and is structurally sound. Every
//! failure path exits nonzero, so CI can gate on this binary.

use serde::Deserialize;
use std::collections::BTreeMap;
use std::process::ExitCode;
use stp_core::data::DataSeq;
use stp_core::event::{ProcessId, Step, TraceMode};
use stp_knowledge::FrontierProbe;
use stp_protocols::{ResendPolicy, TightReceiver, TightSender};
use stp_sim::metrics::MetricsProbe;
use stp_sim::telemetry::{FileSink, RunRecord, SpanRecord, TelemetryLine, TelemetryWriter};
use stp_sim::trace::{write_chrome_trace, TraceProbe};
use stp_sim::World;

const EXPERIMENT: &str = "e1-trace";
const M: u16 = 4;
const INPUT: [u16; 4] = [2, 0, 3, 1];
const DEFAULT_DIR: &str = "target/trace";
const DEFAULT_SEED: u64 = 7;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let result = match strs.as_slice() {
        ["record"] => record(DEFAULT_DIR, DEFAULT_SEED),
        ["record", dir] => record(dir, DEFAULT_SEED),
        ["record", dir, seed] => match seed.parse() {
            Ok(seed) => record(dir, seed),
            Err(_) => Err(format!("seed must be an integer, got {seed:?}")),
        },
        ["--validate", path] => validate(path),
        ["fate", id] => fate(id, &default_spans()),
        ["fate", id, spans] => fate(id, spans),
        ["critical", i] => critical(i, &default_spans()),
        ["critical", i, spans] => critical(i, spans),
        ["stalls"] => stalls("3", &default_spans()),
        ["stalls", k] => stalls(k, &default_spans()),
        ["stalls", k, spans] => stalls(k, spans),
        _ => Err(format!(
            "usage: trace_query record [OUT_DIR] [SEED] | --validate FILE \
             | fate ID [SPANS] | critical I [SPANS] | stalls [K] [SPANS]\n\
             got: {args:?}"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_query: {e}");
            ExitCode::FAILURE
        }
    }
}

fn default_spans() -> String {
    format!("{DEFAULT_DIR}/spans.jsonl")
}

// ---------------------------------------------------------------- record

fn record(dir: &str, seed: u64) -> Result<(), String> {
    let input = DataSeq::from_indices(INPUT);
    let mut world = World::builder(input.clone())
        .sender(Box::new(TightSender::new(
            input.clone(),
            M,
            ResendPolicy::Once,
        )))
        .receiver(Box::new(TightReceiver::new(M, ResendPolicy::Once)))
        .channel(Box::new(stp_channel::DupChannel::new()))
        .scheduler(Box::new(stp_channel::DupStormScheduler::new(seed, 0.9)))
        .mode(TraceMode::Off)
        .probe(Box::new(TraceProbe::new()))
        .probe(Box::new(FrontierProbe::new(M)))
        .probe(Box::new(MetricsProbe::new()))
        .build()
        .map_err(|e| e.to_string())?;
    if !world.run_until(50_000, World::is_complete) {
        return Err(format!("seed {seed}: run did not complete in 50k steps"));
    }
    let stats = world.probe_of::<MetricsProbe>().expect("attached").stats();
    let trace_probe = world.probe_of::<TraceProbe>().expect("attached");
    let frontier = world.probe_of::<FrontierProbe>().expect("attached");
    trace_probe
        .reconcile(&stats)
        .map_err(|e| format!("spans do not reconcile with stats: {e}"))?;

    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    let perfetto = format!("{dir}/trace.perfetto.json");
    let mut out =
        std::fs::File::create(&perfetto).map_err(|e| format!("create {perfetto}: {e}"))?;
    write_chrome_trace(&mut out, trace_probe, &frontier.counter_tracks())
        .map_err(|e| format!("write {perfetto}: {e}"))?;

    let spans_path = format!("{dir}/spans.jsonl");
    let _ = std::fs::remove_file(&spans_path); // the sink appends
    let sink = FileSink::open(&spans_path).map_err(|e| format!("open {spans_path}: {e}"))?;
    let mut w = TelemetryWriter::new(Box::new(sink));
    let io = |e: std::io::Error| format!("write {spans_path}: {e}");
    w.emit_run(&RunRecord {
        experiment: EXPERIMENT.to_string(),
        input,
        seed,
        scheduler: 0,
        stats: stats.clone(),
    })
    .map_err(io)?;
    for span in trace_probe.span_records(EXPERIMENT, seed) {
        w.emit_span(&span).map_err(io)?;
    }
    for rec in frontier.frontier_records(EXPERIMENT, seed) {
        w.emit_frontier(&rec).map_err(io)?;
    }
    w.flush().map_err(io)?;

    println!(
        "recorded seed {seed}: {} spans, {} frontier points, {} steps → {perfetto}, {spans_path}",
        trace_probe.spans().len(),
        frontier.points().len(),
        stats.steps
    );
    Ok(())
}

// -------------------------------------------------------------- validate

// The concrete shape of the events we emit; unknown keys in the JSON are
// ignored by the deserializer, so this stays forward-compatible.
#[derive(Debug, Deserialize)]
#[allow(non_snake_case)]
struct PerfettoDoc {
    #[serde(default)]
    displayTimeUnit: Option<String>,
    traceEvents: Vec<PerfettoEvent>,
}

#[derive(Debug, Deserialize)]
struct PerfettoEvent {
    ph: String,
    #[serde(default)]
    pid: Option<u32>,
    #[serde(default)]
    ts: Option<u64>,
    #[serde(default)]
    id: Option<u64>,
    #[serde(default)]
    args: Option<PerfettoArgs>,
}

#[derive(Debug, Deserialize)]
struct PerfettoArgs {
    #[serde(default)]
    name: Option<String>,
    #[serde(default)]
    fate: Option<String>,
    #[serde(default)]
    value: Option<f64>,
}

const FATES: [&str; 5] = ["in-flight", "delivered", "dropped", "expired", "coalesced"];

fn validate(path: &str) -> Result<(), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc: PerfettoDoc =
        serde_json::from_str(&body).map_err(|e| format!("{path} is not a trace: {e}"))?;
    if doc.displayTimeUnit.as_deref() != Some("ms") {
        return Err("displayTimeUnit must be \"ms\"".to_string());
    }
    let mut begins: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    let mut named_processes = 0usize;
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut instants = 0usize;
    for (i, ev) in doc.traceEvents.iter().enumerate() {
        let pid = ev.pid.ok_or_else(|| format!("event {i}: missing pid"))?;
        if !(1..=3).contains(&pid) {
            return Err(format!("event {i}: unexpected pid {pid}"));
        }
        match ev.ph.as_str() {
            "M" => {
                let named = ev.args.as_ref().and_then(|a| a.name.as_deref());
                if named.is_none_or(str::is_empty) {
                    return Err(format!("event {i}: metadata without a process name"));
                }
                named_processes += 1;
            }
            "b" => {
                let id = ev.id.ok_or_else(|| format!("event {i}: span without id"))?;
                let ts = ev.ts.ok_or_else(|| format!("event {i}: span without ts"))?;
                let fate = ev.args.as_ref().and_then(|a| a.fate.as_deref());
                if !fate.is_some_and(|f| FATES.contains(&f)) {
                    return Err(format!("event {i}: span #{id} has no known fate"));
                }
                if begins.insert((pid, id), ts).is_some() {
                    return Err(format!("event {i}: span #{id} begun twice"));
                }
            }
            "e" => {
                let id = ev
                    .id
                    .ok_or_else(|| format!("event {i}: span end without id"))?;
                let ts = ev
                    .ts
                    .ok_or_else(|| format!("event {i}: span end without ts"))?;
                let begin = begins
                    .remove(&(pid, id))
                    .ok_or_else(|| format!("event {i}: span #{id} ends without beginning"))?;
                if ts < begin {
                    return Err(format!("event {i}: span #{id} ends before it begins"));
                }
                spans += 1;
            }
            "i" => instants += 1,
            "C" => {
                let value = ev.args.as_ref().and_then(|a| a.value);
                if !value.is_some_and(f64::is_finite) {
                    return Err(format!("event {i}: counter without a finite value"));
                }
                counters += 1;
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    if !begins.is_empty() {
        return Err(format!("{} spans never end", begins.len()));
    }
    if named_processes < 3 {
        return Err("expected process names for both directions and the counters".to_string());
    }
    if spans == 0 {
        return Err("trace contains no message spans".to_string());
    }
    if counters == 0 {
        return Err("trace contains no knowledge-frontier counters".to_string());
    }
    println!(
        "{path}: valid — {spans} spans, {instants} instants, {counters} counter samples, \
         {named_processes} named tracks"
    );
    Ok(())
}

// ------------------------------------------------------------ span store

struct SpanStore {
    run: RunRecord,
    spans: Vec<SpanRecord>,
}

fn load(path: &str) -> Result<SpanStore, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut run = None;
    let mut spans = Vec::new();
    for (n, line) in body.lines().enumerate() {
        match TelemetryLine::parse(line).map_err(|e| format!("{path}:{}: {e}", n + 1))? {
            TelemetryLine::Run(r) => run = Some(r),
            TelemetryLine::Span(s) => spans.push(s),
            _ => {}
        }
    }
    let run = run.ok_or_else(|| format!("{path}: no run line (re-run `trace_query record`)"))?;
    spans.sort_by_key(|s| s.id);
    Ok(SpanStore { run, spans })
}

impl SpanStore {
    fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Re-sends that coalesced (directly or transitively) into `id`.
    fn fan_in(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| self.origin_of(s) == id && s.id != id)
            .collect()
    }

    fn origin_of(&self, span: &SpanRecord) -> u64 {
        let mut at = span;
        while let Some(orig) = at.coalesced_into.and_then(|o| self.span(o)) {
            at = orig;
        }
        at.id
    }
}

fn dir(to: ProcessId) -> &'static str {
    match to {
        ProcessId::Receiver => "S\u{2192}R",
        ProcessId::Sender => "R\u{2192}S",
    }
}

// ------------------------------------------------------------------ fate

fn fate(id: &str, spans_path: &str) -> Result<(), String> {
    let id: u64 = id
        .parse()
        .map_err(|_| format!("ID must be an integer, got {id:?}"))?;
    let store = load(spans_path)?;
    let span = store
        .span(id)
        .ok_or_else(|| format!("no span #{id} (run has {} spans)", store.spans.len()))?;
    println!(
        "message #{id} ({}, value {}): sent at step {}, fate {}",
        dir(span.to),
        span.msg,
        span.sent_at,
        span.fate
    );
    if let Some(orig) = span.coalesced_into {
        let origin = store.origin_of(span);
        println!("  coalesced into #{orig} (origin #{origin}); its lifecycle continues there:");
        return fate(&origin.to_string(), spans_path);
    }
    for (k, step) in span.delivered_at.iter().enumerate() {
        println!("  delivery {} at step {step}", k + 1);
    }
    if let Some(step) = span.dropped_at {
        println!("  dropped by the adversary at step {step}");
    }
    if let Some(step) = span.expired_at {
        println!("  expired by the channel at step {step}");
    }
    let fan_in = store.fan_in(id);
    if !fan_in.is_empty() {
        let ids: Vec<String> = fan_in.iter().map(|s| format!("#{}", s.id)).collect();
        println!(
            "  duplicate fan-in: {} re-send(s) coalesced here ({})",
            fan_in.len(),
            ids.join(", ")
        );
    }
    Ok(())
}

// -------------------------------------------------------------- critical

fn critical(i: &str, spans_path: &str) -> Result<(), String> {
    let i: usize = i
        .parse()
        .map_err(|_| format!("item index must be an integer, got {i:?}"))?;
    let store = load(spans_path)?;
    let item = store
        .run
        .input
        .get(i)
        .ok_or_else(|| format!("input has {} items, no item {i}", store.run.input.len()))?;
    let written_at = *store
        .run
        .stats
        .write_steps
        .get(i)
        .ok_or_else(|| format!("item {i} was never written"))?;
    println!("item {i} (value {}): written at step {written_at}", item.0);
    // The critical path: every carrier of this value toward R, in send
    // order, with its fate; the winning delivery is the last one at or
    // before the write step.
    let carriers: Vec<&SpanRecord> = store
        .spans
        .iter()
        .filter(|s| s.to == ProcessId::Receiver && s.msg == item.0)
        .collect();
    let mut winning: Option<(u64, Step, Step)> = None;
    for s in &carriers {
        println!(
            "  #{} sent at step {}, fate {}{}",
            s.id,
            s.sent_at,
            s.fate,
            match s.coalesced_into {
                Some(o) => format!(" (into #{o})"),
                None => String::new(),
            }
        );
        for &d in &s.delivered_at {
            if d <= written_at && winning.is_none_or(|(_, _, best)| d > best) {
                winning = Some((s.id, s.sent_at, d));
            }
        }
    }
    match winning {
        Some((id, sent, delivered)) => println!(
            "  critical carrier: #{id}, channel latency {} step(s), write lag {} step(s)",
            delivered - sent,
            written_at - delivered
        ),
        None => println!("  no delivery precedes the write (acknowledged knowledge path)"),
    }
    Ok(())
}

// ---------------------------------------------------------------- stalls

fn stalls(k: &str, spans_path: &str) -> Result<(), String> {
    let k: usize = k
        .parse()
        .map_err(|_| format!("K must be an integer, got {k:?}"))?;
    let store = load(spans_path)?;
    let writes = &store.run.stats.write_steps;
    if writes.is_empty() {
        return Err("the run wrote nothing; no stall structure".to_string());
    }
    // Interval before each write: (gap, from, to, item). Losses inside an
    // interval are the mechanism of the stall.
    let mut intervals = Vec::with_capacity(writes.len());
    let mut prev = 0;
    for (i, &w) in writes.iter().enumerate() {
        intervals.push((w - prev, prev, w, i));
        prev = w;
    }
    intervals.sort_by(|a, b| b.0.cmp(&a.0).then(a.3.cmp(&b.3)));
    println!(
        "top {} stall intervals of {}:",
        k.min(intervals.len()),
        intervals.len()
    );
    for &(gap, from, to, item) in intervals.iter().take(k) {
        let lost = store
            .spans
            .iter()
            .filter(|s| {
                s.dropped_at
                    .or(s.expired_at)
                    .is_some_and(|at| from < at && at <= to)
            })
            .count();
        println!(
            "  item {item}: {gap} step(s) (steps {from}..{to}), {lost} carrier(s) lost inside"
        );
    }
    Ok(())
}
