//! Prints the E7 protocol-cost grid.
fn main() {
    let rows = stp_bench::e7::run(42);
    println!("E7 — protocol cost comparison (messages and steps per delivered item)");
    println!("{}", stp_bench::e7::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
}
