//! Prints the E7 protocol-cost grid.
fn main() {
    let rows = stp_bench::e7::run(42);
    println!("E7 — protocol cost comparison (messages and steps per delivered item)");
    println!("{}", stp_bench::e7::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
    // The grid deliberately includes a dishonest cell (ABP on a reorder
    // channel), so "ok" here means every *honest* placement stayed safe.
    let ok = rows
        .iter()
        .filter(|r| !(r.protocol == "abp" && r.channel == "reorder+dup"))
        .all(|r| r.safe);
    stp_bench::telemetry::export_summary("e7", rows.len(), ok);
}
