//! Prints the E5 series (Section 5: weakly bounded != bounded).
fn main() {
    let rows = stp_bench::e5::run(&[4, 8, 16, 32, 64]);
    println!("E5 — single-fault recovery latency vs |X| (Section 5)");
    println!("{}", stp_bench::e5::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
    let ok = rows.iter().all(|r| r.recovery_steps > 0);
    stp_bench::telemetry::export_summary("e5", rows.len(), ok);
}
