//! Prints the E5 series (Section 5: weakly bounded != bounded).
fn main() {
    let rows = stp_bench::e5::run(&[4, 8, 16, 32, 64]);
    println!("E5 — single-fault recovery latency vs |X| (Section 5)");
    println!("{}", stp_bench::e5::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
}
