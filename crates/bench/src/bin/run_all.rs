//! Runs every experiment and prints every table — the one-shot
//! reproduction driver behind EXPERIMENTS.md.
//!
//! With `STP_TELEMETRY` set, every experiment additionally appends its
//! JSONL telemetry (per-run records and sweep reports where a harness
//! sweeps, one `{"summary": …}` digest per experiment always) to the
//! shared sink; the printed tables are unaffected.
//!
//! Exits nonzero when any experiment's own success predicate fails, with
//! the failing experiments named on stderr — the tables on stdout are
//! identical either way, so the committed `results/*.txt` stay stable.

use std::process::ExitCode;
use stp_bench::telemetry::export_summary;

fn main() -> ExitCode {
    let mut failed: Vec<&'static str> = Vec::new();
    let mut check = |name: &'static str, ok: bool| {
        if !ok {
            failed.push(name);
        }
        ok
    };
    println!("E1 — tight protocol over reorder+duplicate channels");
    let e1 = stp_bench::e1::run(5, 3);
    println!("{}", stp_bench::e1::render(&e1));
    export_summary(
        "e1",
        e1.len(),
        check("e1", e1.iter().all(|r| r.complete == r.runs)),
    );
    println!("E2 — Theorem 1 impossibility");
    let e2 = stp_bench::e2::run(3);
    println!("{}", stp_bench::e2::render(&e2));
    // Theorem 1: the over-capacity claim is refuted (a certificate is
    // found, nothing embeds exhaustively) while the tight family survives.
    export_summary(
        "e2",
        e2.len(),
        check(
            "e2",
            e2.iter()
                .all(|r| !r.tight_refuted && r.exhaustive_embeddable == 0),
        ),
    );
    println!("E3a — tight-del completeness");
    let e3a = stp_bench::e3::run_completeness(4, 3);
    println!("{}", stp_bench::e3::render_completeness(&e3a));
    println!("E3b — bounded recovery profile");
    let e3b = stp_bench::e3::run_recovery(8);
    println!("{}", stp_bench::e3::render_recovery(&e3b));
    export_summary(
        "e3",
        e3a.len() + e3b.len(),
        check("e3", e3a.iter().all(|r| r.complete == r.runs)),
    );
    println!("E4 — Theorem 2 impossibility");
    let e4 = stp_bench::e4::run(&[2, 4, 6, 8]);
    println!("{}", stp_bench::e4::render(&e4));
    export_summary("e4", e4.len(), check("e4", e4.iter().all(|r| r.refuted)));
    println!("E5 — weak boundedness (recovery vs |X|)");
    let e5 = stp_bench::e5::run(&[4, 8, 16, 32, 64]);
    println!("{}", stp_bench::e5::render(&e5));
    export_summary(
        "e5",
        e5.len(),
        check("e5", e5.iter().all(|r| r.recovery_steps > 0)),
    );
    println!("E6 — the alpha function");
    let e6 = stp_bench::e6::run(25, 7);
    println!("{}", stp_bench::e6::render(&e6));
    export_summary(
        "e6",
        e6.len(),
        check(
            "e6",
            e6.iter().all(|r| r.enumerated.is_none_or(|n| n == r.alpha)),
        ),
    );
    println!("E7 — protocol cost grid");
    let e7 = stp_bench::e7::run(42);
    println!("{}", stp_bench::e7::render(&e7));
    let e7_ok = e7
        .iter()
        .filter(|r| !(r.protocol == "abp" && r.channel == "reorder+dup"))
        .all(|r| r.safe);
    export_summary("e7", e7.len(), check("e7", e7_ok));
    println!("E8 — knowledge analysis (exact universe, m = 2)");
    let (rows, classes) = stp_bench::e8::run(2, 6);
    println!("{}", stp_bench::e8::render(&rows));
    println!(
        "indistinguishability classes per step: {:?}",
        classes.classes_per_step
    );
    println!();
    // Knowledge is reachable in every universe cell; full learning on the
    // truncated horizon is not expected for the longer inputs.
    export_summary(
        "e8",
        rows.len(),
        check("e8", rows.iter().all(|r| r.fully_learnt > 0)),
    );
    println!("E9 — probabilistic codebooks beyond alpha(m)");
    let e9 = stp_bench::e9::run(2, 3, &[4, 5, 6, 7], 8);
    println!("{}", stp_bench::e9::render(&e9));
    // Random codebooks trade capacity for failure probability: the rate
    // must become rare once the code space dwarfs the claimed family.
    export_summary(
        "e9",
        e9.len(),
        check("e9", e9.last().is_some_and(|r| r.measured_failure < 0.05)),
    );
    println!("E10 — boundedness probe (Definition 2)");
    let e10 = stp_bench::e10::run(&[8, 16, 24], 6);
    println!("{}", stp_bench::e10::render(&e10));
    let e10_ok = e10.iter().any(|r| r.bounded_points == r.points)
        && e10.iter().any(|r| r.bounded_points < r.points);
    export_summary("e10", e10.len(), check("e10", e10_ok));
    println!("E11a — recovery envelopes (OnWrite-triggered silence)");
    let meter = stp_bench::telemetry::progress();
    let e11a = stp_bench::e11::run_envelopes_observed(&[4, 8, 16, 32], 0, &meter);
    println!("{}", stp_bench::e11::render_envelopes(&e11a));
    println!("E11b — composite campaign survival");
    let e11b = stp_bench::e11::run_composite(8);
    println!("{}", stp_bench::e11::render_composite(&e11b));
    println!("E11c — shrunk safety-violation witness");
    let e11c = stp_bench::e11::run_shrink_demo();
    println!("{}", stp_bench::e11::render_shrink(&e11c));
    let e11_ok = e11a.iter().all(|r| r.recovery.is_some())
        && e11b.completed
        && e11b.safe
        && e11c.one_minimal
        && e11c.replay_identical;
    export_summary("e11", e11a.len() + 2, check("e11", e11_ok));
    println!("E12a — classical protocols under transient state corruption");
    let e12a = stp_bench::e12::run_fragility(4);
    println!("{}", stp_bench::e12::render_fragility(&e12a));
    println!("E12b — certified stabilization bounds");
    let e12b = stp_bench::e12::run_stabilization_grid();
    println!("{}", stp_bench::e12::render_stabilization(&e12b));
    stp_bench::telemetry::export_stabilizations(
        "e12",
        &stp_bench::e12::stabilization_records(&e12b),
    );
    let e12_ok = e12a.iter().any(|r| !r.reconverged) && e12b.iter().all(|r| r.cert_ok);
    export_summary("e12", e12a.len() + e12b.len(), check("e12", e12_ok));
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("run_all: failing experiments: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}
