//! Runs every experiment and prints every table — the one-shot
//! reproduction driver behind EXPERIMENTS.md.
fn main() {
    println!("E1 — tight protocol over reorder+duplicate channels");
    println!("{}", stp_bench::e1::render(&stp_bench::e1::run(5, 3)));
    println!("E2 — Theorem 1 impossibility");
    println!("{}", stp_bench::e2::render(&stp_bench::e2::run(3)));
    println!("E3a — tight-del completeness");
    println!(
        "{}",
        stp_bench::e3::render_completeness(&stp_bench::e3::run_completeness(4, 3))
    );
    println!("E3b — bounded recovery profile");
    println!(
        "{}",
        stp_bench::e3::render_recovery(&stp_bench::e3::run_recovery(8))
    );
    println!("E4 — Theorem 2 impossibility");
    println!(
        "{}",
        stp_bench::e4::render(&stp_bench::e4::run(&[2, 4, 6, 8]))
    );
    println!("E5 — weak boundedness (recovery vs |X|)");
    println!(
        "{}",
        stp_bench::e5::render(&stp_bench::e5::run(&[4, 8, 16, 32, 64]))
    );
    println!("E6 — the alpha function");
    println!("{}", stp_bench::e6::render(&stp_bench::e6::run(25, 7)));
    println!("E7 — protocol cost grid");
    println!("{}", stp_bench::e7::render(&stp_bench::e7::run(42)));
    println!("E8 — knowledge analysis (exact universe, m = 2)");
    let (rows, classes) = stp_bench::e8::run(2, 6);
    println!("{}", stp_bench::e8::render(&rows));
    println!(
        "indistinguishability classes per step: {:?}",
        classes.classes_per_step
    );
    println!();
    println!("E9 — probabilistic codebooks beyond alpha(m)");
    println!(
        "{}",
        stp_bench::e9::render(&stp_bench::e9::run(2, 3, &[4, 5, 6, 7], 8))
    );
    println!("E10 — boundedness probe (Definition 2)");
    println!(
        "{}",
        stp_bench::e10::render(&stp_bench::e10::run(&[8, 16, 24], 6))
    );
    println!("E11a — recovery envelopes (OnWrite-triggered silence)");
    println!(
        "{}",
        stp_bench::e11::render_envelopes(&stp_bench::e11::run_envelopes(&[4, 8, 16, 32], 0))
    );
    println!("E11b — composite campaign survival");
    println!(
        "{}",
        stp_bench::e11::render_composite(&stp_bench::e11::run_composite(8))
    );
    println!("E11c — shrunk safety-violation witness");
    println!(
        "{}",
        stp_bench::e11::render_shrink(&stp_bench::e11::run_shrink_demo())
    );
}
