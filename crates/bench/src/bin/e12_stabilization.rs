//! E12 — transient state corruption: classical-protocol fragility and
//! certified stabilization bounds for the self-stabilizing variant.
fn main() {
    let fragility = stp_bench::e12::run_fragility(4);
    println!("E12a — classical protocols under a single transient state corruption");
    println!("{}", stp_bench::e12::render_fragility(&fragility));
    let grid = stp_bench::e12::run_stabilization_grid();
    println!("E12b — certified stabilization bounds (d × corruption kind × channel)");
    println!("{}", stp_bench::e12::render_stabilization(&grid));
    stp_bench::telemetry::export_stabilizations(
        "e12",
        &stp_bench::e12::stabilization_records(&grid),
    );
    let diverged = fragility.iter().any(|r| !r.reconverged);
    let all_certified = grid.iter().all(|r| r.cert_ok);
    let ok = diverged && all_certified;
    stp_bench::telemetry::export_summary("e12", fragility.len() + grid.len(), ok);
}
