//! Prints the E8 knowledge analysis.
fn main() {
    let (rows, classes) = stp_bench::e8::run(2, 6);
    println!("E8 — knowledge analysis on the exact run universe (tight-dup, m = 2)");
    println!("{}", stp_bench::e8::render(&rows));
    println!(
        "indistinguishability classes per step: {:?}",
        classes.classes_per_step
    );
    let h = stp_bench::e8::knowledge_hierarchy(2, 6);
    println!(
        "knowledge hierarchy over {} runs: mean t[K_R(x1)] = {:.2}, mean t[K_S K_R(x1)] = {:.2} (ack trip = {:.2} steps)",
        h.runs_measured, h.mean_t_kr, h.mean_t_kskr, h.mean_gap
    );
    let ok = rows.iter().all(|r| r.fully_learnt == r.runs) && h.mean_gap > 0.0;
    stp_bench::telemetry::export_summary("e8", rows.len(), ok);
}
