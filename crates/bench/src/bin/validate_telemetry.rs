//! Validates a JSONL telemetry file: every line must parse as one of the
//! wire forms ([`TelemetryLine`]) and survive a serialize → parse round
//! trip unchanged. Exits nonzero on the first malformed file, naming the
//! offending line number and the kind the line claims to be (its
//! self-describing top-level key), so CI can gate on the schema actually
//! holding for freshly exported telemetry — conformance ledgers included.
//!
//! Usage: `validate_telemetry <file.jsonl>` (defaults to
//! `telemetry.jsonl` in the current directory).

use std::process::ExitCode;
use stp_sim::telemetry::{
    FleetLine, FrontierLine, ProfLine, ReportLine, RunLine, SessionsLine, SpanLine,
    StabilizationLine, StallLine, SummaryLine, VerdictLine,
};
use stp_sim::TelemetryLine;

/// The self-describing kind tag of a JSONL line — its first top-level
/// key — for diagnostics. Lines too broken to expose one report as
/// `"unrecognized"`.
fn claimed_kind(line: &str) -> String {
    let open = match line.find('{') {
        Some(i) => i + 1,
        None => return "unrecognized".to_string(),
    };
    let rest = &line[open..];
    match rest.find('"').and_then(|start| {
        let key = &rest[start + 1..];
        key.find('"').map(|end| &key[..end])
    }) {
        Some(key) if !key.is_empty() => key.to_string(),
        _ => "unrecognized".to_string(),
    }
}

fn round_trips(line: &TelemetryLine) -> Result<bool, serde_json::Error> {
    let reserialized = match line {
        TelemetryLine::Run(r) => serde_json::to_string(&RunLine { run: r.clone() })?,
        TelemetryLine::Report(r) => serde_json::to_string(&ReportLine {
            report: r.as_ref().clone(),
        })?,
        TelemetryLine::Summary(s) => serde_json::to_string(&SummaryLine { summary: s.clone() })?,
        TelemetryLine::Span(s) => serde_json::to_string(&SpanLine { span: s.clone() })?,
        TelemetryLine::Frontier(f) => serde_json::to_string(&FrontierLine {
            frontier: f.clone(),
        })?,
        TelemetryLine::Verdict(v) => serde_json::to_string(&VerdictLine { verdict: v.clone() })?,
        TelemetryLine::Stabilization(s) => serde_json::to_string(&StabilizationLine {
            stabilization: s.clone(),
        })?,
        TelemetryLine::Sessions(s) => serde_json::to_string(&SessionsLine {
            sessions: s.clone(),
        })?,
        TelemetryLine::Fleet(f) => serde_json::to_string(&FleetLine { fleet: f.clone() })?,
        TelemetryLine::Stall(s) => serde_json::to_string(&StallLine { stall: s.clone() })?,
        TelemetryLine::Prof(p) => serde_json::to_string(&ProfLine { prof: p.clone() })?,
    };
    Ok(TelemetryLine::parse(&reserialized)? == *line)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "telemetry.jsonl".to_string());
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("validate_telemetry: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (mut runs, mut reports, mut summaries) = (0usize, 0usize, 0usize);
    let (mut spans, mut frontiers, mut verdicts) = (0usize, 0usize, 0usize);
    let mut stabilizations = 0usize;
    let mut sessions = 0usize;
    let (mut fleets, mut stalls) = (0usize, 0usize);
    let mut profs = 0usize;
    for (no, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let kind = claimed_kind(line);
        let parsed = match TelemetryLine::parse(line) {
            Ok(p) => p,
            Err(e) => {
                eprintln!(
                    "validate_telemetry: {path}:{}: unparseable '{kind}' line: {e}",
                    no + 1
                );
                return ExitCode::FAILURE;
            }
        };
        match round_trips(&parsed) {
            Ok(true) => {}
            Ok(false) => {
                eprintln!(
                    "validate_telemetry: {path}:{}: '{kind}' line does not round-trip",
                    no + 1
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!(
                    "validate_telemetry: {path}:{}: '{kind}' reserialization failed: {e}",
                    no + 1
                );
                return ExitCode::FAILURE;
            }
        }
        match parsed {
            TelemetryLine::Run(_) => runs += 1,
            TelemetryLine::Report(_) => reports += 1,
            TelemetryLine::Summary(_) => summaries += 1,
            TelemetryLine::Span(_) => spans += 1,
            TelemetryLine::Frontier(_) => frontiers += 1,
            TelemetryLine::Verdict(_) => verdicts += 1,
            TelemetryLine::Stabilization(_) => stabilizations += 1,
            TelemetryLine::Sessions(_) => sessions += 1,
            TelemetryLine::Fleet(_) => fleets += 1,
            TelemetryLine::Stall(_) => stalls += 1,
            TelemetryLine::Prof(_) => profs += 1,
        }
    }
    let total = runs
        + reports
        + summaries
        + spans
        + frontiers
        + verdicts
        + stabilizations
        + sessions
        + fleets
        + stalls
        + profs;
    if total == 0 {
        eprintln!("validate_telemetry: {path} contains no telemetry lines");
        return ExitCode::FAILURE;
    }
    println!(
        "{path}: {total} lines valid ({runs} runs, {reports} reports, {summaries} summaries, \
         {spans} spans, {frontiers} frontiers, {verdicts} verdicts, \
         {stabilizations} stabilizations, {sessions} sessions, {fleets} fleets, {stalls} stalls, \
         {profs} profs)"
    );
    ExitCode::SUCCESS
}
