//! Prints the E10 table (Definition 2 probed point-by-point).
fn main() {
    let rows = stp_bench::e10::run(&[8, 16, 24], 6);
    println!("E10 — boundedness probe: fresh-only recovery extensions within budget");
    println!("{}", stp_bench::e10::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
    // The headline claim is a separation: some protocol is bounded at
    // every probed point, some other is not.
    let ok = rows.iter().any(|r| r.bounded_points == r.points)
        && rows.iter().any(|r| r.bounded_points < r.points);
    stp_bench::telemetry::export_summary("e10", rows.len(), ok);
}
