//! Prints the E10 table (Definition 2 probed point-by-point).
fn main() {
    let rows = stp_bench::e10::run(&[8, 16, 24], 6);
    println!("E10 — boundedness probe: fresh-only recovery extensions within budget");
    println!("{}", stp_bench::e10::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
}
