//! Per-phase cost attribution for the two hot paths: the E1 sweep grid
//! and the session-churn workload, run under the phase-scoped profiler
//! with the counting allocator installed.
//!
//! For each workload the binary prints the profiler's cost table —
//! busy-time share, call counts, p50/p99 window times, and allocation
//! traffic per phase — followed by the top-N allocation sites (phases
//! ranked by bytes). It exits nonzero unless the profiler attributed at
//! least 95% of measured busy time to named phases on **both**
//! workloads, so CI running this binary *is* the coverage gate: a new
//! engine phase that nobody instruments shows up here as unattributed
//! time and fails the build, not as a silent hole in the flamegraph.
//!
//! `--folded PATH` additionally writes both workloads' folded stacks
//! (`stp;<workload>;<phase> <ns>`) to `PATH`, ready for
//! `inferno-flamegraph` / `flamegraph.pl`. With `STP_TELEMETRY` set,
//! each workload emits one `{"prof": …}` line.
//!
//! Usage: `prof_report [--sessions N] [--period N] [--top N]
//! [--folded PATH]`

use std::process::ExitCode;
use std::sync::Arc;
use stp_bench::{e1, table};
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_core::event::TraceMode;
use stp_prof::CountingAlloc;
use stp_protocols::{FamilySpec, ResendPolicy, TightFamily};
use stp_sim::sessions::{run_churn_profiled_isolated, ChurnSpec, ServerSpec, SessionTemplate};
use stp_sim::{folded, PhaseProfiler, ProfRecord, SweepEngine, SweepSpec, NO_SAMPLES};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The acceptance bar: at least this fraction of busy time must land in
/// named phases on every workload or the binary exits nonzero.
const COVERAGE_FLOOR: f64 = 0.95;

struct Args {
    sessions: u64,
    period: u64,
    top: usize,
    folded: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 200_000,
        // Period 1: this is the attribution tool, so profile *every*
        // window. The benches keep the sparse default period instead.
        period: 1,
        top: 5,
        folded: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--sessions" => {
                args.sessions = value("--sessions").parse().unwrap_or_else(|e| {
                    die(&format!("--sessions: {e}"));
                })
            }
            "--period" => {
                args.period = value("--period").parse().unwrap_or_else(|e| {
                    die(&format!("--period: {e}"));
                })
            }
            "--top" => {
                args.top = value("--top").parse().unwrap_or_else(|e| {
                    die(&format!("--top: {e}"));
                })
            }
            "--folded" => args.folded = Some(value("--folded")),
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!(
        "prof_report: {msg}\nusage: prof_report [--sessions N] [--period N] [--top N] \
         [--folded PATH]"
    );
    std::process::exit(2);
}

/// The E1 benchmark grid (same shape as `bench_sweep`), run once under
/// the profiler: every cell a profiled window.
fn profile_e1_grid(period: u64) -> ProfRecord {
    let m = 4u16;
    let family = TightFamily::new(m, ResendPolicy::Once);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let adversaries = e1::adversaries();
    let mut spec = SweepSpec::new(ChannelSpec::Dup, adversaries[0].1.clone())
        .max_steps(4_000 * u64::from(m))
        .seeds(0..8)
        .threads(threads);
    for (_, sched) in adversaries.iter().skip(1) {
        spec = spec.also_scheduler(sched.clone());
    }
    let engine = SweepEngine::new(spec.trace_mode(TraceMode::Off));
    let prof = PhaseProfiler::new(period);
    let outcome = engine.run_profiled(&family, &prof);
    assert!(outcome.all_complete(), "E1 grid must complete");
    prof.report("prof_report", "e1_grid")
}

/// The churn workload (same mix as `sessions_top`), stepped in
/// isolation under the profiler.
fn profile_churn(sessions: u64, period: u64) -> ProfRecord {
    let spec = ChurnSpec {
        sessions,
        arrivals_per_round: 1_024,
        server: ServerSpec {
            shards: 4,
            capacity_per_shard: 2_048,
            quantum: 8,
            watchdog: None,
        },
        max_steps: 2_000,
        seed: 0x70_5E55,
        disconnect_rate: 0.05,
        disconnect_after: 2,
        mix: vec![
            SessionTemplate {
                family: FamilySpec::Tight {
                    d: 3,
                    policy: ResendPolicy::Once,
                },
                channel: ChannelSpec::Dup,
                scheduler: SchedulerSpec::DupStorm { p_deliver: 0.9 },
            },
            SessionTemplate {
                family: FamilySpec::Abp {
                    domain: 2,
                    max_len: 3,
                },
                channel: ChannelSpec::LossyFifo,
                scheduler: SchedulerSpec::Random { p_deliver: 0.8 },
            },
        ],
    };
    let prof = Arc::new(PhaseProfiler::new(period));
    let report = run_churn_profiled_isolated(&spec, None, &prof);
    assert_eq!(report.submitted, sessions);
    prof.report("prof_report", "churn")
}

fn fmt_ns(ns: f64) -> String {
    if ns == NO_SAMPLES {
        "-".to_string()
    } else {
        format!("{ns:.0}")
    }
}

fn print_record(rec: &ProfRecord, top: usize) {
    println!("== {} ==", rec.workload);
    println!(
        "windows {} (period {}), busy {:.2} ms, coverage {:.2}%, allocs {} ({} KiB)",
        rec.windows,
        rec.period,
        rec.busy_ns as f64 / 1e6,
        rec.coverage * 100.0,
        rec.allocs_total,
        rec.alloc_bytes_total / 1024,
    );
    let rows: Vec<Vec<String>> = rec
        .phases
        .iter()
        .map(|p| {
            vec![
                p.phase.clone(),
                format!("{:.1}%", p.share * 100.0),
                format!("{:.3}", p.total_ns as f64 / 1e6),
                p.calls.to_string(),
                fmt_ns(p.p50_window_ns),
                fmt_ns(p.p99_window_ns),
                p.allocs.to_string(),
                (p.alloc_bytes / 1024).to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(
            &["PHASE", "SHARE", "TOTAL_MS", "CALLS", "P50_NS", "P99_NS", "ALLOCS", "ALLOC_KB"],
            &rows
        )
    );

    if rec.alloc_metered {
        let mut sites: Vec<_> = rec.phases.iter().filter(|p| p.allocs > 0).collect();
        sites.sort_by_key(|s| std::cmp::Reverse(s.alloc_bytes));
        sites.truncate(top);
        println!("top {} allocation sites:", sites.len());
        let rows: Vec<Vec<String>> = sites
            .iter()
            .map(|p| {
                vec![
                    p.phase.clone(),
                    p.allocs.to_string(),
                    (p.alloc_bytes / 1024).to_string(),
                    format!("{:.1}", p.alloc_bytes as f64 / (p.allocs.max(1)) as f64),
                ]
            })
            .collect();
        print!(
            "{}",
            table::render(&["PHASE", "ALLOCS", "ALLOC_KB", "BYTES/ALLOC"], &rows)
        );
    } else {
        println!("allocation metering inactive (counting allocator not installed)");
    }
    println!();
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.period == 0 {
        die("--period must be >= 1");
    }

    eprintln!("prof_report: profiling E1 sweep grid…");
    let grid = profile_e1_grid(args.period);
    eprintln!(
        "prof_report: profiling churn workload ({} sessions)…",
        args.sessions
    );
    let churn = profile_churn(args.sessions, args.period);

    for rec in [&grid, &churn] {
        print_record(rec, args.top);
    }

    if let Some(path) = &args.folded {
        let stacks = format!("{}{}", folded(&grid), folded(&churn));
        if let Err(e) = std::fs::write(path, &stacks) {
            eprintln!("prof_report: cannot write folded stacks to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "prof_report: wrote {} folded stack lines to {path}",
            stacks.lines().count()
        );
    }

    stp_bench::telemetry::export_profs("prof_report", &[grid.clone(), churn.clone()]);

    let mut failed = false;
    for rec in [&grid, &churn] {
        if rec.coverage < COVERAGE_FLOOR {
            eprintln!(
                "prof_report: FAIL {}: only {:.2}% of busy time attributed (floor {:.0}%)",
                rec.workload,
                rec.coverage * 100.0,
                COVERAGE_FLOOR * 100.0
            );
            failed = true;
        }
        if !rec.alloc_metered {
            eprintln!(
                "prof_report: FAIL {}: allocation metering inactive despite CountingAlloc",
                rec.workload
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "prof_report: coverage {:.2}% (grid) / {:.2}% (churn) — all phases accounted",
        grid.coverage * 100.0,
        churn.coverage * 100.0
    );
    ExitCode::SUCCESS
}
