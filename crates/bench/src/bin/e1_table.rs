//! Prints the E1 table (Theorem 1 achievability).
fn main() {
    let rows = stp_bench::e1::run(5, 3);
    println!("E1 — tight protocol over reorder+duplicate channels (Theorem 1, achievability)");
    println!("{}", stp_bench::e1::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
    let ok = rows.iter().all(|r| r.complete == r.runs);
    stp_bench::telemetry::export_summary("e1", rows.len(), ok);
}
