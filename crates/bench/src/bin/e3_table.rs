//! Prints the E3 tables (Theorem 2 achievability + boundedness profile).
fn main() {
    let c = stp_bench::e3::run_completeness(4, 3);
    println!("E3a — tight-del completeness under deletion-heavy adversaries");
    println!("{}", stp_bench::e3::render_completeness(&c));
    let r = stp_bench::e3::run_recovery(8);
    println!("E3b — recovery after a one-shot fault (bounded: flat in i)");
    println!("{}", stp_bench::e3::render_recovery(&r));
    println!(
        "{}",
        serde_json::to_string_pretty(&r).expect("serializable")
    );
    let ok = c.iter().all(|row| row.complete == row.runs);
    stp_bench::telemetry::export_summary("e3", c.len() + r.len(), ok);
}
