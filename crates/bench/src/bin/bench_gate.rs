//! The CI benchmark gate: static budgets plus noise-aware baselines.
//!
//! Reads `BENCH_history.jsonl` (or the path given as the first
//! argument), takes the **newest** record of each bench as the run under
//! test and everything before it as that bench's history, then applies
//! two layers of gates from [`stp_bench::gate`]:
//!
//! - absolute budgets and floors injected by CI as environment
//!   variables (a gate whose variable is unset is off — the numbers
//!   live in the workflow file so loosening one is a reviewed change);
//! - baseline comparison against the median of the bench's own prior
//!   records, within `BASELINE_TOLERANCE` (default ±30%), including
//!   per-phase busy-time shares so a regression names the offending
//!   phase.
//!
//! Prints one line per check and exits nonzero if anything failed.
//!
//! Usage: `bench_gate [BENCH_history.jsonl]`

use std::process::ExitCode;
use stp_bench::gate::{baseline_violations, check_budget, check_floor, env_bound, Violation};
use stp_bench::history::{self, HistoryRecord, HISTORY_FILE};

/// The static gates: `(bench, metric, env var, floor?)`. A floor gate
/// requires the metric to stay **at or above** the bound; a budget gate
/// at or below it.
const STATIC_GATES: &[(&str, &str, &str, bool)] = &[
    ("bench_sweep", "probe_overhead", "PROBE_BUDGET", false),
    ("bench_sweep", "traced_overhead", "TRACED_BUDGET", false),
    ("bench_sweep", "unarmed_overhead", "UNARMED_BUDGET", false),
    ("bench_sweep", "prof_overhead", "PROF_BUDGET", false),
    (
        "bench_sweep",
        "parallel_scaling_4_over_1",
        "PARALLEL_FLOOR",
        true,
    ),
    (
        "bench_sessions",
        "sessions_completed",
        "SESSIONS_FLOOR",
        true,
    ),
    (
        "bench_sessions",
        "sessions_per_sec_4",
        "SESSIONS_RATE_FLOOR",
        true,
    ),
    ("bench_sessions", "scaling_4_over_1", "SCALING_FLOOR", true),
    (
        "bench_sessions",
        "metered_overhead",
        "METERED_BUDGET",
        false,
    ),
    ("bench_sessions", "prof_overhead", "PROF_BUDGET", false),
];

fn report(v: &Option<Violation>, bench: &str, metric: &str, bound: f64, floor: bool) {
    match v {
        Some(v) => println!("bench_gate: FAIL {v}"),
        None => {
            let rel = if floor {
                "above floor"
            } else {
                "within budget"
            };
            println!("bench_gate: ok   {bench}:{metric} {rel} {bound}");
        }
    }
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| HISTORY_FILE.to_string());
    let records = history::load(std::path::Path::new(&path));
    if records.is_empty() {
        eprintln!("bench_gate: {path} has no readable records — run the benches first");
        return ExitCode::FAILURE;
    }

    let tolerance = env_bound("BASELINE_TOLERANCE").unwrap_or(stp_bench::gate::DEFAULT_TOLERANCE);
    let mut benches: Vec<String> = Vec::new();
    for r in &records {
        if !benches.contains(&r.bench) {
            benches.push(r.bench.clone());
        }
    }

    let mut failed = false;
    for bench in &benches {
        let runs: Vec<HistoryRecord> = records
            .iter()
            .filter(|r| &r.bench == bench)
            .cloned()
            .collect();
        let (current, prior) = runs.split_last().expect("bench has a record");
        println!(
            "bench_gate: {bench} @ {} on {} effective core(s), {} prior run(s)",
            current.commit,
            current.host_cores_effective,
            prior.len()
        );

        for &(gate_bench, metric, var, floor) in STATIC_GATES {
            if gate_bench != bench {
                continue;
            }
            let Some(bound) = env_bound(var) else {
                println!("bench_gate: off  {bench}:{metric} ({var} unset)");
                continue;
            };
            let v = if floor {
                check_floor(current, metric, bound)
            } else {
                check_budget(current, metric, bound)
            };
            failed |= v.is_some();
            report(&v, bench, metric, bound, floor);
        }

        let baseline = baseline_violations(prior, current, tolerance);
        if baseline.is_empty() {
            println!(
                "bench_gate: ok   {bench} within ±{:.0}% of its history median",
                tolerance * 100.0
            );
        }
        for v in &baseline {
            println!("bench_gate: FAIL {v}");
            failed = true;
        }
    }

    if failed {
        eprintln!("bench_gate: regression detected — see FAIL lines above");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all gates passed");
    ExitCode::SUCCESS
}
