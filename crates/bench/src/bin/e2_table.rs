//! Prints the E2 table (Theorem 1 impossibility).
fn main() {
    let rows = stp_bench::e2::run(3);
    println!(
        "E2 — over-capacity families are unsolvable over dup channels (Theorem 1, impossibility)"
    );
    println!("{}", stp_bench::e2::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
    let ok = rows.iter().all(|r| r.tight_refuted);
    stp_bench::telemetry::export_summary("e2", rows.len(), ok);
}
