//! Massively-multi-session throughput benchmark: the sharded
//! [`SessionServer`](stp_sim::sessions::SessionServer) store under a
//! million-session open/transmit/
//! disconnect churn workload, at 1, 4 and 8 shards. Writes
//! `BENCH_sessions.json` in the current directory and, when
//! `STP_TELEMETRY` is set, one `{"sessions": …}` line per lane.
//!
//! ## Timing model
//!
//! Lane throughput is **critical-path** timing: each lane steps its
//! shards sequentially, in isolation, and records every shard's exact
//! single-threaded stepping seconds; the lane's `sessions_per_sec` is
//! completed sessions over the *busiest* shard's seconds. That is the
//! wall time the lane converges to on a host with a core per shard, and
//! it measures what sharding actually controls — partition balance and
//! per-shard speed — rather than how many cores the benchmark host
//! happens to have (CI runners often pin this binary to one or two). The
//! honest wall clock of each run is recorded alongside (`wall_secs`,
//! which on a single-core host is close to the *sum* of the per-shard
//! times), and `host_cores` says what the numbers were measured on.
//!
//! Every lane runs the identical seeded workload; the per-session
//! outcome digest must agree across shard counts — the sharding is
//! required to change scheduling only, never any session's result.

use serde::Serialize;
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_protocols::{FamilySpec, ResendPolicy};
use stp_sim::sessions::{run_churn_isolated, ChurnSpec, ServerSpec, SessionTemplate};
use stp_sim::SessionsRecord;

/// One shard-count lane of the benchmark.
#[derive(Debug, Serialize)]
struct Lane {
    shards: u16,
    completed: u64,
    critical_path_secs: f64,
    wall_secs: f64,
    sessions_per_sec: f64,
    p99_latency_rounds: f64,
    rounds: u64,
}

#[derive(Debug, Serialize)]
struct SessionsBenchReport {
    workload: String,
    timing: String,
    host_cores: usize,
    sessions_submitted: u64,
    sessions_completed: u64,
    sessions_disconnected: u64,
    sessions_exhausted: u64,
    digest: String,
    lanes: Vec<Lane>,
    sessions_per_sec_1: f64,
    sessions_per_sec_4: f64,
    sessions_per_sec_8: f64,
    p99_latency_rounds: f64,
    scaling_4_over_1: f64,
    scaling_8_over_1: f64,
}

fn workload(shards: u16) -> ChurnSpec {
    ChurnSpec {
        sessions: 1_100_000,
        arrivals_per_round: 4_096,
        server: ServerSpec {
            shards,
            capacity_per_shard: 4_096,
            quantum: 8,
        },
        max_steps: 2_000,
        seed: 0x5E55_1045,
        disconnect_rate: 0.05,
        disconnect_after: 2,
        mix: vec![
            SessionTemplate {
                family: FamilySpec::Tight {
                    d: 3,
                    policy: ResendPolicy::Once,
                },
                channel: ChannelSpec::Dup,
                scheduler: SchedulerSpec::DupStorm { p_deliver: 0.9 },
            },
            SessionTemplate {
                family: FamilySpec::Abp {
                    domain: 2,
                    max_len: 3,
                },
                channel: ChannelSpec::LossyFifo,
                scheduler: SchedulerSpec::Random { p_deliver: 0.8 },
            },
            SessionTemplate {
                family: FamilySpec::Tight {
                    d: 4,
                    policy: ResendPolicy::EveryTick,
                },
                channel: ChannelSpec::Del,
                scheduler: SchedulerSpec::Random { p_deliver: 0.7 },
            },
        ],
    }
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let meter = stp_bench::telemetry::progress();

    let mut lanes = Vec::new();
    let mut records: Vec<SessionsRecord> = Vec::new();
    let mut first_report = None;
    for shards in [1u16, 4, 8] {
        eprintln!("bench_sessions: lane {shards} shard(s)…");
        let spec = workload(shards);
        let report = run_churn_isolated(&spec, Some(&meter));
        assert_eq!(report.submitted, spec.sessions);
        assert_eq!(
            report.completed + report.exhausted + report.disconnected,
            report.submitted
        );
        lanes.push(Lane {
            shards,
            completed: report.completed,
            critical_path_secs: report.critical_path_secs(),
            wall_secs: report.wall_secs,
            sessions_per_sec: report.sessions_per_sec(),
            p99_latency_rounds: report.p99_latency_rounds(),
            rounds: report.rounds,
        });
        records.push(report.record("bench_sessions"));
        match &first_report {
            None => first_report = Some(report),
            Some(base) => {
                assert_eq!(
                    report.digest, base.digest,
                    "sharding must not change any session's outcome"
                );
                assert_eq!(report.completed, base.completed);
            }
        }
    }
    let base = first_report.expect("three lanes ran");

    let rate = |shards: u16| {
        lanes
            .iter()
            .find(|l| l.shards == shards)
            .map(|l| l.sessions_per_sec)
            .expect("lane ran")
    };
    let (r1, r4, r8) = (rate(1), rate(4), rate(8));
    let report = SessionsBenchReport {
        workload: format!(
            "churn: {} sessions, 5% walk-away, mix {{tight-dup, abp-lossy, tight-del}}, \
             4096 arrivals/round",
            base.submitted
        ),
        timing: "critical-path".to_string(),
        host_cores,
        sessions_submitted: base.submitted,
        sessions_completed: base.completed,
        sessions_disconnected: base.disconnected,
        sessions_exhausted: base.exhausted,
        digest: format!("{:016x}", base.digest),
        sessions_per_sec_1: r1,
        sessions_per_sec_4: r4,
        sessions_per_sec_8: r8,
        p99_latency_rounds: lanes.last().expect("lanes ran").p99_latency_rounds,
        scaling_4_over_1: r4 / r1,
        scaling_8_over_1: r8 / r1,
        lanes,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_sessions.json", &json).expect("BENCH_sessions.json written");
    println!("{json}");

    stp_bench::telemetry::export_sessions("bench_sessions", &records);
    // Headline gates, re-checked (with reviewed budgets) by CI's
    // bench_gate step: a million completed sessions in one churn run,
    // and 4-way sharding at least 2.5× the single shard on the
    // critical path.
    stp_bench::telemetry::export_summary(
        "bench_sessions",
        records.len(),
        report.sessions_completed >= 1_000_000 && report.scaling_4_over_1 >= 2.5,
    );
}
