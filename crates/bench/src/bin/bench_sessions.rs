//! Massively-multi-session throughput benchmark: the sharded
//! [`SessionServer`](stp_sim::sessions::SessionServer) store under a
//! million-session open/transmit/
//! disconnect churn workload, at 1, 4 and 8 shards, plus a metered
//! 4-shard lane with the fleet registry and stall watchdog armed whose
//! overhead is recorded (and budget-gated in CI), plus a profiled
//! 4-shard lane under the phase-scoped profiler whose overhead is gated
//! the same way. Writes `BENCH_sessions.json` in the current directory,
//! appends one schema-versioned record (lane metrics + per-phase cost
//! breakdown) to `BENCH_history.jsonl` for `bench_gate`'s baselines,
//! and, when `STP_TELEMETRY` is set, emits one `{"sessions": …}` line
//! per lane, the metered lane's per-shard + aggregate `{"fleet": …}`
//! snapshots, and the profiled lane's `{"prof": …}` report.
//!
//! ## Timing model
//!
//! Lane throughput is **critical-path** timing: each lane steps its
//! shards sequentially, in isolation, and records every shard's exact
//! single-threaded stepping seconds; the lane's `sessions_per_sec` is
//! completed sessions over the *busiest* shard's seconds. That is the
//! wall time the lane converges to on a host with a core per shard, and
//! it measures what sharding actually controls — partition balance and
//! per-shard speed — rather than how many cores the benchmark host
//! happens to have (CI runners often pin this binary to one or two). The
//! honest wall clock of each run is recorded alongside (`wall_secs`,
//! which on a single-core host is close to the *sum* of the per-shard
//! times). The host's measured parallelism is recorded as
//! `host_cores_effective` (what the scheduler actually grants this
//! process — cgroup and affinity aware) and `host_cores_present` (CPUs
//! the kernel reports), so a `1` next to 4- and 8-shard lanes reads as
//! "critical-path projection from one core", not as a claim the lanes
//! ran in parallel.
//!
//! ## Metered overhead
//!
//! The metered lane re-runs the 4-shard workload with a
//! [`FleetRegistry`] attached and the default [`WatchdogSpec`] armed.
//! `metered_overhead` compares **total busy seconds** (summed across
//! shards) against the unmetered 4-shard lane — the sum is steadier than
//! the per-shard max on small hosts, and metering cost is per-shard
//! work, so the sum is the quantity the registry can actually inflate.
//! Both sides are measured as the **minimum over interleaved laps**:
//! shared benchmark hosts inject multi-percent one-sided timing noise
//! (a single identical lap can vary ±10%+ under a noisy neighbour), and
//! since noise only ever *adds* time, min-of-N on each side converges on
//! the true cost while a single-shot ratio would gate on the weather.
//! The metered digest must equal the unmetered digest (observation never
//! changes an outcome) and the watchdog must stay silent on this clean
//! workload.
//!
//! Every lane runs the identical seeded workload; the per-session
//! outcome digest must agree across shard counts — the sharding is
//! required to change scheduling only, never any session's result.

use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use stp_bench::history::{self, HistoryRecord, HISTORY_FILE};
use stp_bench::host::host_parallelism;
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_protocols::{FamilySpec, ResendPolicy};
use stp_sim::fleet::{FleetRegistry, WatchdogSpec};
use stp_sim::sessions::{
    run_churn_fleet_isolated, run_churn_isolated, run_churn_profiled_isolated, ChurnReport,
    ChurnSpec, ServerSpec, SessionTemplate,
};
use stp_sim::{PhaseProfiler, SessionsRecord};

/// One shard-count lane of the benchmark.
#[derive(Debug, Serialize)]
struct Lane {
    shards: u16,
    /// Whether the fleet registry + watchdog were attached for this lane.
    metered: bool,
    completed: u64,
    critical_path_secs: f64,
    /// Total stepping seconds summed across shards — the denominator of
    /// the metered-overhead ratio.
    busy_secs: f64,
    wall_secs: f64,
    sessions_per_sec: f64,
    p99_latency_rounds: f64,
    rounds: u64,
}

impl Lane {
    fn from_report(report: &ChurnReport, shards: u16, metered: bool) -> Self {
        Lane {
            shards,
            metered,
            completed: report.completed,
            critical_path_secs: report.critical_path_secs(),
            busy_secs: report.shard_busy_secs.iter().sum(),
            wall_secs: report.wall_secs,
            sessions_per_sec: report.sessions_per_sec(),
            p99_latency_rounds: report.p99_latency_rounds(),
            rounds: report.rounds,
        }
    }
}

#[derive(Debug, Serialize)]
struct SessionsBenchReport {
    workload: String,
    timing: String,
    /// Parallelism actually granted to this process (affinity/cgroup
    /// aware) — what the lanes were *measured* on.
    host_cores_effective: usize,
    /// CPUs the kernel reports as present, `>= host_cores_effective`.
    host_cores_present: usize,
    sessions_submitted: u64,
    sessions_completed: u64,
    sessions_disconnected: u64,
    sessions_exhausted: u64,
    digest: String,
    lanes: Vec<Lane>,
    metered_lane: Lane,
    /// Busy-seconds inflation of the metered 4-shard lane over the
    /// unmetered one (0.012 = +1.2%). Budget-gated in CI.
    metered_overhead: f64,
    profiled_lane: Lane,
    /// Busy-seconds inflation of the profiled 4-shard lane (phase-scoped
    /// profiler at its default sampling period) over the unmetered one.
    /// Budget-gated in CI.
    prof_overhead: f64,
    sessions_per_sec_1: f64,
    sessions_per_sec_4: f64,
    sessions_per_sec_8: f64,
    p99_latency_rounds: f64,
    scaling_4_over_1: f64,
    scaling_8_over_1: f64,
}

fn workload(shards: u16) -> ChurnSpec {
    ChurnSpec {
        sessions: 1_100_000,
        arrivals_per_round: 4_096,
        server: ServerSpec {
            shards,
            capacity_per_shard: 4_096,
            quantum: 8,
            watchdog: None,
        },
        max_steps: 2_000,
        seed: 0x5E55_1045,
        disconnect_rate: 0.05,
        disconnect_after: 2,
        mix: vec![
            SessionTemplate {
                family: FamilySpec::Tight {
                    d: 3,
                    policy: ResendPolicy::Once,
                },
                channel: ChannelSpec::Dup,
                scheduler: SchedulerSpec::DupStorm { p_deliver: 0.9 },
            },
            SessionTemplate {
                family: FamilySpec::Abp {
                    domain: 2,
                    max_len: 3,
                },
                channel: ChannelSpec::LossyFifo,
                scheduler: SchedulerSpec::Random { p_deliver: 0.8 },
            },
            SessionTemplate {
                family: FamilySpec::Tight {
                    d: 4,
                    policy: ResendPolicy::EveryTick,
                },
                channel: ChannelSpec::Del,
                scheduler: SchedulerSpec::Random { p_deliver: 0.7 },
            },
        ],
    }
}

fn main() {
    let (host_cores_effective, host_cores_present) = host_parallelism();
    let meter = stp_bench::telemetry::progress();

    let mut lanes = Vec::new();
    let mut records: Vec<SessionsRecord> = Vec::new();
    let mut first_report = None;
    let mut unmetered_4_busy = 0.0_f64;
    for shards in [1u16, 4, 8] {
        eprintln!("bench_sessions: lane {shards} shard(s)…");
        let spec = workload(shards);
        let report = run_churn_isolated(&spec, Some(&meter));
        assert_eq!(report.submitted, spec.sessions);
        assert_eq!(
            report.completed + report.exhausted + report.disconnected,
            report.submitted
        );
        let lane = Lane::from_report(&report, shards, false);
        if shards == 4 {
            unmetered_4_busy = lane.busy_secs;
        }
        lanes.push(lane);
        records.push(report.record("bench_sessions"));
        match &first_report {
            None => first_report = Some(report),
            Some(base) => {
                assert_eq!(
                    report.digest, base.digest,
                    "sharding must not change any session's outcome"
                );
                assert_eq!(report.completed, base.completed);
            }
        }
    }
    let base = first_report.expect("three lanes ran");

    // Metered lane: same 4-shard workload, fleet registry attached and
    // the default watchdog armed. Observation must not change a single
    // outcome, and the watchdog must stay silent — this workload always
    // retires sessions well inside their α(m)-derived bound. Overhead
    // is min-of-laps on both sides (see the module docs on noise).
    const OVERHEAD_LAPS: usize = 3;
    let mut metered_spec = workload(4);
    metered_spec.server.watchdog = Some(WatchdogSpec::default());
    let mut plain_busy = unmetered_4_busy;
    let mut metered_busy = f64::INFINITY;
    let mut metered_lane = None;
    let mut last_snapshot = None;
    for lap in 1..=OVERHEAD_LAPS {
        eprintln!(
            "bench_sessions: metered lane 4 shard(s) (fleet registry + watchdog), \
             lap {lap}/{OVERHEAD_LAPS}…"
        );
        let fleet = FleetRegistry::new(4);
        let metered = run_churn_fleet_isolated(&metered_spec, Some(&meter), &fleet);
        assert_eq!(
            metered.digest, base.digest,
            "metering must not change any session's outcome"
        );
        assert_eq!(metered.completed, base.completed);
        assert!(
            metered.stalls.is_empty(),
            "watchdog false positives on the clean bench workload: {}",
            metered.stalls.len()
        );
        let snapshot = fleet.snapshot();
        assert_eq!(snapshot.stats().completed, metered.completed);
        last_snapshot = Some(snapshot);
        let lane = Lane::from_report(&metered, 4, true);
        if lane.busy_secs < metered_busy {
            metered_busy = lane.busy_secs;
            metered_lane = Some(lane);
        }
        if lap == OVERHEAD_LAPS {
            records.push(metered.record("bench_sessions"));
            break;
        }
        // Interleave an unmetered control lap so both sides sample the
        // same host weather.
        eprintln!(
            "bench_sessions: unmetered control lap {lap}/{}…",
            OVERHEAD_LAPS - 1
        );
        let control = run_churn_isolated(&workload(4), Some(&meter));
        assert_eq!(control.digest, base.digest);
        plain_busy = plain_busy.min(control.shard_busy_secs.iter().sum());
    }
    let snapshot = last_snapshot.expect("metered laps ran");
    let stats = snapshot.stats();
    let metered_lane = metered_lane.expect("metered laps ran");
    let metered_overhead = metered_busy / plain_busy - 1.0;

    // Profiled lane: the same 4-shard workload under the phase-scoped
    // profiler at its default (sparse) sampling period. Profiling must
    // not change a single outcome — the sampled quanta run the same
    // generic step body, just observed — and its busy-seconds inflation
    // is measured min-of-laps against the unmetered minimum, like the
    // metered lane.
    const PROF_LAPS: usize = 2;
    let prof = Arc::new(PhaseProfiler::new(PhaseProfiler::DEFAULT_PERIOD));
    let mut profiled_busy = f64::INFINITY;
    let mut profiled_lane = None;
    for lap in 1..=PROF_LAPS {
        eprintln!("bench_sessions: profiled lane 4 shard(s), lap {lap}/{PROF_LAPS}…");
        let profiled = run_churn_profiled_isolated(&workload(4), Some(&meter), &prof);
        assert_eq!(
            profiled.digest, base.digest,
            "profiling must not change any session's outcome"
        );
        assert_eq!(profiled.completed, base.completed);
        let lane = Lane::from_report(&profiled, 4, false);
        if lane.busy_secs < profiled_busy {
            profiled_busy = lane.busy_secs;
            profiled_lane = Some(lane);
        }
        if lap == PROF_LAPS {
            records.push(profiled.record("bench_sessions"));
        }
    }
    let profiled_lane = profiled_lane.expect("profiled laps ran");
    let prof_overhead = profiled_busy / plain_busy - 1.0;
    let prof_record = prof.report("bench_sessions", "churn_4shard");

    let rate = |shards: u16| {
        lanes
            .iter()
            .find(|l| l.shards == shards)
            .map(|l| l.sessions_per_sec)
            .expect("lane ran")
    };
    let (r1, r4, r8) = (rate(1), rate(4), rate(8));
    let report = SessionsBenchReport {
        workload: format!(
            "churn: {} sessions, 5% walk-away, mix {{tight-dup, abp-lossy, tight-del}}, \
             4096 arrivals/round",
            base.submitted
        ),
        timing: "critical-path".to_string(),
        host_cores_effective,
        host_cores_present,
        sessions_submitted: base.submitted,
        sessions_completed: base.completed,
        sessions_disconnected: base.disconnected,
        sessions_exhausted: base.exhausted,
        digest: format!("{:016x}", base.digest),
        sessions_per_sec_1: r1,
        sessions_per_sec_4: r4,
        sessions_per_sec_8: r8,
        p99_latency_rounds: lanes.last().expect("lanes ran").p99_latency_rounds,
        scaling_4_over_1: r4 / r1,
        scaling_8_over_1: r8 / r1,
        lanes,
        metered_lane,
        metered_overhead,
        profiled_lane,
        prof_overhead,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_sessions.json", &json).expect("BENCH_sessions.json written");
    println!("{json}");
    println!(
        "bench_sessions: 4-shard lane {r4:.0}/s critical-path, measured on \
         {host_cores_effective} effective core(s) ({host_cores_present} present); \
         fleet metering overhead {:+.2}% busy-secs, profiling overhead {:+.2}%",
        report.metered_overhead * 100.0,
        report.prof_overhead * 100.0
    );

    // Durable trajectory: one schema-versioned record per run, appended
    // to the history file bench_gate reads its baselines from.
    let history_record = HistoryRecord::new("bench_sessions")
        .metric("sessions_completed", report.sessions_completed as f64)
        .metric("sessions_per_sec_1", r1)
        .metric("sessions_per_sec_4", r4)
        .metric("sessions_per_sec_8", r8)
        .metric("scaling_4_over_1", report.scaling_4_over_1)
        .metric("metered_overhead", report.metered_overhead)
        .metric("prof_overhead", report.prof_overhead)
        .phases_from(&prof_record);
    if let Err(e) = history::append(Path::new(HISTORY_FILE), &history_record) {
        eprintln!("bench_sessions: cannot append {HISTORY_FILE}: {e}");
    }
    stp_bench::telemetry::export_profs("bench_sessions", &[prof_record]);

    stp_bench::telemetry::export_sessions("bench_sessions", &records);
    let mut fleet_records: Vec<_> = snapshot
        .shards
        .iter()
        .map(|s| s.record("bench_sessions"))
        .collect();
    fleet_records.push(stats.record("bench_sessions"));
    stp_bench::telemetry::export_fleet("bench_sessions", &fleet_records);
    // Headline gates, re-checked (with reviewed budgets) by CI's
    // bench_gate step: a million completed sessions in one churn run,
    // 4-way sharding at least 2.5× the single shard on the critical
    // path, and fleet metering within its busy-seconds budget.
    stp_bench::telemetry::export_summary(
        "bench_sessions",
        records.len(),
        report.sessions_completed >= 1_000_000
            && report.scaling_4_over_1 >= 2.5
            && report.metered_overhead <= 0.05
            && report.prof_overhead <= 0.05,
    );
}
