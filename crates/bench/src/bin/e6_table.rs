//! Prints the E6 alpha table.
fn main() {
    let rows = stp_bench::e6::run(25, 7);
    println!("E6 — the alpha function: values, enumeration cross-check, convergence to e");
    println!("{}", stp_bench::e6::render(&rows));
}
