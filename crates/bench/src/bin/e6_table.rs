//! Prints the E6 alpha table.
fn main() {
    let rows = stp_bench::e6::run(25, 7);
    println!("E6 — the alpha function: values, enumeration cross-check, convergence to e");
    println!("{}", stp_bench::e6::render(&rows));
    let ok = rows
        .iter()
        .all(|r| r.enumerated.is_none_or(|n| n == r.alpha));
    stp_bench::telemetry::export_summary("e6", rows.len(), ok);
}
