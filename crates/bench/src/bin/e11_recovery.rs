//! E11 — fault campaigns: recovery envelopes, composite-campaign
//! survival, and a shrunk replayable witness.
fn main() {
    let meter = stp_bench::telemetry::progress();
    let envelopes = stp_bench::e11::run_envelopes_observed(&[4, 8, 16, 32], 0, &meter);
    println!("E11a — recovery envelopes (silence window fired by OnWrite after item 0)");
    println!("{}", stp_bench::e11::render_envelopes(&envelopes));
    let composite = stp_bench::e11::run_composite(8);
    println!("E11b — composite campaign survival (tight-del, DelChannel)");
    println!("{}", stp_bench::e11::render_composite(&composite));
    let shrink = stp_bench::e11::run_shrink_demo();
    println!("E11c — shrunk safety-violation witness (naive over-capacity, DupChannel)");
    println!("{}", stp_bench::e11::render_shrink(&shrink));
    let ok = envelopes.iter().all(|r| r.recovery.is_some())
        && composite.completed
        && composite.safe
        && shrink.one_minimal
        && shrink.replay_identical;
    stp_bench::telemetry::export_summary("e11", envelopes.len() + 2, ok);
}
