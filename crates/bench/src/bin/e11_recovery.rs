//! E11 — fault campaigns: recovery envelopes, composite-campaign
//! survival, and a shrunk replayable witness.
fn main() {
    println!("E11a — recovery envelopes (silence window fired by OnWrite after item 0)");
    println!(
        "{}",
        stp_bench::e11::render_envelopes(&stp_bench::e11::run_envelopes(&[4, 8, 16, 32], 0))
    );
    println!("E11b — composite campaign survival (tight-del, DelChannel)");
    println!(
        "{}",
        stp_bench::e11::render_composite(&stp_bench::e11::run_composite(8))
    );
    println!("E11c — shrunk safety-violation witness (naive over-capacity, DupChannel)");
    println!(
        "{}",
        stp_bench::e11::render_shrink(&stp_bench::e11::run_shrink_demo())
    );
}
