//! Sweep-engine throughput benchmark: the pooled
//! [`SweepEngine`] with tracing off versus the
//! sweep path this repository shipped before the engine existed.
//!
//! The baseline below is the pre-engine `sweep_family_parallel`
//! transcribed verbatim: a crossbeam work queue and result channel, a
//! brand-new world (four boxed components) per grid cell, a full event
//! trace per run, per-run statistics derived by walking that trace, and
//! a final index sort. The engine runs the identical E1 grid — same
//! family, same adversaries, same seeds, same thread count — with pooled
//! worlds and [`TraceMode::Off`]. Writes `BENCH_sweep.json` in the
//! current directory, and appends one schema-versioned record — lane
//! metrics plus the profiled lane's per-phase cost breakdown — to
//! `BENCH_history.jsonl`, the durable trajectory `bench_gate` compares
//! fresh runs against.

use serde::Serialize;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;
use stp_bench::history::{self, HistoryRecord, HISTORY_FILE};
use stp_bench::{e1, host};
use stp_channel::campaign::FaultPlan;
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_core::data::DataSeq;
use stp_core::event::TraceMode;
use stp_protocols::{ProtocolFamily, ResendPolicy, TightFamily};
use stp_sim::{run_family_member, PhaseProfiler, RunStats, StealSweep, SweepEngine, SweepSpec};

/// Worker widths for the work-stealing scaling lanes.
const STEAL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Sampling period for the profiled lane. The E1 grid's cells are tiny
/// (a couple of microseconds each), so a fully profiled cell pays the
/// per-step timer cost against almost no useful work — dense sampling
/// would price the instrumentation, not the engine. One window every 128
/// cells still lands several windows per sweep (the grid is ~240 cells
/// per rep, and reps accumulate) while keeping the lane inside the same
/// ≤5% budget the session engines meet at their default period.
const PROF_PERIOD: u64 = 128;

/// One baseline result row (the old `MemberRun` shape).
struct LegacyRun {
    #[allow(dead_code)]
    input: DataSeq,
    #[allow(dead_code)]
    seed: u64,
    stats: RunStats,
}

/// The pre-engine `sweep_family_parallel`, kept bit-for-bit: fresh boxes
/// per cell, full tracing, trace-derived stats, channel-based fan-out.
fn legacy_sweep_family_parallel(
    family: &(dyn ProtocolFamily + Sync),
    spec: &SweepSpec,
    scheduler: usize,
    threads: usize,
) -> Vec<LegacyRun> {
    let claimed = family.claimed_family();
    let work: Vec<(usize, DataSeq, u64)> = claimed
        .iter()
        .flat_map(|x| spec.seeds.iter().map(move |&s| (x.clone(), s)))
        .enumerate()
        .map(|(i, (x, s))| (i, x, s))
        .collect();
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<(usize, DataSeq, u64)>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, LegacyRun)>();
    for item in work {
        work_tx.send(item).expect("queue open");
    }
    drop(work_tx);
    let max_steps = spec.max_steps;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let spec = &*spec;
            scope.spawn(move || {
                while let Ok((idx, x, seed)) = work_rx.recv() {
                    let trace = run_family_member(
                        family,
                        &x,
                        spec.channel.build(),
                        spec.schedulers[scheduler].build(seed),
                        max_steps,
                    );
                    let run = LegacyRun {
                        input: x,
                        seed,
                        stats: RunStats::of(&trace),
                    };
                    if res_tx.send((idx, run)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
    });
    let mut indexed: Vec<(usize, LegacyRun)> = res_rx.iter().collect();
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// One work-stealing scaling lane, measured in isolated critical-path
/// mode: each worker's statically-dealt chunks run sequentially with a
/// per-worker busy clock, and the lane's time is the slowest worker's —
/// what `workers` real cores would need, judged honestly from however
/// many cores the host grants (the `bench_sessions` churn convention).
#[derive(Debug, Serialize)]
struct StealLaneReport {
    /// Worker count (and thread count on a wide-enough host).
    workers: usize,
    /// Fastest critical-path seconds across the timed reps.
    critical_path_secs: f64,
    /// Aggregate runs per second over that critical path.
    runs_per_sec: f64,
}

// All `*_secs` are each lane's *fastest* per-sweep wall time across the
// timed reps; rates and overheads derive from those minima.
#[derive(Debug, Serialize)]
struct SweepBenchReport {
    grid: String,
    runs_per_sweep: usize,
    sweeps_timed: usize,
    /// Worker threads per lane. Each lane records what it actually ran
    /// with — there is deliberately no global `threads` scalar, which
    /// used to misreport the steal lanes' widths.
    lane_threads: BTreeMap<String, usize>,
    /// Parallelism actually granted to this process (affinity/cgroup
    /// aware) — what the lanes were *measured* on. `lane_threads` above
    /// is what was asked for; on a pinned CI runner the two differ.
    host_cores_effective: usize,
    /// CPUs the kernel reports as present, `>= host_cores_effective`.
    host_cores_present: usize,
    legacy_secs: f64,
    legacy_runs_per_sec: f64,
    engine_secs: f64,
    engine_runs_per_sec: f64,
    speedup: f64,
    probed_secs: f64,
    probed_runs_per_sec: f64,
    probe_overhead: f64,
    traced_secs: f64,
    traced_runs_per_sec: f64,
    traced_overhead: f64,
    unarmed_secs: f64,
    unarmed_runs_per_sec: f64,
    unarmed_overhead: f64,
    profiled_secs: f64,
    profiled_runs_per_sec: f64,
    prof_overhead: f64,
    /// How the steal lanes below were timed (`critical-path`), to keep
    /// them from being read as wall-clock numbers.
    steal_timing: &'static str,
    /// Work-stealing scaling lanes at [`STEAL_WIDTHS`] workers.
    steal_lanes: Vec<StealLaneReport>,
    /// 4-worker steal lane throughput over the 1-worker steal lane —
    /// the scaling headline `PARALLEL_FLOOR` gates in CI.
    parallel_scaling_4_over_1: f64,
}

fn main() {
    let m = 4u16;
    let family = TightFamily::new(m, ResendPolicy::Once);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let seeds: Vec<u64> = (0..8).collect();

    // The E1 adversary panel, shared by both sides.
    let adversaries = e1::adversaries();
    let mut spec = SweepSpec::new(ChannelSpec::Dup, adversaries[0].1.clone())
        .max_steps(4_000 * m as u64)
        .seeds(seeds.iter().copied())
        .threads(threads);
    for (_, sched) in adversaries.iter().skip(1) {
        spec = spec.also_scheduler(sched.clone());
    }
    let engine = SweepEngine::new(spec.clone().trace_mode(TraceMode::Off));
    let probed_engine = SweepEngine::new(spec.clone().trace_mode(TraceMode::Off).probe(true));
    // The traced lane measures causal tracing alone over the bare engine:
    // TraceProbe + channel provenance, no streaming MetricsProbe (its cost
    // is the probed lane's number; stats still come from the world's
    // incremental counters).
    let traced_engine = SweepEngine::new(spec.clone().trace_mode(TraceMode::Off).traced(true));
    // The unarmed lane prices the corruption machinery itself: every
    // adversary wrapped in a campaign whose plan has no clauses, so the
    // scheduler indirection and per-step clause scan run but no fault
    // (and no corruption hook) ever fires.
    let mut unarmed_spec = spec.clone().trace_mode(TraceMode::Off);
    unarmed_spec.schedulers = unarmed_spec
        .schedulers
        .iter()
        .map(|s| SchedulerSpec::Campaign {
            inner: Box::new(s.clone()),
            plan: FaultPlan::new(0),
        })
        .collect();
    let unarmed_engine = SweepEngine::new(unarmed_spec);
    // The profiled lane prices phase-scoped profiling at its sampling
    // period: one profiler accumulates across every rep, so the report
    // at the end has windows from the whole session.
    let prof = PhaseProfiler::new(PROF_PERIOD);
    let runs_per_sweep = spec.grid_size(&family);
    // Enough reps that every lane gets several preemption-free shots; the
    // minimum estimator below only sharpens with more samples.
    let reps = 100usize;

    // Warm-up and sanity: all sides agree on completion, and the probed
    // lane's runs are bit-identical to the bare engine's (same stats,
    // collected streamingly instead of from counters).
    let pooled = engine.run(&family);
    assert_eq!(pooled.len(), runs_per_sweep);
    assert!(pooled.all_complete());
    let probed = probed_engine.run(&family);
    assert_eq!(probed.runs, pooled.runs, "probes must not perturb results");
    assert_eq!(probed.report, pooled.report);
    let traced = traced_engine.run(&family);
    assert_eq!(traced.runs, pooled.runs, "tracing must not perturb results");
    assert_eq!(traced.report, pooled.report);
    let unarmed = unarmed_engine.run(&family);
    assert_eq!(
        unarmed.runs, pooled.runs,
        "an unarmed campaign must not perturb results"
    );
    assert_eq!(unarmed.report, pooled.report);
    let profiled = engine.run_profiled(&family, &prof);
    assert_eq!(
        profiled.runs, pooled.runs,
        "profiling must not perturb results"
    );
    assert_eq!(profiled.report, pooled.report);
    // The steal lanes share the engine lane's spec; a real-threaded
    // 4-worker stolen sweep must be bit-identical to the pooled engine
    // before any lane is timed.
    let steal_spec = spec.clone().trace_mode(TraceMode::Off);
    let stolen = StealSweep::new(steal_spec.clone(), 4).run(&family);
    assert_eq!(
        stolen.runs, pooled.runs,
        "work stealing must not perturb results"
    );
    assert_eq!(stolen.report, pooled.report);
    for s in 0..spec.schedulers.len() {
        let legacy = legacy_sweep_family_parallel(&family, &spec, s, threads);
        assert!(legacy.iter().all(|r| r.stats.is_complete()));
    }

    // Interleave the four lanes rep by rep so slow clock / thermal drift
    // lands on all equally instead of biasing whichever ran last, and keep
    // per-rep timings: overheads come from each lane's *fastest* rep.
    // Scheduler preemption on a shared box only ever adds time — a single
    // hiccup inflates a ~3ms lane by double digits — so the minimum is the
    // one estimator of the true cost that noise cannot push around (a sum
    // or median smears hiccups straight into the gate).
    let mut legacy_reps = Vec::with_capacity(reps);
    let mut engine_reps = Vec::with_capacity(reps);
    let mut probed_reps = Vec::with_capacity(reps);
    let mut traced_reps = Vec::with_capacity(reps);
    let mut unarmed_reps = Vec::with_capacity(reps);
    let mut profiled_reps = Vec::with_capacity(reps);
    let steal_sweeps: Vec<StealSweep> = STEAL_WIDTHS
        .iter()
        .map(|&w| StealSweep::new(steal_spec.clone(), w))
        .collect();
    let mut steal_reps: Vec<Vec<f64>> = STEAL_WIDTHS.iter().map(|_| Vec::new()).collect();
    for _ in 0..reps {
        let t = Instant::now();
        let mut total = 0;
        for s in 0..spec.schedulers.len() {
            total += legacy_sweep_family_parallel(&family, &spec, s, threads).len();
        }
        legacy_reps.push(t.elapsed().as_secs_f64());
        assert_eq!(total, runs_per_sweep);

        let t = Instant::now();
        let out = engine.run(&family);
        engine_reps.push(t.elapsed().as_secs_f64());
        assert_eq!(out.len(), runs_per_sweep);

        let t = Instant::now();
        let out = probed_engine.run(&family);
        probed_reps.push(t.elapsed().as_secs_f64());
        assert_eq!(out.len(), runs_per_sweep);

        let t = Instant::now();
        let out = traced_engine.run(&family);
        traced_reps.push(t.elapsed().as_secs_f64());
        assert_eq!(out.len(), runs_per_sweep);

        let t = Instant::now();
        let out = unarmed_engine.run(&family);
        unarmed_reps.push(t.elapsed().as_secs_f64());
        assert_eq!(out.len(), runs_per_sweep);

        let t = Instant::now();
        let out = engine.run_profiled(&family, &prof);
        profiled_reps.push(t.elapsed().as_secs_f64());
        assert_eq!(out.len(), runs_per_sweep);

        // Steal lanes time each worker's busy loop in isolation, so the
        // recorded critical path is theft-free and core-count honest.
        for (sweep, lane_reps) in steal_sweeps.iter().zip(&mut steal_reps) {
            let report = sweep.run_isolated(&family);
            assert_eq!(report.outcome.len(), runs_per_sweep);
            lane_reps.push(report.critical_path_secs());
        }
    }

    fn fastest(samples: &[f64]) -> f64 {
        samples.iter().copied().fold(f64::INFINITY, f64::min)
    }
    let sweep_runs = runs_per_sweep as f64;
    let legacy_secs = fastest(&legacy_reps);
    let engine_secs = fastest(&engine_reps);
    let probed_secs = fastest(&probed_reps);
    let traced_secs = fastest(&traced_reps);
    let unarmed_secs = fastest(&unarmed_reps);
    let profiled_secs = fastest(&profiled_reps);
    let probe_overhead = probed_secs / engine_secs - 1.0;
    let traced_overhead = traced_secs / engine_secs - 1.0;
    let unarmed_overhead = unarmed_secs / engine_secs - 1.0;
    let prof_overhead = profiled_secs / engine_secs - 1.0;
    let steal_lanes: Vec<StealLaneReport> = STEAL_WIDTHS
        .iter()
        .zip(&steal_reps)
        .map(|(&workers, lane_reps)| {
            let critical_path_secs = fastest(lane_reps);
            StealLaneReport {
                workers,
                critical_path_secs,
                runs_per_sec: sweep_runs / critical_path_secs,
            }
        })
        .collect();
    // Scaling is judged against the 1-worker steal lane — serial
    // execution over the same pooled machinery — so the ratio isolates
    // the partition quality rather than executor constant factors.
    let steal_rps = |w: usize| {
        steal_lanes
            .iter()
            .find(|l| l.workers == w)
            .map(|l| l.runs_per_sec)
            .expect("lane present")
    };
    let parallel_scaling_4_over_1 = steal_rps(4) / steal_rps(1);
    let parallel_scaling_8_over_1 = steal_rps(8) / steal_rps(1);
    let (host_cores_effective, host_cores_present) = host::host_parallelism();
    // Wall-clock lanes all ran at the configured thread count; the steal
    // lanes record their own widths inline in `steal_lanes`.
    let mut lane_threads = BTreeMap::new();
    for lane in [
        "legacy", "engine", "probed", "traced", "unarmed", "profiled",
    ] {
        lane_threads.insert(lane.to_string(), threads);
    }
    for &w in &STEAL_WIDTHS {
        lane_threads.insert(format!("steal_{w}"), w);
    }
    let report = SweepBenchReport {
        grid: format!("E1: tight-dup m={m} x {{dup-storm, reorder-max, random-0.5}} x 8 seeds"),
        runs_per_sweep,
        sweeps_timed: reps,
        lane_threads,
        host_cores_effective,
        host_cores_present,
        legacy_secs,
        legacy_runs_per_sec: sweep_runs / legacy_secs,
        engine_secs,
        engine_runs_per_sec: sweep_runs / engine_secs,
        speedup: legacy_secs / engine_secs,
        probed_secs,
        probed_runs_per_sec: sweep_runs / probed_secs,
        probe_overhead,
        traced_secs,
        traced_runs_per_sec: sweep_runs / traced_secs,
        traced_overhead,
        unarmed_secs,
        unarmed_runs_per_sec: sweep_runs / unarmed_secs,
        unarmed_overhead,
        profiled_secs,
        profiled_runs_per_sec: sweep_runs / profiled_secs,
        prof_overhead,
        steal_timing: "critical-path",
        steal_lanes,
        parallel_scaling_4_over_1,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_sweep.json", &json).expect("BENCH_sweep.json written");
    println!("{json}");

    // Durable trajectory: one schema-versioned record per run, appended
    // to the history file bench_gate reads its baselines from.
    let prof_record = prof.report("bench_sweep", "e1_grid");
    // `parallel_scaling_*` deliberately does not start with `scaling_`:
    // the ratio is gated by the PARALLEL_FLOOR static floor, and keeping
    // it out of the baseline direction inference means a *better* deal
    // (higher ratio) can never arm a median that later noise trips.
    let mut record = HistoryRecord::new("bench_sweep")
        .metric("legacy_secs", legacy_secs)
        .metric("engine_secs", engine_secs)
        .metric("engine_runs_per_sec", sweep_runs / engine_secs)
        .metric("probe_overhead", probe_overhead)
        .metric("traced_overhead", traced_overhead)
        .metric("unarmed_overhead", unarmed_overhead)
        .metric("prof_overhead", prof_overhead)
        .metric("parallel_scaling_4_over_1", parallel_scaling_4_over_1)
        .metric("parallel_scaling_8_over_1", parallel_scaling_8_over_1)
        .phases_from(&prof_record);
    for lane in &report.steal_lanes {
        record = record.metric(
            &format!("parallel_runs_per_sec_{}", lane.workers),
            lane.runs_per_sec,
        );
    }
    if let Err(e) = history::append(Path::new(HISTORY_FILE), &record) {
        eprintln!("bench_sweep: cannot append {HISTORY_FILE}: {e}");
    }
    stp_bench::telemetry::export_profs("bench_sweep", &[prof_record]);

    // Budget gates: streaming metrics stay within 10% of the bare engine,
    // full causal tracing within 25%, an unarmed fault campaign —
    // the corruption machinery with nothing to fire — within 10%, and
    // sampled phase profiling within 5%.
    stp_bench::telemetry::export_summary(
        "bench_sweep",
        1,
        probe_overhead <= 0.10
            && traced_overhead <= 0.25
            && unarmed_overhead <= 0.10
            && prof_overhead <= 0.05,
    );
}
