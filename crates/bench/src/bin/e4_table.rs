//! Prints the E4 table (Theorem 2 impossibility).
fn main() {
    let rows = stp_bench::e4::run(&[2, 4, 6, 8]);
    println!("E4 — bounded-confusion certificates over del channels (Theorem 2, impossibility)");
    println!("{}", stp_bench::e4::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable")
    );
    let ok = rows.iter().all(|r| r.refuted);
    stp_bench::telemetry::export_summary("e4", rows.len(), ok);
}
