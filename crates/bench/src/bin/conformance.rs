//! The certificate-emitting verification gate: runs the T1/T2
//! conformance grid, writes one certificate file per cell, validates
//! every certificate with the independent replay checker, and records a
//! JSONL verdict ledger riding the telemetry wire format.
//!
//! Usage: `conformance [out_dir]` (default `target/conformance`). The
//! ledger lands in `<out_dir>/ledger.jsonl` — one `{"verdict": …}` line
//! per cell, parseable by `validate_telemetry` — and each certificate in
//! `<out_dir>/<cell>.json`. Exits nonzero when any cell's verdict
//! differs from the theorems' prediction or the checker rejects its
//! certificate, so CI can require the gate for merge.

use std::path::PathBuf;
use std::process::ExitCode;
use stp_bench::conformance::{judge, run_grid};
use stp_sim::telemetry::FileSink;
use stp_sim::TelemetryWriter;

fn main() -> ExitCode {
    let out_dir = PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "target/conformance".to_string()),
    );
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("conformance: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let ledger_path = out_dir.join("ledger.jsonl");
    // The sink appends; start each gate run from a fresh ledger.
    let _ = std::fs::remove_file(&ledger_path);
    let mut writer = match FileSink::open(&ledger_path) {
        Ok(sink) => TelemetryWriter::new(Box::new(sink)),
        Err(e) => {
            eprintln!(
                "conformance: cannot open ledger {}: {e}",
                ledger_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<6} {:<6} {:<6} {:<14} {:<14} {:<11} checker",
        "m", "family", "chan", "expected", "verdict", "cert"
    );
    let mut failures = 0usize;
    for outcome in run_grid() {
        let cert_file = match &outcome.certificate {
            Some(cert) => {
                let name = outcome.cell.artifact_name();
                if let Err(e) = std::fs::write(out_dir.join(&name), cert.to_json()) {
                    eprintln!("conformance: cannot write {name}: {e}");
                    return ExitCode::FAILURE;
                }
                name
            }
            None => String::new(),
        };
        let record = judge(&outcome, &cert_file);
        if let Err(e) = writer.emit_verdict(&record) {
            eprintln!("conformance: ledger write failed: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "{:<6} {:<6} {:<6} {:<14} {:<14} {:<11} {}",
            record.m,
            record.family,
            record.channel,
            record.expected.to_string(),
            record.verdict.to_string(),
            if record.cert_kind.is_empty() {
                "-"
            } else {
                &record.cert_kind
            },
            record.checker
        );
        if !record.ok {
            failures += 1;
        }
    }
    if let Err(e) = writer.flush() {
        eprintln!("conformance: ledger flush failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("ledger: {}", ledger_path.display());
    if failures > 0 {
        eprintln!("conformance: {failures} cell(s) failed the gate");
        return ExitCode::FAILURE;
    }
    println!("conformance: all cells conform");
    ExitCode::SUCCESS
}
