//! **E4 — Theorem 2 impossibility.** No *bounded* protocol solves
//! `X`-STP(del) for `|X| > α(m)`: the refuter produces bounded-confusion
//! certificates with escalating step budgets (the executable `δ_ℓ`
//! escalation of Lemma 4), while the tight family at capacity survives
//! every budget.

use serde::{Deserialize, Serialize};
use stp_channel::DelChannel;
use stp_protocols::{NaiveFamily, ProtocolFamily, ResendPolicy, TightFamily};
use stp_verify::refute::find_conflict_with_budget;

/// One row of the E4 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E4Row {
    /// Alphabet size.
    pub m: u16,
    /// Over-capacity family size.
    pub claimed: usize,
    /// The per-item step budget defeated.
    pub budget: u64,
    /// Whether a certificate was found (must be true for the naive family).
    pub refuted: bool,
    /// The certificate's stockpile (≥ budget when found).
    pub stockpile: u64,
    /// Control: whether the tight family at capacity was (wrongly) refuted
    /// at this budget.
    pub tight_refuted: bool,
}

/// Runs E4 for the given budgets, at `m = 1` and `m = 2`.
pub fn run(budgets: &[u64]) -> Vec<E4Row> {
    let mut rows = Vec::new();
    for m in 1..=2u16 {
        let naive = NaiveFamily::resending(m, 2);
        let claimed = naive.claimed_family().len();
        for &budget in budgets {
            let horizon = 6 + 2 * budget;
            let cert = find_conflict_with_budget(
                &naive,
                || Box::new(DelChannel::new()),
                horizon,
                0,
                budget,
            );
            let tight = TightFamily::new(m, ResendPolicy::EveryTick);
            let tight_refuted = find_conflict_with_budget(
                &tight,
                || Box::new(DelChannel::new()),
                horizon.min(8),
                0,
                budget,
            )
            .is_some();
            rows.push(E4Row {
                m,
                claimed,
                budget,
                refuted: cert.is_some(),
                stockpile: cert.map(|c| c.stockpile).unwrap_or(0),
                tight_refuted,
            });
        }
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[E4Row]) -> String {
    crate::table::render(
        &[
            "m",
            "claimed |X|",
            "budget f(i)",
            "refuted",
            "stockpile",
            "tight refuted?",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.claimed.to_string(),
                    r.budget.to_string(),
                    r.refuted.to_string(),
                    r.stockpile.to_string(),
                    r.tight_refuted.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_certificates_escalate() {
        let rows = run(&[2, 4]);
        for r in &rows {
            assert!(r.refuted, "m={} budget={}", r.m, r.budget);
            assert!(r.stockpile >= r.budget);
            assert!(!r.tight_refuted, "m={} budget={}", r.m, r.budget);
        }
    }

    #[test]
    fn e4_table_renders() {
        let t = render(&run(&[2]));
        assert!(t.contains("budget"));
    }
}
