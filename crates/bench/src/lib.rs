//! # stp-bench — the experiment suite
//!
//! The paper has no empirical tables (it is a theory paper); its "results"
//! are the claims catalogued in `DESIGN.md`. Each module here regenerates
//! one of them as an executable experiment with a printable table:
//!
//! | Module | Claim |
//! |--------|-------|
//! | [`e1`] | Theorem 1 achievability: the tight protocol transmits all `α(m)` repetition-free sequences over dup channels. |
//! | [`e2`] | Theorem 1 impossibility: over-capacity families are refuted (counting, exhaustive embedding, decisive-tuple certificates). |
//! | [`e3`] | Theorem 2 achievability: the retransmitting tight protocol is bounded over del channels (flat recovery profile). |
//! | [`e4`] | Theorem 2 impossibility: bounded-confusion certificates with escalating budgets. |
//! | [`e5`] | Section 5: the hybrid is weakly bounded but not bounded — recovery grows with `|X|`, the tight protocol's does not. |
//! | [`e6`] | The `α` function: values, recurrence, enumeration cross-check, `α(m)/m! → e`. |
//! | [`e7`] | Protocol cost comparison (messages per delivered item) across channels and fault rates. |
//! | [`e8`] | Knowledge analysis: learning times `t_i`, stability, knowledge-precedes-writing. |
//! | [`e9`] | Probabilistic `X`-STP beyond `α(m)` (§6 future work): measured vs analytic failure probability. |
//! | [`e10`] | Definition 2 probed point-by-point: the tight protocol is bounded everywhere, the hybrid is not. |
//! | [`e11`] | Fault campaigns: recovery envelopes under `OnWrite` strikes, composite-campaign survival, and shrunk replayable witnesses. |
//! | [`e12`] | Transient state corruption: classical protocols diverge, the self-stabilizing variant reconverges within checker-certified bounds. |
//!
//! Every experiment returns serde-serializable rows; the `src/bin`
//! binaries print them as aligned text tables and (optionally) JSON, and
//! `EXPERIMENTS.md` records the outcomes against the paper's claims. The
//! Criterion benches in `benches/` time the hot paths of the same
//! harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod gate;
pub mod history;
pub mod host;
pub mod table;
pub mod telemetry;
