//! **E2 — Theorem 1 impossibility.** `|X| > α(m)` is unsolvable over
//! duplicating reordering channels. Three independent attacks:
//!
//! 1. **Counting** — any solution induces an injective map into the
//!    repetition-free message sequences, of which there are exactly `α(m)`.
//! 2. **Exhaustive embedding** — every prefix-closed family of size
//!    `α(m)+1` on small domains fails the tree-embedding condition.
//! 3. **Decisive tuples** — the refuter produces a concrete certificate
//!    (two receiver-indistinguishable runs with different inputs) against
//!    the over-capacity `NaiveFamily`.

use serde::{Deserialize, Serialize};
use stp_channel::DupChannel;
use stp_protocols::{NaiveFamily, ProtocolFamily, ResendPolicy, TightFamily};
use stp_verify::refute::{find_indistinguishable_conflict, ConflictKind};
use stp_verify::{encoding_capacity, exhaustive_prefix_closed_check, search_two_state_receivers};

/// One row of the E2 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2Row {
    /// Alphabet size.
    pub m: u16,
    /// The capacity `α(m)`.
    pub capacity: u128,
    /// Size of the over-capacity family attacked.
    pub claimed: usize,
    /// Exhaustive check: families of size `α(m)+1` enumerated (0 = skipped
    /// for this `m`).
    pub exhaustive_families: usize,
    /// Exhaustive check: how many of them embedded (must be 0).
    pub exhaustive_embeddable: usize,
    /// Description of the refuter's certificate against `NaiveFamily`.
    pub certificate: String,
    /// Control: whether the tight family at capacity was (wrongly) refuted.
    pub tight_refuted: bool,
    /// Protocol-space search (`m = 1` only): two-state receivers
    /// enumerated, all of which must be refuted.
    pub protospace_machines: u32,
    /// …of which refuted (must equal `protospace_machines`).
    pub protospace_refuted: u32,
}

/// Runs E2 for `m = 1..=max_m` (exhaustive enumeration only for `m ≤ 2`).
pub fn run(max_m: u16) -> Vec<E2Row> {
    let mut rows = Vec::new();
    for m in 1..=max_m {
        let naive = NaiveFamily::minimal_overcapacity(m, ResendPolicy::Once);
        let claimed = naive.claimed_family().len();
        let cert = find_indistinguishable_conflict(&naive, || Box::new(DupChannel::new()), 6, 200);
        let certificate = match cert {
            Some(c) => match c.kind {
                ConflictKind::SafetyViolation { at_step } => {
                    format!("safety violation at step {at_step} ({} vs {})", c.x1, c.x2)
                }
                ConflictKind::LivenessCycle { cycle_len, .. } => format!(
                    "fair liveness cycle (len {cycle_len}) on {} vs {}",
                    c.x1, c.x2
                ),
                ConflictKind::BoundedConfusion { budget } => {
                    format!("bounded confusion (budget {budget})")
                }
            },
            None => "NONE (unexpected!)".to_string(),
        };
        let (exh_fams, exh_emb) = if m <= 2 {
            let r = exhaustive_prefix_closed_check(m, m + 1, (m + 1) as usize);
            (r.families_checked, r.embeddable)
        } else {
            (0, 0)
        };
        let (ps_machines, ps_refuted) = if m == 1 {
            let r = search_two_state_receivers(5);
            (
                r.machines,
                r.safety_refuted + r.liveness_long_refuted + r.liveness_short_refuted,
            )
        } else {
            (0, 0)
        };
        let tight = TightFamily::new(m, ResendPolicy::Once);
        let tight_refuted =
            find_indistinguishable_conflict(&tight, || Box::new(DupChannel::new()), 4, 100)
                .is_some();
        rows.push(E2Row {
            m,
            capacity: encoding_capacity(m as u32).expect("small m"),
            claimed,
            exhaustive_families: exh_fams,
            exhaustive_embeddable: exh_emb,
            certificate,
            tight_refuted,
            protospace_machines: ps_machines,
            protospace_refuted: ps_refuted,
        });
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[E2Row]) -> String {
    crate::table::render(
        &[
            "m",
            "alpha(m)",
            "claimed |X|",
            "exh. fams",
            "embeddable",
            "certificate",
            "tight refuted?",
            "2-state receivers",
            "refuted",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.capacity.to_string(),
                    r.claimed.to_string(),
                    r.exhaustive_families.to_string(),
                    r.exhaustive_embeddable.to_string(),
                    r.certificate.clone(),
                    r.tight_refuted.to_string(),
                    r.protospace_machines.to_string(),
                    r.protospace_refuted.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_refutes_overcapacity_and_exonerates_tight() {
        let rows = run(2);
        for r in &rows {
            assert!(
                r.claimed as u128 > r.capacity,
                "family must be over capacity"
            );
            assert!(
                !r.certificate.contains("NONE"),
                "m={}: {}",
                r.m,
                r.certificate
            );
            assert!(!r.tight_refuted, "m={}", r.m);
            assert_eq!(r.exhaustive_embeddable, 0);
            assert!(r.exhaustive_families > 0);
            if r.m == 1 {
                assert_eq!(r.protospace_machines, 262_144);
                assert_eq!(r.protospace_refuted, r.protospace_machines);
            }
        }
    }

    #[test]
    fn e2_table_renders() {
        let rows = run(1);
        let t = render(&rows);
        assert!(t.contains("certificate"));
    }
}
