//! **E8 — the knowledge viewpoint, §2.3–2.4.** Exact run universes
//! (exhaustively enumerated for small systems) drive the epistemic
//! machinery: learning times `t_i` exist in completing runs, `K_R(x_i)` is
//! stable once acquired, knowledge precedes writing, and the
//! indistinguishability classes shrink over time as information arrives.

use serde::{Deserialize, Serialize};
use stp_channel::DupChannel;
use stp_core::event::{ProcessId, Step};
use stp_knowledge::{Formula, LearningProfile, Universe};
use stp_protocols::{ProtocolFamily, ResendPolicy, TightFamily};
use stp_verify::{explore_runs, ExploreConfig};

/// One row of the knowledge table (aggregated per input sequence).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E8Row {
    /// The input sequence.
    pub input: String,
    /// Runs of this input in the exact universe.
    pub runs: usize,
    /// Runs in which every item was learnt within the horizon.
    pub fully_learnt: usize,
    /// Mean `t_i − t_{i−1}` over learnt items (steps).
    pub mean_learning_gap: f64,
    /// Fraction of (run, item) pairs with stable knowledge (must be 1.0).
    pub stability: f64,
    /// Fraction of learnt items where knowledge preceded the write.
    pub knowledge_first: f64,
}

/// Summary of indistinguishability-class shrinkage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E8Classes {
    /// Class counts at each step `0..=horizon` (more classes = more
    /// receiver knowledge).
    pub classes_per_step: Vec<usize>,
}

/// Builds the exact universe for the tight-dup family at alphabet size `m`
/// over the given horizon.
pub fn exact_universe(m: u16, horizon: Step) -> Universe {
    let family = TightFamily::new(m, ResendPolicy::Once);
    let cfg = ExploreConfig {
        horizon,
        max_runs: 500_000,
    };
    let mut traces = Vec::new();
    for x in family.claimed_family().iter() {
        traces.extend(explore_runs(
            &family,
            x,
            || Box::new(DupChannel::new()),
            &cfg,
        ));
    }
    Universe::new(traces)
}

/// Runs E8 on the exact universe.
pub fn run(m: u16, horizon: Step) -> (Vec<E8Row>, E8Classes) {
    let u = exact_universe(m, horizon);
    let mut by_input: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
    for run in 0..u.len() {
        by_input
            .entry(u.trace(run).input().to_string())
            .or_default()
            .push(run);
    }
    let mut rows = Vec::new();
    for (input, runs) in &by_input {
        let mut fully = 0usize;
        let mut gaps: Vec<Step> = Vec::new();
        let mut stable = 0usize;
        let mut stable_total = 0usize;
        let mut kfirst = 0usize;
        let mut kfirst_total = 0usize;
        for &run in runs {
            let n = u.trace(run).input().len();
            let profile = LearningProfile::of(&u, run);
            if n == 0 || profile.t.iter().all(Option::is_some) {
                fully += 1;
            }
            for g in profile.learning_gaps().into_iter().flatten() {
                gaps.push(g);
            }
            for i in 1..=n {
                stable_total += 1;
                if u.is_knowledge_stable(run, i) {
                    stable += 1;
                }
            }
            for (t, &w) in profile.t.iter().zip(&profile.write_steps) {
                if let Some(t) = t {
                    kfirst_total += 1;
                    if *t <= w + 1 {
                        kfirst += 1;
                    }
                }
            }
        }
        rows.push(E8Row {
            input: input.clone(),
            runs: runs.len(),
            fully_learnt: fully,
            mean_learning_gap: if gaps.is_empty() {
                0.0
            } else {
                gaps.iter().sum::<Step>() as f64 / gaps.len() as f64
            },
            stability: if stable_total == 0 {
                1.0
            } else {
                stable as f64 / stable_total as f64
            },
            knowledge_first: if kfirst_total == 0 {
                1.0
            } else {
                kfirst as f64 / kfirst_total as f64
            },
        });
    }
    let classes = E8Classes {
        classes_per_step: (0..=horizon).map(|t| u.classes_at(t).len()).collect(),
    };
    (rows, classes)
}

/// The knowledge-hierarchy profile of one run: when `K_R(x₁)` arrives and
/// when the *sender* learns that it has (`K_S K_R(x₁)`), which in the
/// tight protocol is exactly the acknowledgement round-trip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E8Hierarchy {
    /// Runs in which both levels were reached within the horizon.
    pub runs_measured: usize,
    /// Mean step at which `K_R(x₁)` first holds.
    pub mean_t_kr: f64,
    /// Mean step at which `K_S K_R(x₁)` first holds.
    pub mean_t_kskr: f64,
    /// Mean gap between the two — the epistemic cost of the ack trip.
    pub mean_gap: f64,
}

/// Measures the knowledge hierarchy `K_R(x₁)` → `K_S K_R(x₁)` over the
/// exact universe (runs on single-item inputs, all schedules).
pub fn knowledge_hierarchy(m: u16, horizon: Step) -> E8Hierarchy {
    let u = exact_universe(m, horizon);
    let kr = Formula::knows_value(ProcessId::Receiver, 1, m);
    let kskr = Formula::knows(ProcessId::Sender, kr.clone());
    let mut t_kr = Vec::new();
    let mut t_kskr = Vec::new();
    for run in 0..u.len() {
        if u.trace(run).input().len() != 1 {
            continue;
        }
        let first = |f: &Formula| (0..=horizon).find(|&t| f.eval(&u, run, t));
        if let (Some(a), Some(b)) = (first(&kr), first(&kskr)) {
            t_kr.push(a);
            t_kskr.push(b);
        }
    }
    let mean = |v: &[Step]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<Step>() as f64 / v.len() as f64
        }
    };
    E8Hierarchy {
        runs_measured: t_kr.len(),
        mean_t_kr: mean(&t_kr),
        mean_t_kskr: mean(&t_kskr),
        mean_gap: mean(&t_kskr) - mean(&t_kr),
    }
}

/// Renders the per-input table.
pub fn render(rows: &[E8Row]) -> String {
    crate::table::render(
        &[
            "input",
            "runs",
            "fully learnt",
            "mean gap",
            "stability",
            "knowledge first",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.input.clone(),
                    r.runs.to_string(),
                    r.fully_learnt.to_string(),
                    format!("{:.2}", r.mean_learning_gap),
                    format!("{:.2}", r.stability),
                    format!("{:.2}", r.knowledge_first),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_stability_is_universal() {
        let (rows, _) = run(2, 6);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!((r.stability - 1.0).abs() < 1e-9, "{}", r.input);
            assert!((r.knowledge_first - 1.0).abs() < 1e-9, "{}", r.input);
        }
    }

    #[test]
    fn e8_classes_shrink_over_time() {
        let (_, classes) = run(2, 6);
        let c = &classes.classes_per_step;
        assert_eq!(c[0], 1, "all runs indistinguishable at t=0");
        assert!(
            c[c.len() - 1] > 1,
            "information must eventually separate runs"
        );
        for w in c.windows(2) {
            assert!(w[1] >= w[0], "classes only ever split");
        }
    }

    #[test]
    fn e8_knowledge_hierarchy_orders_correctly() {
        let h = knowledge_hierarchy(2, 6);
        assert!(h.runs_measured > 10, "{h:?}");
        // K_S K_R(x₁) can only arrive after K_R(x₁): the ack costs time.
        assert!(h.mean_t_kskr > h.mean_t_kr, "{h:?}");
        assert!(h.mean_gap >= 1.0, "{h:?}");
    }

    #[test]
    fn e8_some_run_learns_everything() {
        let (rows, _) = run(1, 6);
        assert!(rows.iter().any(|r| r.fully_learnt > 0));
    }
}
