//! **E5 — Section 5: weak boundedness is not boundedness.** A single
//! fault is injected right after the first item is learnt; the time until
//! the receiver learns the *next* item is measured as the input length
//! grows. The hybrid (ABP + reverse-order recovery) needs time
//! proportional to the whole remaining sequence — its recovery latency
//! grows linearly with `|X|` — while the bounded tight-del protocol
//! recovers in constant time.

use serde::{Deserialize, Serialize};
use stp_channel::{CampaignScheduler, DelChannel, EagerScheduler, TimedChannel};
use stp_core::data::DataSeq;
use stp_core::event::Step;
use stp_protocols::{HybridReceiver, HybridSender, ResendPolicy, TightReceiver, TightSender};
use stp_sim::{burst_plan, World};

/// One row of the E5 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E5Row {
    /// Protocol label.
    pub protocol: String,
    /// Input length `|X|`.
    pub n: usize,
    /// Step at which the fault struck.
    pub fault_at: Step,
    /// Steps from the fault until item 2 was written (learning `t_2`).
    pub recovery_steps: Step,
    /// Steps from the fault until the whole input was delivered.
    pub completion_steps: Step,
}

const DEADLINE: u32 = 3;

fn hybrid_world(input: DataSeq, fault_at: Option<Step>) -> World {
    let sched: Box<dyn stp_channel::Scheduler> = match fault_at {
        Some(at) => Box::new(CampaignScheduler::new(
            Box::new(EagerScheduler::new()),
            burst_plan(at, 1),
        )),
        None => Box::new(EagerScheduler::new()),
    };
    World::builder(input.clone())
        .sender(Box::new(HybridSender::new(input, 2, DEADLINE)))
        .receiver(Box::new(HybridReceiver::new(2)))
        .channel(Box::new(TimedChannel::new(DEADLINE)))
        .scheduler(sched)
        .build()
        .expect("all components supplied")
}

fn tight_world(input: DataSeq, fault_at: Option<Step>) -> World {
    // The tight protocol needs repetition-free inputs; E5 uses indices
    // 0..n as the data sequence, so the domain is n.
    let d = input.len() as u16;
    let sched: Box<dyn stp_channel::Scheduler> = match fault_at {
        Some(at) => Box::new(CampaignScheduler::new(
            Box::new(EagerScheduler::new()),
            burst_plan(at, 1),
        )),
        None => Box::new(EagerScheduler::new()),
    };
    World::builder(input.clone())
        .sender(Box::new(TightSender::new(
            input,
            d,
            ResendPolicy::EveryTick,
        )))
        .receiver(Box::new(TightReceiver::new(d, ResendPolicy::EveryTick)))
        .channel(Box::new(DelChannel::new()))
        .scheduler(sched)
        .build()
        .expect("all components supplied")
}

fn measure(
    label: &str,
    n: usize,
    mk: impl Fn(DataSeq, Option<Step>) -> World,
    input: DataSeq,
) -> E5Row {
    // Reference run to locate the first write.
    let mut base = mk(input.clone(), None);
    base.run_until(200_000, World::is_complete);
    let first_write = base.trace().write_steps()[0];
    let fault_at = first_write + 1;
    let mut w = mk(input, Some(fault_at));
    w.run_until(400_000, World::is_complete);
    let writes = w.trace().write_steps();
    assert!(
        w.is_complete(),
        "{label} n={n}: run must complete after the fault"
    );
    E5Row {
        protocol: label.to_string(),
        n,
        fault_at,
        recovery_steps: writes[1].saturating_sub(fault_at),
        completion_steps: writes.last().copied().unwrap_or(fault_at) - fault_at,
    }
}

/// Runs the series for the given input lengths.
pub fn run(sizes: &[usize]) -> Vec<E5Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let hybrid_input: DataSeq = DataSeq::from_indices((0..n).map(|i| (i % 2) as u16));
        rows.push(measure(
            "hybrid-weakly-bounded",
            n,
            hybrid_world,
            hybrid_input,
        ));
        let tight_input: DataSeq = DataSeq::from_indices(0..n as u16);
        rows.push(measure("tight-del (bounded)", n, tight_world, tight_input));
    }
    rows
}

/// Renders the series table.
pub fn render(rows: &[E5Row]) -> String {
    crate::table::render(
        &[
            "protocol",
            "|X|",
            "fault at",
            "steps to next item",
            "steps to completion",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.n.to_string(),
                    r.fault_at.to_string(),
                    r.recovery_steps.to_string(),
                    r.completion_steps.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_hybrid_recovery_grows_while_tight_stays_flat() {
        let rows = run(&[4, 8, 16]);
        let hybrid: Vec<&E5Row> = rows
            .iter()
            .filter(|r| r.protocol.starts_with("hybrid"))
            .collect();
        let tight: Vec<&E5Row> = rows
            .iter()
            .filter(|r| r.protocol.starts_with("tight"))
            .collect();
        // The hybrid's time-to-next-item grows with |X| (strictly, here).
        assert!(
            hybrid[0].recovery_steps < hybrid[1].recovery_steps
                && hybrid[1].recovery_steps < hybrid[2].recovery_steps,
            "hybrid: {hybrid:?}"
        );
        // The tight protocol's recovery is flat.
        let t_max = tight.iter().map(|r| r.recovery_steps).max().unwrap();
        let t_min = tight.iter().map(|r| r.recovery_steps).min().unwrap();
        assert!(t_max - t_min <= 4, "tight should be flat: {tight:?}");
        // And the crossover is stark: at n=16 the hybrid is much slower.
        assert!(hybrid[2].recovery_steps > 4 * t_max.max(1));
    }
}
