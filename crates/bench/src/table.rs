//! Minimal aligned-text table rendering for the experiment binaries.

/// Renders rows as an aligned text table with a header line.
///
/// ```
/// use stp_bench::table::render;
///
/// let out = render(
///     &["m", "alpha"],
///     &[vec!["1".into(), "2".into()], vec!["2".into(), "5".into()]],
/// );
/// assert!(out.contains("alpha"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<String>| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(&mut out, header.iter().map(|s| s.to_string()).collect());
    line(&mut out, widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(&mut out, row.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let s = render(
            &["name", "n"],
            &[
                vec!["tight".into(), "5".into()],
                vec!["alternating-bit".into(), "12".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].starts_with("alternating-bit"));
    }

    #[test]
    fn handles_empty_rows() {
        let s = render(&["a"], &[]);
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn ignores_extra_cells() {
        let s = render(&["a"], &[vec!["1".into(), "junk".into()]]);
        assert!(!s.contains("junk"));
    }
}
