//! The T1/T2 conformance grid behind the `conformance` binary.
//!
//! Every cell pairs a protocol family at or above capacity with one of
//! the paper's channel models and states the verdict the theorems
//! predict: the tight family *achieves* its cell (capacity embedding on
//! dup, bounded recovery on del/timed), an over-capacity family is
//! *refuted* (indistinguishability conflict, bounded confusion, or fair
//! no-progress cycle). Running a cell invokes the corresponding search
//! through the certificate emitters of `stp-verify`, so every verdict
//! comes with a replayable [`Certificate`]; [`judge`] then hands that
//! certificate to the *independent* checker and folds its judgement into
//! the [`ConformanceVerdict`] ledger record. A cell conforms only when
//! the search verdict matches the prediction **and** the checker accepts
//! the certificate by replay.

use stp_channel::campaign::{Direction, FaultAction, FaultClause, FaultPlan, Trigger};
use stp_channel::{CampaignScheduler, ChannelSpec, EagerScheduler, SchedulerSpec};
use stp_core::data::DataSeq;
use stp_core::schema::{ConformanceVerdict, Verdict};
use stp_core::CERT_SCHEMA_VERSION;
use stp_protocols::{FamilySpec, ResendPolicy};
use stp_sim::{burst_plan, World};
use stp_verify::{
    capacity_certificate, check_certificate, conflict_certificate, fair_cycle_certificate,
    recovery_certificate, stabilization_certificate, Certificate,
};

/// One cell of the conformance grid: the coordinates the ledger reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Sender alphabet size `m`.
    pub m: u16,
    /// `"tight"` (at capacity), `"over"` (above it), or a
    /// `"stab-<kind>"` label naming the corruption kind a stabilizing
    /// cell certifies recovery from.
    pub family: &'static str,
    /// `"dup"`, `"del"` or `"timed"`.
    pub channel: &'static str,
    /// The verdict the theorems predict.
    pub expected: Verdict,
}

impl Cell {
    /// The cell's certificate file name, unique within the grid.
    pub fn artifact_name(&self) -> String {
        format!("m{}-{}-{}.json", self.m, self.family, self.channel)
    }
}

/// A cell together with its search verdict and emitted certificate.
#[derive(Debug)]
pub struct CellOutcome {
    /// The grid coordinates.
    pub cell: Cell,
    /// What the search concluded ([`Verdict::Indeterminate`] when it
    /// returned nothing — always a conformance failure).
    pub verdict: Verdict,
    /// The emitted certificate backing the verdict, if any.
    pub certificate: Option<Certificate>,
}

fn tight(m: u16, policy: ResendPolicy) -> FamilySpec {
    FamilySpec::Tight { d: m, policy }
}

fn over(m: u16, policy: ResendPolicy) -> FamilySpec {
    FamilySpec::Naive {
        d: m,
        max_len: 2,
        policy,
    }
}

/// Emits a stabilization certificate for one corruption kind against the
/// stabilizing family. The first seed whose strike both lands and leaves
/// a certifiable run wins; the scan skips seeds whose scramble draw lands
/// the receiver counter exactly on the input length (the absorbing blind
/// spot of DESIGN.md §13, indistinguishable from completion) as well as
/// strikes the run shrugged off without a recorded corruption event.
fn stabilization_outcome(
    d: u16,
    action: FaultAction,
    channel: &ChannelSpec,
) -> Option<Certificate> {
    let family = FamilySpec::Stabilizing { d, max_len: 6 };
    let input = DataSeq::from_indices((0..4u16).map(|i| (i + 1) % d));
    let clause =
        FaultClause::new(action, Trigger::OnWrite { index: 1 }).direction(Direction::ToReceiver);
    (0..64u64).find_map(|seed| {
        stabilization_certificate(
            &family,
            channel,
            &input,
            &FaultPlan::single(seed, clause.clone()),
            &SchedulerSpec::Eager,
            20_000,
            5_000,
        )
    })
}

/// Runs a faulted tight-family world to its first written item and probes
/// the point for a fresh-only bounded recovery, certificate included.
fn recovery_outcome(
    family: &FamilySpec,
    channel: &ChannelSpec,
    input: DataSeq,
    budget: u64,
) -> Option<Certificate> {
    let fam = family.build();
    let mut world = World::builder(input.clone())
        .sender(fam.sender_for(&input))
        .receiver(fam.receiver())
        .channel(channel.build())
        .scheduler(Box::new(CampaignScheduler::new(
            Box::new(EagerScheduler::new()),
            burst_plan(4, 2),
        )))
        .build()
        .expect("all components supplied");
    if !world.run_until(200, |w| w.written() == 1) {
        return None;
    }
    recovery_certificate(family, channel, &world, budget)
}

/// Runs every cell of the grid, in ledger order. Tight families are
/// expected to achieve their cell, over-capacity families to be refuted;
/// an empty-handed search yields [`Verdict::Indeterminate`].
pub fn run_grid() -> Vec<CellOutcome> {
    let mut outcomes = Vec::new();
    let cell = |m, family, channel, expected| Cell {
        m,
        family,
        channel,
        expected,
    };
    let achieved = |cert: Option<Certificate>| match cert {
        Some(_) => Verdict::Achieved,
        None => Verdict::Indeterminate,
    };
    let refuted = |cert: Option<Certificate>| match cert {
        Some(_) => Verdict::Refuted,
        None => Verdict::Indeterminate,
    };

    // Tight × dup: Theorem 1 achievability as the exhaustive α(m)
    // capacity check, with the embedding control as the witness.
    for (m, domain, depth) in [(1u16, 2u16, 2usize), (2, 3, 3)] {
        let cert = capacity_certificate(m, domain, depth);
        outcomes.push(CellOutcome {
            cell: cell(m, "tight", "dup", Verdict::Achieved),
            verdict: achieved(cert.clone()),
            certificate: cert,
        });
    }
    // Tight × del / timed: Theorem 2 achievability as a Definition-2
    // bounded-recovery probe of a faulted run.
    for (channel, tag) in [
        (ChannelSpec::Del, "del"),
        (ChannelSpec::Timed { deadline: 3 }, "timed"),
    ] {
        let family = tight(2, ResendPolicy::EveryTick);
        let cert = recovery_outcome(&family, &channel, DataSeq::from_indices([0u16, 1]), 8);
        outcomes.push(CellOutcome {
            cell: cell(2, "tight", tag, Verdict::Achieved),
            verdict: achieved(cert.clone()),
            certificate: cert,
        });
    }
    // Over × dup: Theorem 1 impossibility as an indistinguishability
    // conflict over the minimal over-capacity family.
    {
        let cert = conflict_certificate(&over(2, ResendPolicy::Once), &ChannelSpec::Dup, 6, 200, 0);
        outcomes.push(CellOutcome {
            cell: cell(2, "over", "dup", Verdict::Refuted),
            verdict: refuted(cert.clone()),
            certificate: cert,
        });
    }
    // Over × del: Theorem 2 impossibility as bounded confusion with the
    // E4 budget (stockpiles defeat f(i) ≤ 4).
    for m in [1u16, 2] {
        let cert = conflict_certificate(
            &over(m, ResendPolicy::EveryTick),
            &ChannelSpec::Del,
            14,
            0,
            4,
        );
        outcomes.push(CellOutcome {
            cell: cell(m, "over", "del", Verdict::Refuted),
            verdict: refuted(cert.clone()),
            certificate: cert,
        });
    }
    // Over × timed: the naive family gets stuck in a fair no-progress
    // cycle once its only copy has expired.
    {
        let cert = fair_cycle_certificate(
            &over(2, ResendPolicy::Once),
            &ChannelSpec::Timed { deadline: 3 },
            &DataSeq::from_indices([0u16, 0]),
            400,
        );
        outcomes.push(CellOutcome {
            cell: cell(2, "over", "timed", Verdict::Refuted),
            verdict: refuted(cert.clone()),
            certificate: cert,
        });
    }
    // Stabilizing × {dup, del} × corruption kind: the self-stabilizing
    // variant must recover from every transient state corruption within a
    // certified bound (DESIGN.md §13), checked by campaign replay.
    for d in [2u16, 3] {
        for (action, tag) in [
            (FaultAction::StateScramble, "stab-scramble"),
            (FaultAction::CounterDesync, "stab-desync"),
            (FaultAction::InjectNoise, "stab-inject"),
        ] {
            for (channel, chan_tag) in [(ChannelSpec::Dup, "dup"), (ChannelSpec::Del, "del")] {
                let cert = stabilization_outcome(d, action.clone(), &channel);
                outcomes.push(CellOutcome {
                    cell: cell(d, tag, chan_tag, Verdict::Achieved),
                    verdict: achieved(cert.clone()),
                    certificate: cert,
                });
            }
        }
    }
    outcomes
}

/// Judges a cell outcome with the independent checker and produces its
/// ledger record. `cert_file` is the artifact path recorded in the
/// ledger (relative to it); pass `""` when the certificate was not
/// written anywhere.
pub fn judge(outcome: &CellOutcome, cert_file: &str) -> ConformanceVerdict {
    let (cert_kind, checker) = match &outcome.certificate {
        None => (
            String::new(),
            "rejected: no certificate emitted".to_string(),
        ),
        Some(cert) => (
            cert.kind().to_string(),
            match check_certificate(cert) {
                Ok(()) => "accepted".to_string(),
                Err(e) => format!("rejected: {e}"),
            },
        ),
    };
    let ok = outcome.verdict == outcome.cell.expected && checker == "accepted";
    ConformanceVerdict {
        schema_version: CERT_SCHEMA_VERSION,
        m: outcome.cell.m,
        family: outcome.cell.family.to_string(),
        channel: outcome.cell.channel.to_string(),
        expected: outcome.cell.expected,
        verdict: outcome.verdict,
        cert_kind,
        cert_file: cert_file.to_string(),
        checker,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_grid_cell_conforms() {
        let outcomes = run_grid();
        assert_eq!(outcomes.len(), 20, "the grid has twenty cells");
        for outcome in &outcomes {
            let record = judge(outcome, &outcome.cell.artifact_name());
            assert!(
                record.ok,
                "cell m{} {}×{}: verdict {:?} (expected {:?}), checker: {}",
                record.m,
                record.family,
                record.channel,
                record.verdict,
                record.expected,
                record.checker
            );
        }
    }

    #[test]
    fn certificates_survive_the_wire() {
        for outcome in run_grid() {
            let cert = outcome.certificate.expect("every cell emits a certificate");
            let back = Certificate::from_json(&cert.to_json()).expect("parses");
            assert_eq!(back, cert);
            stp_verify::check_certificate(&back).expect("parsed certificate still checks");
        }
    }

    #[test]
    fn artifact_names_are_unique() {
        let outcomes = run_grid();
        let mut names: Vec<String> = outcomes.iter().map(|o| o.cell.artifact_name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
