//! Criterion bench for E8: exhaustive universe construction and knowledge
//! evaluation.
use criterion::{criterion_group, criterion_main, Criterion};
use stp_bench::e8;

fn bench(c: &mut Criterion) {
    c.bench_function("e8_exact_universe_m2_h6", |b| {
        b.iter(|| e8::exact_universe(2, 6).len())
    });
    c.bench_function("e8_full_analysis_m2_h6", |b| {
        b.iter(|| {
            let (rows, classes) = e8::run(2, 6);
            rows.len() + classes.classes_per_step.len()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
