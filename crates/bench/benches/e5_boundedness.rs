//! Criterion bench for E5: single-fault recovery measurement, hybrid vs
//! tight-del, across input lengths.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stp_bench::e5;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_boundedness");
    for n in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("series_point", n), &n, |b, &n| {
            b.iter(|| {
                let rows = e5::run(&[n]);
                assert_eq!(rows.len(), 2);
                rows[0].recovery_steps + rows[1].recovery_steps
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
