//! Criterion bench for E6: alpha arithmetic, ranking and enumeration.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stp_core::alpha::{alpha, rank, unrank, RepetitionFreeSeqs};

fn bench(c: &mut Criterion) {
    c.bench_function("e6_alpha_closed_form_m33", |b| {
        b.iter(|| alpha(33).expect("fits"))
    });
    let mut g = c.benchmark_group("e6_enumeration");
    for m in [4u16, 5, 6] {
        g.bench_with_input(BenchmarkId::new("enumerate", m), &m, |b, &m| {
            b.iter(|| RepetitionFreeSeqs::new(m).count())
        });
    }
    g.finish();
    c.bench_function("e6_rank_unrank_round_trip_m8", |b| {
        let total = alpha(8).unwrap();
        b.iter(|| {
            let mut acc = 0u128;
            for r in (0..total).step_by(997) {
                let s = unrank(8, r).unwrap();
                acc += rank(8, &s).unwrap();
            }
            acc
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
