//! Criterion bench for E4: bounded-confusion certificate search across
//! budgets.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stp_channel::DelChannel;
use stp_protocols::NaiveFamily;
use stp_verify::refute::find_conflict_with_budget;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_del_impossibility");
    for budget in [2u64, 4, 6] {
        g.bench_with_input(BenchmarkId::new("budget", budget), &budget, |b, &budget| {
            let family = NaiveFamily::resending(1, 2);
            b.iter(|| {
                find_conflict_with_budget(
                    &family,
                    || Box::new(DelChannel::new()),
                    6 + 2 * budget,
                    0,
                    budget,
                )
                .expect("certificate")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
