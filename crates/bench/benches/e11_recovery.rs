//! Criterion bench for E11: envelope probing and campaign shrinking.
use criterion::{criterion_group, criterion_main, Criterion};
use stp_bench::e11;

fn bench(c: &mut Criterion) {
    c.bench_function("e11_envelope_n8", |b| {
        b.iter(|| e11::run_envelopes(&[8], 0).len())
    });
    c.bench_function("e11_composite_n8", |b| {
        b.iter(|| e11::run_composite(8).steps)
    });
    c.bench_function("e11_shrink_witness", |b| {
        b.iter(|| e11::run_shrink_demo().witness.plan.clauses.len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
