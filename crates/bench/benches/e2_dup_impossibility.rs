//! Criterion bench for E2: the decisive-tuple refuter and the exhaustive
//! prefix-closed enumeration.
use criterion::{criterion_group, criterion_main, Criterion};
use stp_channel::DupChannel;
use stp_protocols::NaiveFamily;
use stp_verify::{exhaustive_prefix_closed_check, find_indistinguishable_conflict};

fn bench(c: &mut Criterion) {
    c.bench_function("e2_refute_naive_m2", |b| {
        let family = NaiveFamily::new(2, 2);
        b.iter(|| {
            find_indistinguishable_conflict(&family, || Box::new(DupChannel::new()), 6, 200)
                .expect("certificate")
        })
    });
    c.bench_function("e2_exhaustive_embedding_m2", |b| {
        b.iter(|| {
            let r = exhaustive_prefix_closed_check(2, 3, 3);
            assert_eq!(r.embeddable, 0);
            r.families_checked
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
