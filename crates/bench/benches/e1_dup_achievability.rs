//! Criterion bench for E1: full tight-dup sweeps at increasing alphabet
//! sizes under a duplication storm.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_core::event::TraceMode;
use stp_protocols::{ResendPolicy, TightFamily};
use stp_sim::{sweep_family, SweepSpec};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_dup_achievability");
    for m in [2u16, 3, 4] {
        g.bench_with_input(BenchmarkId::new("sweep_alpha_m", m), &m, |b, &m| {
            let family = TightFamily::new(m, ResendPolicy::Once);
            let spec = SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::DupStorm { p_deliver: 0.9 })
                .max_steps(4_000)
                .seeds([0])
                .trace_mode(TraceMode::Off);
            b.iter(|| {
                let out = sweep_family(&family, &spec);
                assert!(out.all_complete());
                out.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
