//! Criterion bench for E1: full tight-dup sweeps at increasing alphabet
//! sizes under a duplication storm.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stp_channel::{DupChannel, DupStormScheduler};
use stp_protocols::{ResendPolicy, TightFamily};
use stp_sim::{sweep_family, FamilyRunConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_dup_achievability");
    for m in [2u16, 3, 4] {
        g.bench_with_input(BenchmarkId::new("sweep_alpha_m", m), &m, |b, &m| {
            let family = TightFamily::new(m, ResendPolicy::Once);
            let cfg = FamilyRunConfig {
                max_steps: 4_000,
                seeds: vec![0],
            };
            b.iter(|| {
                let out = sweep_family(
                    &family,
                    &cfg,
                    || Box::new(DupChannel::new()),
                    |seed| Box::new(DupStormScheduler::new(seed, 0.9)),
                );
                assert!(out.all_complete());
                out.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
