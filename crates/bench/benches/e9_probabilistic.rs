//! Criterion bench for E9: codebook generation and a full probabilistic
//! sweep at one alphabet size.
use criterion::{criterion_group, criterion_main, Criterion};
use stp_bench::e9;
use stp_core::sequence::SequenceFamily;
use stp_protocols::probabilistic::random_codebook;

fn bench(c: &mut Criterion) {
    c.bench_function("e9_codebook_draw_m8_n40", |b| {
        let family = SequenceFamily::all_up_to(3, 3);
        b.iter(|| random_codebook(&family, 8, 7).len())
    });
    c.bench_function("e9_sweep_m5", |b| b.iter(|| e9::run(2, 2, &[5], 2).len()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
