//! Criterion bench for E10: the boundedness prober on both protocols.
use criterion::{criterion_group, criterion_main, Criterion};
use stp_bench::e10;

fn bench(c: &mut Criterion) {
    c.bench_function("e10_probe_n8", |b| b.iter(|| e10::run(&[8], 6).len()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
