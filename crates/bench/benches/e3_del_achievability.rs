//! Criterion bench for E3: tight-del sweeps and the fault-recovery probe.
use criterion::{criterion_group, criterion_main, Criterion};
use stp_bench::e3;

fn bench(c: &mut Criterion) {
    c.bench_function("e3_del_sweep_m3", |b| {
        b.iter(|| {
            let rows = e3::run_completeness(3, 1);
            assert!(rows.iter().all(|r| r.complete == r.runs));
            rows.len()
        })
    });
    c.bench_function("e3_recovery_profile_m8", |b| {
        b.iter(|| e3::run_recovery(8).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
