//! Criterion bench for E7: the full protocol-cost grid plus per-protocol
//! end-to-end transfers.
use criterion::{criterion_group, criterion_main, Criterion};
use stp_bench::e7;
use stp_core::data::DataSeq;
use stp_sim::World;

fn bench(c: &mut Criterion) {
    c.bench_function("e7_full_grid", |b| b.iter(|| e7::run(42).len()));
    c.bench_function("e7_tight_dup_transfer_n8", |b| {
        let input: DataSeq = DataSeq::from_indices(0..8);
        b.iter(|| {
            let mut w = World::tight_dup(input.clone(), 8);
            w.run_to_completion(10_000).expect("completes").steps()
        })
    });
    c.bench_function("e7_tight_del_transfer_n8", |b| {
        let input: DataSeq = DataSeq::from_indices(0..8);
        b.iter(|| {
            let mut w = World::tight_del(input.clone(), 8);
            w.run_to_completion(10_000).expect("completes").steps()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
