//! The encoding characterization of `X`-STP(dup) solvability.
//!
//! At the end of Section 3 the paper observes that solving `X`-STP(dup)
//! requires mapping every input sequence `X ∈ X` to a message sequence
//! `μ(X)` over `M^S` such that
//!
//! 1. `μ(X)` contains **no repetitions** (a duplicating channel makes a
//!    second copy of a message worthless), and
//! 2. `μ` is **prefix-monotone**: `μ(X₁)` is a prefix of `μ(X₂)` only when
//!    `X₁` is a prefix of `X₂` (otherwise the receiver, having seen
//!    `μ(X₁)`, could not safely write anything beyond the common prefix).
//!
//! Since there are exactly `α(m)` repetition-free sequences over `m`
//! letters, `|X| ≤ α(m)` follows; and because distinct full-length
//! (length-`m`) repetition-free sequences are never prefixes of one
//! another, *any* `X` with `|X| ≤ m!` admits an encoding. This module makes
//! all of that executable.

use crate::alphabet::{Alphabet, SMsg, SMsgSeq};
use crate::data::DataSeq;
use crate::error::{Error, Result};
use crate::sequence::SequenceFamily;
use std::collections::BTreeMap;
use std::fmt;

/// A finite encoding table `μ : X → M^S`-sequences.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Encoding {
    entries: Vec<(DataSeq, SMsgSeq)>,
}

impl Encoding {
    /// Creates an empty encoding.
    pub fn new() -> Self {
        Encoding {
            entries: Vec::new(),
        }
    }

    /// Creates an encoding from explicit `(input, code)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (DataSeq, SMsgSeq)>>(pairs: I) -> Self {
        Encoding {
            entries: pairs.into_iter().collect(),
        }
    }

    /// Number of encoded sequences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the encoding is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(input, code)` pairs.
    pub fn entries(&self) -> &[(DataSeq, SMsgSeq)] {
        &self.entries
    }

    /// Looks up the code of `seq`.
    pub fn code_of(&self, seq: &DataSeq) -> Option<&SMsgSeq> {
        self.entries.iter().find(|(s, _)| s == seq).map(|(_, c)| c)
    }

    /// Decodes: the input sequence whose code is exactly `code`.
    pub fn decode(&self, code: &SMsgSeq) -> Option<&DataSeq> {
        self.entries.iter().find(|(_, c)| c == code).map(|(s, _)| s)
    }

    /// The longest decodable input for a *received set* of messages under a
    /// duplicating channel: the receiver knows only which messages it has
    /// seen; among entries whose code's message-set is contained in
    /// `received`, the one with the longest code is the safest inference.
    ///
    /// This mirrors what the paper's tight receiver does incrementally.
    pub fn decode_from_set(&self, received: &std::collections::HashSet<SMsg>) -> Option<&DataSeq> {
        self.entries
            .iter()
            .filter(|(_, c)| c.msgs().iter().all(|m| received.contains(m)))
            .max_by_key(|(_, c)| c.len())
            .map(|(s, _)| s)
    }

    /// Checks the two validity conditions (plus injectivity and alphabet
    /// membership) for a solution to `X`-STP(dup).
    ///
    /// # Errors
    ///
    /// * [`Error::MsgOutOfAlphabet`] / [`Error::RepetitionInSequence`] —
    ///   condition 1 fails;
    /// * [`Error::EncodingNotInjective`] — two inputs share a code;
    /// * [`Error::PrefixMonotonicityViolated`] — condition 2 fails.
    pub fn validate(&self, alphabet: Alphabet) -> Result<()> {
        for (_, code) in &self.entries {
            code.validate_repetition_free(alphabet)?;
        }
        let mut by_code: BTreeMap<&SMsgSeq, usize> = BTreeMap::new();
        for (i, (_, code)) in self.entries.iter().enumerate() {
            if let Some(&first) = by_code.get(code) {
                return Err(Error::EncodingNotInjective { first, second: i });
            }
            by_code.insert(code, i);
        }
        for (i, (xi, ci)) in self.entries.iter().enumerate() {
            for (j, (xj, cj)) in self.entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                if ci.is_prefix_of(cj) && !xi.is_prefix_of(xj) {
                    return Err(Error::PrefixMonotonicityViolated {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        Ok(())
    }

    /// The **identity encoding** for the repetition-free family over a
    /// domain of size `d`: each data sequence maps to the message sequence
    /// with the same indices. Requires `m ≥ d`.
    ///
    /// This is exactly the encoding realized by the paper's tight protocol.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CapacityExceeded`] when `alphabet.size() < d`.
    pub fn identity(d: u16, alphabet: Alphabet) -> Result<Self> {
        if alphabet.size() < d {
            return Err(Error::CapacityExceeded {
                requested: d as u128,
                capacity: alphabet.size() as u128,
            });
        }
        let family = SequenceFamily::repetition_free(d);
        let entries = family
            .iter()
            .map(|s| {
                (
                    s.clone(),
                    SMsgSeq::from_indices(s.items().iter().map(|i| i.0)),
                )
            })
            .collect();
        Ok(Encoding { entries })
    }

    /// Builds an encoding for a **prefix-closed** family by embedding its
    /// prefix tree into the repetition-free message tree (greedy first-fit:
    /// each trie edge takes the smallest unused letter on its root path).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CapacityExceeded`] when some trie node at depth `k`
    /// has more than `m - k` children (the embedding condition fails).
    pub fn tree_embedding(family: &SequenceFamily, alphabet: Alphabet) -> Result<Self> {
        let tree = family.prefix_tree();
        let m = alphabet.size();
        if !tree.embeds_in_repetition_free(m) {
            let worst = (0..=tree.depth())
                .map(|d| (d, tree.max_arity_at_depth(d)))
                .max_by_key(|&(d, a)| a as i64 - (m as i64 - d as i64))
                .unwrap_or((0, 0));
            return Err(Error::CapacityExceeded {
                requested: worst.1 as u128,
                capacity: (m as usize).saturating_sub(worst.0) as u128,
            });
        }
        // Assign codes by BFS: code(node) = code(parent) + first unused
        // letter.
        let mut code: Vec<SMsgSeq> = vec![SMsgSeq::new(); tree.len()];
        let mut order: Vec<usize> = (0..tree.len()).collect();
        order.sort_by_key(|&i| tree.nodes()[i].depth);
        for &idx in &order {
            let node = &tree.nodes()[idx];
            let base = code[idx].clone();
            let used: std::collections::HashSet<u16> =
                base.msgs().iter().map(|msg| msg.0).collect();
            let mut next_letter = 0u16;
            for &child in &node.children {
                while used.contains(&next_letter) {
                    next_letter += 1;
                }
                debug_assert!(next_letter < m, "embedding precondition checked above");
                let mut c = base.clone();
                c.push(SMsg(next_letter));
                code[child] = c;
                next_letter += 1;
            }
        }
        let entries = tree
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.terminal)
            .map(|(i, _)| (tree.path_to(i), code[i].clone()))
            .collect();
        Ok(Encoding { entries })
    }

    /// Builds an encoding for an **arbitrary** family of size at most `m!`
    /// by assigning each member a distinct full permutation of the alphabet
    /// (distinct same-length codes are never prefixes of each other, so
    /// prefix-monotonicity holds vacuously).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CapacityExceeded`] when `|family| > m!` or `m!`
    /// overflows `u128`.
    pub fn full_permutation(family: &SequenceFamily, alphabet: Alphabet) -> Result<Self> {
        let m = alphabet.size() as u32;
        let cap = crate::alpha::factorial(m)?;
        if family.len() as u128 > cap {
            return Err(Error::CapacityExceeded {
                requested: family.len() as u128,
                capacity: cap,
            });
        }
        // The k-th permutation in lexicographic order (Lehmer decode).
        let mut entries = Vec::with_capacity(family.len());
        for (k, seq) in family.iter().enumerate() {
            entries.push((seq.clone(), nth_permutation(alphabet.size(), k as u128)?));
        }
        Ok(Encoding { entries })
    }

    /// Maximum size of a **prefix-closed** family encodable with an
    /// `m`-letter alphabet, computed by dynamic programming over the
    /// repetition-free tree. Equals `α(m)` — an independent derivation of
    /// the paper's bound used as a cross-check in the experiments.
    pub fn max_prefix_closed_capacity(m: u32) -> Result<u128> {
        // cap(k) = 1 + (m - k) · cap(k + 1): a node at depth k plus its
        // m - k child subtrees.
        let mut cap: u128 = 1;
        for depth in (0..m).rev() {
            cap = cap
                .checked_mul((m - depth) as u128)
                .and_then(|v| v.checked_add(1))
                .ok_or(Error::AlphaOverflow { m })?;
        }
        Ok(cap)
    }
}

/// The `k`-th lexicographic permutation of `{0, …, m-1}` as a message
/// sequence (Lehmer-code decoding).
///
/// # Errors
///
/// Returns [`Error::RankOutOfRange`] when `k ≥ m!`.
pub fn nth_permutation(m: u16, k: u128) -> Result<SMsgSeq> {
    let total = crate::alpha::factorial(m as u32)?;
    if k >= total {
        return Err(Error::RankOutOfRange {
            rank: k,
            count: total,
        });
    }
    let mut rem = k;
    let mut avail: Vec<u16> = (0..m).collect();
    let mut out = Vec::with_capacity(m as usize);
    for i in (1..=m as u32).rev() {
        let block = crate::alpha::factorial(i - 1)?;
        let idx = (rem / block) as usize;
        rem %= block;
        out.push(avail.remove(idx));
    }
    Ok(SMsgSeq::from_indices(out))
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "μ:")?;
        for (s, c) in &self.entries {
            writeln!(f, "  {s} ↦ {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::alpha;
    use proptest::prelude::*;

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }
    fn code(v: &[u16]) -> SMsgSeq {
        SMsgSeq::from_indices(v.iter().copied())
    }

    #[test]
    fn identity_encoding_is_valid_and_full_size() {
        for d in 0u16..=5 {
            let e = Encoding::identity(d, Alphabet::new(d)).unwrap();
            assert_eq!(e.len() as u128, alpha(d as u32).unwrap());
            e.validate(Alphabet::new(d)).unwrap();
        }
    }

    #[test]
    fn identity_requires_enough_letters() {
        assert!(matches!(
            Encoding::identity(3, Alphabet::new(2)),
            Err(Error::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn validate_catches_repetition() {
        let e = Encoding::from_pairs([(seq(&[0]), code(&[1, 1]))]);
        assert!(matches!(
            e.validate(Alphabet::new(2)),
            Err(Error::RepetitionInSequence { .. })
        ));
    }

    #[test]
    fn validate_catches_collision() {
        let e = Encoding::from_pairs([(seq(&[0]), code(&[1])), (seq(&[1]), code(&[1]))]);
        assert_eq!(
            e.validate(Alphabet::new(2)),
            Err(Error::EncodingNotInjective {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn validate_catches_prefix_monotonicity_violation() {
        // μ(⟨0⟩) = ⟨0⟩ is a prefix of μ(⟨1,2⟩) = ⟨0,1⟩, but ⟨0⟩ is not a
        // prefix of ⟨1,2⟩.
        let e = Encoding::from_pairs([(seq(&[0]), code(&[0])), (seq(&[1, 2]), code(&[0, 1]))]);
        assert_eq!(
            e.validate(Alphabet::new(2)),
            Err(Error::PrefixMonotonicityViolated {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn validate_allows_prefix_pairs_in_x() {
        let e = Encoding::from_pairs([(seq(&[0]), code(&[0])), (seq(&[0, 1]), code(&[0, 1]))]);
        e.validate(Alphabet::new(2)).unwrap();
    }

    #[test]
    fn tree_embedding_on_binary_family() {
        let x = SequenceFamily::all_up_to(2, 2); // 7 sequences, needs m ≥ 3
        assert!(matches!(
            Encoding::tree_embedding(&x, Alphabet::new(2)),
            Err(Error::CapacityExceeded { .. })
        ));
        let e = Encoding::tree_embedding(&x, Alphabet::new(3)).unwrap();
        assert_eq!(e.len(), 7);
        e.validate(Alphabet::new(3)).unwrap();
        // Codes of prefix-related inputs are prefix-related.
        for (xi, ci) in e.entries() {
            for (xj, cj) in e.entries() {
                if xi.is_prefix_of(xj) {
                    assert!(ci.is_prefix_of(cj), "{xi}→{ci} vs {xj}→{cj}");
                }
            }
        }
    }

    #[test]
    fn tree_embedding_maximal_family_exactly_fits() {
        // The repetition-free family over d letters needs exactly m = d.
        for d in 1u16..=5 {
            let x = SequenceFamily::repetition_free(d);
            let e = Encoding::tree_embedding(&x, Alphabet::new(d)).unwrap();
            assert_eq!(e.len() as u128, alpha(d as u32).unwrap());
            e.validate(Alphabet::new(d)).unwrap();
            assert!(Encoding::tree_embedding(&x, Alphabet::new(d.saturating_sub(1))).is_err());
        }
    }

    #[test]
    fn full_permutation_handles_non_prefix_closed_families() {
        // 6 arbitrary sequences over a large domain, m = 3 (3! = 6).
        let x = SequenceFamily::from_seqs([
            seq(&[9, 9, 9]),
            seq(&[1]),
            seq(&[2, 2]),
            seq(&[0, 1, 0, 1]),
            seq(&[5]),
            seq(&[7, 8]),
        ])
        .unwrap();
        let e = Encoding::full_permutation(&x, Alphabet::new(3)).unwrap();
        assert_eq!(e.len(), 6);
        e.validate(Alphabet::new(3)).unwrap();
        // One more sequence overflows m!.
        let y = SequenceFamily::from_seqs(x.iter().cloned().chain([seq(&[6, 6, 6])])).unwrap();
        assert_eq!(
            Encoding::full_permutation(&y, Alphabet::new(3)),
            Err(Error::CapacityExceeded {
                requested: 7,
                capacity: 6
            })
        );
    }

    #[test]
    fn max_prefix_closed_capacity_equals_alpha() {
        for m in 0..=20 {
            assert_eq!(
                Encoding::max_prefix_closed_capacity(m).unwrap(),
                alpha(m).unwrap(),
                "m={m}"
            );
        }
    }

    #[test]
    fn nth_permutation_enumerates_all() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..24 {
            let p = nth_permutation(4, k).unwrap();
            assert_eq!(p.len(), 4);
            assert!(p.is_repetition_free());
            assert!(seen.insert(p));
        }
        assert!(nth_permutation(4, 24).is_err());
        // Lexicographic order spot checks.
        assert_eq!(nth_permutation(3, 0).unwrap(), code(&[0, 1, 2]));
        assert_eq!(nth_permutation(3, 5).unwrap(), code(&[2, 1, 0]));
    }

    #[test]
    fn decode_and_decode_from_set() {
        let e = Encoding::identity(3, Alphabet::new(3)).unwrap();
        assert_eq!(e.decode(&code(&[2, 0])), Some(&seq(&[2, 0])));
        assert_eq!(e.decode(&code(&[0, 0])), None);
        let mut rx = std::collections::HashSet::new();
        rx.insert(SMsg(2));
        rx.insert(SMsg(0));
        // Longest covered code wins: ⟨2,0⟩ or ⟨0,2⟩ both have length 2; the
        // decoder must pick one of them consistently (max_by_key keeps the
        // last max — either is a valid longest inference for the *set*).
        let d = e.decode_from_set(&rx).unwrap();
        assert_eq!(d.len(), 2);
    }

    proptest! {
        #[test]
        fn prop_tree_embedding_valid_for_random_prefix_closed_families(
            d in 1u16..4, max_len in 0usize..3
        ) {
            let x = SequenceFamily::all_up_to(d, max_len);
            // Smallest m that fits: arity at depth k is d, so need m ≥ d + max_len - 1...
            // use a safely large alphabet.
            let m = d + max_len as u16;
            if x.prefix_tree().embeds_in_repetition_free(m) {
                let e = Encoding::tree_embedding(&x, Alphabet::new(m)).unwrap();
                prop_assert!(e.validate(Alphabet::new(m)).is_ok());
                prop_assert_eq!(e.len(), x.len());
            }
        }

        #[test]
        fn prop_full_permutation_always_valid(n in 1usize..24) {
            let seqs: Vec<DataSeq> = (0..n)
                .map(|i| DataSeq::from_indices([(i % 7) as u16, (i / 7) as u16, i as u16]))
                .collect();
            let x = SequenceFamily::from_seqs(seqs).unwrap();
            let e = Encoding::full_permutation(&x, Alphabet::new(4)).unwrap();
            prop_assert!(e.validate(Alphabet::new(4)).is_ok());
        }
    }
}
