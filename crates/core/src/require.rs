//! Executable forms of the paper's Safety and Liveness requirements.
//!
//! * **Safety** — at any time, the output tape `Y` is a prefix of the input
//!   tape `X` ([`check_safety`]).
//! * **Liveness** — in a fair run, every input item is eventually written.
//!   Over a finite trace we check the bounded form: at least `expected`
//!   items were written ([`check_liveness`]).
//!
//! Both checkers operate on recorded [`Trace`]s, so they apply uniformly to
//! every protocol, channel and adversary in the workspace.

use crate::data::DataSeq;
use crate::error::{Error, Result};
use crate::event::{Event, Trace};

/// Checks that the output tape was a prefix of the input at *every* point
/// of the trace (not just at the end): writes must occur at consecutive
/// positions `0, 1, 2, …` and each written item must equal the input item
/// at that position.
///
/// # Errors
///
/// Returns [`Error::SafetyViolated`] naming the first offending step and
/// position.
///
/// ```
/// use stp_core::data::{DataItem, DataSeq};
/// use stp_core::event::{Event, Trace};
/// use stp_core::require::check_safety;
///
/// let mut t = Trace::new(DataSeq::from_indices([7]));
/// t.record(0, Event::Write { item: DataItem(7), pos: 0 });
/// assert!(check_safety(&t).is_ok());
/// ```
pub fn check_safety(trace: &Trace) -> Result<()> {
    let input = trace.input();
    let mut next_pos = 0usize;
    for e in trace.events() {
        if let Event::Write { item, pos } = e.event {
            if pos != next_pos {
                return Err(Error::SafetyViolated {
                    step: e.step,
                    position: pos,
                });
            }
            match input.get(pos) {
                Some(expected) if expected == item => next_pos += 1,
                _ => {
                    return Err(Error::SafetyViolated {
                        step: e.step,
                        position: pos,
                    })
                }
            }
        }
    }
    Ok(())
}

/// Checks the bounded liveness obligation: at least `expected` items have
/// been written by the end of the trace.
///
/// # Errors
///
/// Returns [`Error::LivenessShortfall`] when fewer were written.
pub fn check_liveness(trace: &Trace, expected: usize) -> Result<()> {
    let written = trace.output().len();
    if written < expected {
        Err(Error::LivenessShortfall { written, expected })
    } else {
        Ok(())
    }
}

/// Checks full delivery: the whole input was written.
///
/// # Errors
///
/// Returns [`Error::LivenessShortfall`] when items are missing, or
/// [`Error::SafetyViolated`] when the output disagrees with the input.
pub fn check_complete(trace: &Trace) -> Result<()> {
    check_safety(trace)?;
    check_liveness(trace, trace.input().len())
}

/// A summary verdict for one run, convenient for experiment tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Whether safety held throughout.
    pub safe: bool,
    /// Number of items written.
    pub written: usize,
    /// Number of items on the input tape.
    pub expected: usize,
    /// The output tape at the end of the trace.
    pub output: DataSeq,
}

impl Verdict {
    /// Evaluates a trace.
    pub fn of(trace: &Trace) -> Verdict {
        Verdict {
            safe: check_safety(trace).is_ok(),
            written: trace.output().len(),
            expected: trace.input().len(),
            output: trace.output(),
        }
    }

    /// Whether the run both stayed safe and delivered everything.
    pub fn is_complete(&self) -> bool {
        self.safe && self.written >= self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataItem;

    fn write(pos: usize, item: u16) -> Event {
        Event::Write {
            item: DataItem(item),
            pos,
        }
    }

    #[test]
    fn safety_holds_for_correct_prefix_writes() {
        let mut t = Trace::new(DataSeq::from_indices([3, 1, 4]));
        t.record(2, write(0, 3));
        t.record(5, write(1, 1));
        assert!(check_safety(&t).is_ok());
    }

    #[test]
    fn safety_rejects_wrong_item() {
        let mut t = Trace::new(DataSeq::from_indices([3, 1]));
        t.record(2, write(0, 9));
        assert_eq!(
            check_safety(&t),
            Err(Error::SafetyViolated {
                step: 2,
                position: 0
            })
        );
    }

    #[test]
    fn safety_rejects_out_of_order_positions() {
        let mut t = Trace::new(DataSeq::from_indices([3, 1]));
        t.record(1, write(1, 1));
        assert_eq!(
            check_safety(&t),
            Err(Error::SafetyViolated {
                step: 1,
                position: 1
            })
        );
    }

    #[test]
    fn safety_rejects_overrun() {
        let mut t = Trace::new(DataSeq::from_indices([3]));
        t.record(0, write(0, 3));
        t.record(1, write(1, 0));
        assert!(matches!(
            check_safety(&t),
            Err(Error::SafetyViolated { step: 1, .. })
        ));
    }

    #[test]
    fn safety_rejects_double_write_of_same_position() {
        let mut t = Trace::new(DataSeq::from_indices([3, 3]));
        t.record(0, write(0, 3));
        t.record(1, write(0, 3));
        assert!(check_safety(&t).is_err());
    }

    #[test]
    fn liveness_counts_writes() {
        let mut t = Trace::new(DataSeq::from_indices([3, 1]));
        t.record(0, write(0, 3));
        assert!(check_liveness(&t, 1).is_ok());
        assert_eq!(
            check_liveness(&t, 2),
            Err(Error::LivenessShortfall {
                written: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn complete_requires_both() {
        let mut t = Trace::new(DataSeq::from_indices([3, 1]));
        t.record(0, write(0, 3));
        assert!(check_complete(&t).is_err());
        t.record(1, write(1, 1));
        assert!(check_complete(&t).is_ok());
    }

    #[test]
    fn verdict_summarizes() {
        let mut t = Trace::new(DataSeq::from_indices([3, 1]));
        t.record(0, write(0, 3));
        let v = Verdict::of(&t);
        assert!(v.safe);
        assert_eq!(v.written, 1);
        assert_eq!(v.expected, 2);
        assert!(!v.is_complete());
        t.record(1, write(1, 1));
        assert!(Verdict::of(&t).is_complete());
    }

    #[test]
    fn empty_trace_is_safe_and_trivially_live_for_zero() {
        let t = Trace::new(DataSeq::new());
        assert!(check_safety(&t).is_ok());
        assert!(check_complete(&t).is_ok());
    }
}
