//! The observable event vocabulary of a run, and recorded traces.
//!
//! A *run* in the paper is an infinite sequence of global states; our
//! simulator records the finite prefix it executes as a [`Trace`] — a
//! time-stamped list of [`Event`]s plus the input sequence. Traces are the
//! common currency between the simulator, the requirement checkers, the
//! knowledge machinery (which extracts per-process *local histories* from
//! them) and the experiment harnesses.

use crate::alphabet::{RMsg, SMsg};
use crate::data::{DataItem, DataSeq};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Discrete time: the index of a global step.
pub type Step = u64;

/// One of the two processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessId {
    /// The sender `S`.
    Sender,
    /// The receiver `R`.
    Receiver,
}

impl ProcessId {
    /// The other processor (the paper's `p̄`).
    pub fn other(self) -> ProcessId {
        match self {
            ProcessId::Sender => ProcessId::Receiver,
            ProcessId::Receiver => ProcessId::Sender,
        }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessId::Sender => write!(f, "S"),
            ProcessId::Receiver => write!(f, "R"),
        }
    }
}

/// The kind of a transient state-corruption fault.
///
/// Corruption campaigns perturb *local state* — the volatile variables of
/// a processor, or the in-flight contents of the channel — rather than the
/// channel's delivery behaviour (which the scheduler vocabulary already
/// covers). Each firing carries a PRNG `draw` so the perturbation is a
/// deterministic function of `(state, draw)` and replays bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Scramble the sender's volatile state.
    ScrambleSender,
    /// Scramble the receiver's volatile state.
    ScrambleReceiver,
    /// Desynchronize the sender's sequence/progress counters.
    DesyncSender,
    /// Desynchronize the receiver's sequence/progress counters.
    DesyncReceiver,
    /// Forge a sender-alphabet message into the channel, addressed to `R`.
    InjectToR,
    /// Forge a receiver-alphabet message into the channel, addressed to `S`.
    InjectToS,
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorruptionKind::ScrambleSender => "scramble-S",
            CorruptionKind::ScrambleReceiver => "scramble-R",
            CorruptionKind::DesyncSender => "desync-S",
            CorruptionKind::DesyncReceiver => "desync-R",
            CorruptionKind::InjectToR => "inject→R",
            CorruptionKind::InjectToS => "inject→S",
        };
        write!(f, "{s}")
    }
}

/// An observable event of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// `S` put a message on the channel.
    SendS {
        /// The message sent.
        msg: SMsg,
    },
    /// `R` put a message on the channel.
    SendR {
        /// The message sent.
        msg: RMsg,
    },
    /// The channel delivered a sender message to `R`.
    DeliverToR {
        /// The delivered message.
        msg: SMsg,
    },
    /// The channel delivered a receiver message to `S`.
    DeliverToS {
        /// The delivered message.
        msg: RMsg,
    },
    /// `S` read the next item from the input tape.
    Read {
        /// The item read.
        item: DataItem,
        /// Its 0-based position on the tape.
        pos: usize,
    },
    /// `R` wrote an item to the output tape.
    Write {
        /// The item written.
        item: DataItem,
        /// Its 0-based position on the tape.
        pos: usize,
    },
    /// The channel irrevocably deleted an in-flight copy (deletion
    /// channels only; recorded for diagnosis and replay, invisible to both
    /// processors).
    ChannelDrop {
        /// Which processor the deleted copy was addressed to.
        to: ProcessId,
        /// Raw index of the deleted message within its alphabet.
        msg: u16,
    },
    /// The channel itself destroyed an in-flight copy without adversary
    /// involvement — a timed channel's TTL expiry. Kept distinct from
    /// [`Event::ChannelDrop`] because replay reconstructs `ChannelDrop`s
    /// as scripted adversary deletions, whereas expiries recur
    /// deterministically from the channel's own clock and must *not* be
    /// re-injected. Invisible to both processors.
    ChannelExpire {
        /// Which processor the expired copy was addressed to.
        to: ProcessId,
        /// Raw index of the expired message within its alphabet.
        msg: u16,
    },
    /// A transient state-corruption fault fired and *took effect* (a
    /// processor that does not implement the corruption hooks absorbs the
    /// command silently and records nothing). Like [`Event::ChannelDrop`],
    /// the event is an adversary action: replay reconstructs it into the
    /// scripted decision stream so a corrupted run replays bit-identically.
    /// Invisible to both processors — faults are not observations.
    Corruption {
        /// What was corrupted.
        kind: CorruptionKind,
        /// The seeded PRNG draw that parameterized the perturbation.
        draw: u64,
    },
}

impl Event {
    /// Whether the given processor *observes* this event (it appears in the
    /// processor's local history under the complete-history
    /// interpretation).
    pub fn visible_to(&self, p: ProcessId) -> bool {
        matches!(
            (self, p),
            (Event::SendS { .. }, ProcessId::Sender)
                | (Event::SendR { .. }, ProcessId::Receiver)
                | (Event::DeliverToR { .. }, ProcessId::Receiver)
                | (Event::DeliverToS { .. }, ProcessId::Sender)
                | (Event::Read { .. }, ProcessId::Sender)
                | (Event::Write { .. }, ProcessId::Receiver)
        )
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::SendS { msg } => write!(f, "S!{}", msg.0),
            Event::SendR { msg } => write!(f, "R!{}", msg.0),
            Event::DeliverToR { msg } => write!(f, "R?{}", msg.0),
            Event::DeliverToS { msg } => write!(f, "S?{}", msg.0),
            Event::Read { item, pos } => write!(f, "read[{pos}]={}", item.0),
            Event::Write { item, pos } => write!(f, "write[{pos}]={}", item.0),
            Event::ChannelDrop { to, msg } => write!(f, "drop {msg}→{to}"),
            Event::ChannelExpire { to, msg } => write!(f, "expire {msg}→{to}"),
            Event::Corruption { kind, draw } => write!(f, "corrupt {kind} (draw {draw})"),
        }
    }
}

/// The identity of one physical send within a single run.
///
/// Executors assign ids densely from `0` in send order, restarting at `0`
/// on every run (including pooled-world resets), so a `(seed, MsgId)` pair
/// names one injection reproducibly across re-runs of the same cell.
/// Channel provenance threads the id from the send through every later
/// delivery, adversary deletion or TTL expiry of that copy, which is what
/// lets a [`Probe`] reconstruct per-message lifecycles causally instead of
/// guessing from value-level aggregate counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId(pub u64);

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A provenance-carrying lifecycle event: the causal counterpart of
/// [`Event`], emitted alongside it to probes that opted in via
/// [`Probe::wants_provenance`].
///
/// Kept separate from [`Event`] on purpose: traces, replay scripts and all
/// committed experiment output serialize `Event`, and widening that enum
/// would silently change every witness file. `MsgEvent` is a parallel
/// stream that exists only while a provenance-hungry probe is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgEvent {
    /// A processor performed a physical send. On duplicating channels a
    /// re-send of an ever-sent value adds no new channel copy; the fresh id
    /// is then recorded as coalesced into the original carrier's id, and
    /// all future deliveries of that value fan out from the original.
    Sent {
        /// The fresh id of this physical send.
        id: MsgId,
        /// Which processor the message is addressed to.
        to: ProcessId,
        /// Raw index of the message within its alphabet.
        msg: u16,
        /// On duplicating channels: the id of the earlier send this one
        /// merged into (`None` for the first send of a value, and always
        /// `None` on consuming channels).
        coalesced_into: Option<MsgId>,
    },
    /// The channel delivered a copy. `id` is the originating send
    /// (`None` when the channel cannot attribute the copy).
    Delivered {
        /// The id of the send this copy originated from.
        id: Option<MsgId>,
        /// The processor it was delivered to.
        to: ProcessId,
        /// Raw index of the delivered message.
        msg: u16,
    },
    /// The adversary irrevocably deleted an in-flight copy.
    Dropped {
        /// The id of the deleted copy's originating send.
        id: Option<MsgId>,
        /// The processor the copy was addressed to.
        to: ProcessId,
        /// Raw index of the deleted message.
        msg: u16,
    },
    /// The channel itself destroyed a copy (TTL expiry on timed channels).
    Expired {
        /// The id of the expired copy's originating send.
        id: Option<MsgId>,
        /// The processor the copy was addressed to.
        to: ProcessId,
        /// Raw index of the expired message.
        msg: u16,
    },
}

impl MsgEvent {
    /// The provenance id the event carries, if the channel attributed one.
    pub fn id(&self) -> Option<MsgId> {
        match *self {
            MsgEvent::Sent { id, .. } => Some(id),
            MsgEvent::Delivered { id, .. }
            | MsgEvent::Dropped { id, .. }
            | MsgEvent::Expired { id, .. } => id,
        }
    }

    /// The direction of the copy: which processor it was addressed to.
    pub fn to(&self) -> ProcessId {
        match *self {
            MsgEvent::Sent { to, .. }
            | MsgEvent::Delivered { to, .. }
            | MsgEvent::Dropped { to, .. }
            | MsgEvent::Expired { to, .. } => to,
        }
    }

    /// Raw alphabet index of the message the event concerns.
    pub fn msg(&self) -> u16 {
        match *self {
            MsgEvent::Sent { msg, .. }
            | MsgEvent::Delivered { msg, .. }
            | MsgEvent::Dropped { msg, .. }
            | MsgEvent::Expired { msg, .. } => msg,
        }
    }
}

impl fmt::Display for MsgEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn opt(id: &Option<MsgId>) -> String {
            id.map_or_else(|| "#?".to_string(), |i| i.to_string())
        }
        match self {
            MsgEvent::Sent {
                id,
                to,
                msg,
                coalesced_into: Some(orig),
            } => write!(f, "sent {id} {msg}→{to} (coalesced into {orig})"),
            MsgEvent::Sent { id, to, msg, .. } => write!(f, "sent {id} {msg}→{to}"),
            MsgEvent::Delivered { id, to, msg } => {
                write!(f, "delivered {} {msg}→{to}", opt(id))
            }
            MsgEvent::Dropped { id, to, msg } => write!(f, "dropped {} {msg}→{to}", opt(id)),
            MsgEvent::Expired { id, to, msg } => write!(f, "expired {} {msg}→{to}", opt(id)),
        }
    }
}

/// An observer that executors feed every event of a run, *regardless* of
/// the active [`TraceMode`] — the streaming counterpart of a recorded
/// [`Trace`]. A probe computes whatever it wants online (statistics,
/// invariant checks, exports) without the executor allocating or retaining
/// events on its behalf.
///
/// The contract, which the executor upholds in every trace mode:
///
/// 1. [`Probe::on_run_start`] is called once before any event of a run —
///    at world assembly and again on every pooled reset — and must leave
///    the probe as if freshly constructed (probes are pooled along with
///    their worlds; implementations should retain buffer capacity).
/// 2. [`Probe::on_event`] is called for every event, in execution order,
///    with non-decreasing `step`s — the exact sequence a
///    [`TraceMode::Full`] trace would record.
/// 3. [`Probe::on_step_end`] is called once per global step after all of
///    that step's events, so the probe can track elapsed steps even when
///    the tail of a run produces no events.
pub trait Probe: fmt::Debug {
    /// A new run on `input` is starting; reset all derived state.
    fn on_run_start(&mut self, input: &DataSeq);

    /// `event` occurred at `step`.
    fn on_event(&mut self, step: Step, event: &Event);

    /// Global step `step` finished (steps are numbered from 0, so after
    /// this call the run spans `step + 1` steps).
    fn on_step_end(&mut self, step: Step);

    /// The probe as [`Any`](std::any::Any), so a harness that attached a
    /// concrete probe to a pooled world can recover it (e.g. to read a
    /// `MetricsProbe`'s statistics back out).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable [`Any`](std::any::Any) access; see [`Probe::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Whether this probe consumes [`MsgEvent`]s. Executors only switch
    /// channel provenance tracking on (and pay its bookkeeping cost) when
    /// at least one attached probe answers `true`; the default keeps
    /// existing probes zero-cost.
    fn wants_provenance(&self) -> bool {
        false
    }

    /// Whether this probe consumes plain [`Event`]s via
    /// [`Probe::on_event`]. Executors may skip the per-event dispatch for
    /// probes that answer `false` — the opt-out a provenance-only probe
    /// (one that lives entirely off [`MsgEvent`]s and
    /// [`Probe::on_step_end`]) uses to stay off the hot path. The answer
    /// must be constant for the probe's lifetime, like
    /// [`Probe::wants_provenance`]'s.
    fn wants_events(&self) -> bool {
        true
    }

    /// A provenance-carrying lifecycle event occurred at `step`. Called
    /// only when provenance tracking is active, interleaved with
    /// [`Probe::on_event`] in execution order: each `MsgEvent` arrives
    /// immediately after the [`Event`] it annotates. The default ignores
    /// it.
    fn on_msg_event(&mut self, step: Step, event: &MsgEvent) {
        let _ = (step, event);
    }
}

/// How much of a run an executor records into its [`Trace`].
///
/// Sweeps that only consume aggregate statistics pay for event
/// allocation they never read; this knob lets them opt out. The contract:
///
/// * [`TraceMode::Full`] — every event is recorded; the trace is a complete
///   replayable witness (the default, and the only mode under which traces
///   from different executors can be compared bit-for-bit).
/// * [`TraceMode::WritesOnly`] — only `Write` events are recorded; the
///   trace still supports output/write-step queries but is not replayable.
/// * [`TraceMode::Off`] — no events are recorded at all; the trace retains
///   the input sequence and the step count, nothing else.
///
/// The mode never changes *which* steps are executed — only what is
/// remembered about them, so statistics kept incrementally by the executor
/// are identical across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TraceMode {
    /// Record every event (replayable witness).
    #[default]
    Full,
    /// Record only `Write` events (output queries stay available).
    WritesOnly,
    /// Record no events (stats-only sweeps).
    Off,
}

impl TraceMode {
    /// Whether `event` should be recorded under this mode.
    pub fn records(self, event: &Event) -> bool {
        match self {
            TraceMode::Full => true,
            TraceMode::WritesOnly => matches!(event, Event::Write { .. }),
            TraceMode::Off => false,
        }
    }
}

/// A time-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// The global step at which the event occurred.
    pub step: Step,
    /// The event itself.
    pub event: Event,
}

/// One step of a processor's *local history*: everything it observed during
/// a single global step. Under the complete-history interpretation two
/// points are indistinguishable to a processor exactly when their local
/// histories are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LocalStep {
    /// Messages this processor received this step (raw indices; sender
    /// messages for `R`, receiver messages for `S`).
    pub received: Vec<u16>,
    /// Messages this processor sent this step (raw indices).
    pub sent: Vec<u16>,
    /// Tape activity: items read (for `S`) or written (for `R`) this step.
    pub tape: Vec<DataItem>,
}

/// The recorded finite prefix of a run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    input: DataSeq,
    events: Vec<TimedEvent>,
    steps: Step,
}

impl Trace {
    /// Creates an empty trace for the given input sequence.
    pub fn new(input: DataSeq) -> Self {
        Trace {
            input,
            events: Vec::new(),
            steps: 0,
        }
    }

    /// Rewinds the trace for a fresh run on `input`, as if newly created —
    /// but keeping the event buffer's allocation, and cloning `input` only
    /// when it differs from the current one. Sweep grids run many seeds
    /// per sequence, so the common rewind is allocation-free.
    pub fn reset(&mut self, input: &DataSeq) {
        if &self.input != input {
            self.input = input.clone();
        }
        self.events.clear();
        self.steps = 0;
    }

    /// The input sequence `X` of the run.
    pub fn input(&self) -> &DataSeq {
        &self.input
    }

    /// Records an event at a step.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `step` is earlier than an already
    /// recorded event — traces are append-only in time order.
    pub fn record(&mut self, step: Step, event: Event) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.step <= step),
            "events must be recorded in step order"
        );
        self.events.push(TimedEvent { step, event });
        self.steps = self.steps.max(step + 1);
    }

    /// Marks the trace as having run through `steps` global steps (even if
    /// the tail produced no events).
    pub fn set_steps(&mut self, steps: Step) {
        self.steps = self.steps.max(steps);
    }

    /// Number of global steps the trace spans.
    pub fn steps(&self) -> Step {
        self.steps
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Iterates over the events of one step.
    pub fn events_at(&self, step: Step) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter().filter(move |e| e.step == step)
    }

    /// The output tape contents after all recorded events (in write order).
    pub fn output(&self) -> DataSeq {
        self.output_at(self.steps)
    }

    /// The output tape contents strictly before `step`… i.e. including all
    /// writes with `event.step < step`.
    pub fn output_at(&self, step: Step) -> DataSeq {
        self.events
            .iter()
            .filter(|e| e.step < step)
            .filter_map(|e| match e.event {
                Event::Write { item, .. } => Some(item),
                _ => None,
            })
            .collect()
    }

    /// Steps at which each output position was written: `result[i]` is the
    /// step of `write[i]`.
    pub fn write_steps(&self) -> Vec<Step> {
        self.events
            .iter()
            .filter(|e| matches!(e.event, Event::Write { .. }))
            .map(|e| e.step)
            .collect()
    }

    /// Number of items the sender has read from the input tape.
    pub fn reads(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, Event::Read { .. }))
            .count()
    }

    /// Total messages sent by `S` (with multiplicity).
    pub fn sends_by_s(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, Event::SendS { .. }))
            .count()
    }

    /// Total messages sent by `R` (with multiplicity).
    pub fn sends_by_r(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, Event::SendR { .. }))
            .count()
    }

    /// Total deliveries to `R`.
    pub fn deliveries_to_r(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, Event::DeliverToR { .. }))
            .count()
    }

    /// Total deliveries to `S`.
    pub fn deliveries_to_s(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, Event::DeliverToS { .. }))
            .count()
    }

    /// The paper's `dlvrble_R(r, t)` for deletion channels: for each sender
    /// message, copies sent to `R` minus copies delivered to `R`, strictly
    /// before `step`.
    pub fn dlvrble_r_del(&self, step: Step, alphabet_size: u16) -> Vec<i64> {
        let mut v = vec![0i64; alphabet_size as usize];
        for e in self.events.iter().filter(|e| e.step < step) {
            match e.event {
                Event::SendS { msg } if (msg.0 as usize) < v.len() => v[msg.0 as usize] += 1,
                Event::DeliverToR { msg } if (msg.0 as usize) < v.len() => v[msg.0 as usize] -= 1,
                _ => {}
            }
        }
        v
    }

    /// The paper's `dlvrble_R(r, t)` for duplication channels: whether each
    /// sender message was sent at least once strictly before `step`.
    pub fn dlvrble_r_dup(&self, step: Step, alphabet_size: u16) -> Vec<bool> {
        let mut v = vec![false; alphabet_size as usize];
        for e in self.events.iter().filter(|e| e.step < step) {
            if let Event::SendS { msg } = e.event {
                if (msg.0 as usize) < v.len() {
                    v[msg.0 as usize] = true;
                }
            }
        }
        v
    }

    /// Extracts the local history of processor `p` up to (excluding) step
    /// `upto`: one [`LocalStep`] per global step.
    ///
    /// Two traces whose local histories for `R` agree at a step are
    /// indistinguishable to `R` at that point — the formal `~_R` relation of
    /// the paper under the complete-history interpretation.
    pub fn local_history(&self, p: ProcessId, upto: Step) -> Vec<LocalStep> {
        let upto = upto.min(self.steps);
        let mut hist = vec![LocalStep::default(); upto as usize];
        for e in self.events.iter().filter(|e| e.step < upto) {
            if !e.event.visible_to(p) {
                continue;
            }
            let slot = &mut hist[e.step as usize];
            match e.event {
                Event::SendS { msg } => slot.sent.push(msg.0),
                Event::SendR { msg } => slot.sent.push(msg.0),
                Event::DeliverToR { msg } => slot.received.push(msg.0),
                Event::DeliverToS { msg } => slot.received.push(msg.0),
                Event::Read { item, .. } => slot.tape.push(item),
                Event::Write { item, .. } => slot.tape.push(item),
                Event::ChannelDrop { .. }
                | Event::ChannelExpire { .. }
                | Event::Corruption { .. } => {}
            }
        }
        hist
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace over X = {} ({} steps)", self.input, self.steps)?;
        for e in &self.events {
            writeln!(f, "  t={:<4} {}", e.step, e.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(DataSeq::from_indices([1, 0]));
        t.record(
            0,
            Event::Read {
                item: DataItem(1),
                pos: 0,
            },
        );
        t.record(0, Event::SendS { msg: SMsg(1) });
        t.record(1, Event::DeliverToR { msg: SMsg(1) });
        t.record(
            1,
            Event::Write {
                item: DataItem(1),
                pos: 0,
            },
        );
        t.record(1, Event::SendR { msg: RMsg(1) });
        t.record(2, Event::DeliverToS { msg: RMsg(1) });
        t.record(
            2,
            Event::Read {
                item: DataItem(0),
                pos: 1,
            },
        );
        t.record(2, Event::SendS { msg: SMsg(0) });
        t.record(3, Event::DeliverToR { msg: SMsg(0) });
        t.record(
            3,
            Event::Write {
                item: DataItem(0),
                pos: 1,
            },
        );
        t.set_steps(4);
        t
    }

    #[test]
    fn process_other_is_involution() {
        assert_eq!(ProcessId::Sender.other(), ProcessId::Receiver);
        assert_eq!(ProcessId::Receiver.other(), ProcessId::Sender);
        assert_eq!(ProcessId::Sender.other().other(), ProcessId::Sender);
    }

    #[test]
    fn visibility_matrix() {
        use Event::*;
        use ProcessId::*;
        assert!(SendS { msg: SMsg(0) }.visible_to(Sender));
        assert!(!SendS { msg: SMsg(0) }.visible_to(Receiver));
        assert!(DeliverToR { msg: SMsg(0) }.visible_to(Receiver));
        assert!(!DeliverToR { msg: SMsg(0) }.visible_to(Sender));
        assert!(Read {
            item: DataItem(0),
            pos: 0
        }
        .visible_to(Sender));
        assert!(Write {
            item: DataItem(0),
            pos: 0
        }
        .visible_to(Receiver));
        assert!(!ChannelDrop {
            to: Receiver,
            msg: 0
        }
        .visible_to(Receiver));
        assert!(!ChannelDrop {
            to: Receiver,
            msg: 0
        }
        .visible_to(Sender));
    }

    #[test]
    fn output_reconstruction() {
        let t = sample_trace();
        assert_eq!(t.output(), DataSeq::from_indices([1, 0]));
        assert_eq!(t.output_at(0), DataSeq::new());
        assert_eq!(t.output_at(2), DataSeq::from_indices([1]));
        assert_eq!(t.output_at(4), DataSeq::from_indices([1, 0]));
    }

    #[test]
    fn counting_helpers() {
        let t = sample_trace();
        assert_eq!(t.reads(), 2);
        assert_eq!(t.sends_by_s(), 2);
        assert_eq!(t.sends_by_r(), 1);
        assert_eq!(t.deliveries_to_r(), 2);
        assert_eq!(t.deliveries_to_s(), 1);
        assert_eq!(t.write_steps(), vec![1, 3]);
    }

    #[test]
    fn dlvrble_vectors() {
        let t = sample_trace();
        // Before step 1: s1 sent once, not delivered.
        assert_eq!(t.dlvrble_r_del(1, 2), vec![0, 1]);
        // Before step 2: s1 delivered.
        assert_eq!(t.dlvrble_r_del(2, 2), vec![0, 0]);
        // Before step 3: s0 sent, pending.
        assert_eq!(t.dlvrble_r_del(3, 2), vec![1, 0]);
        assert_eq!(t.dlvrble_r_dup(1, 2), vec![false, true]);
        assert_eq!(t.dlvrble_r_dup(3, 2), vec![true, true]);
    }

    #[test]
    fn local_histories_respect_visibility() {
        let t = sample_trace();
        let hr = t.local_history(ProcessId::Receiver, 4);
        assert_eq!(hr.len(), 4);
        // Step 0: R sees nothing.
        assert_eq!(hr[0], LocalStep::default());
        // Step 1: R receives s1, writes d1, sends r1.
        assert_eq!(hr[1].received, vec![1]);
        assert_eq!(hr[1].sent, vec![1]);
        assert_eq!(hr[1].tape, vec![DataItem(1)]);
        let hs = t.local_history(ProcessId::Sender, 4);
        // Step 0: S reads and sends.
        assert_eq!(hs[0].tape, vec![DataItem(1)]);
        assert_eq!(hs[0].sent, vec![1]);
        assert!(hs[0].received.is_empty());
        // Step 2: S receives r1.
        assert_eq!(hs[2].received, vec![1]);
    }

    #[test]
    fn local_history_truncation() {
        let t = sample_trace();
        let h2 = t.local_history(ProcessId::Receiver, 2);
        let h4 = t.local_history(ProcessId::Receiver, 4);
        assert_eq!(h2[..], h4[..2]);
        // Requesting beyond the trace clamps.
        let h9 = t.local_history(ProcessId::Receiver, 9);
        assert_eq!(h9.len(), 4);
    }

    #[test]
    fn trace_mode_records_matrix() {
        let write = Event::Write {
            item: DataItem(0),
            pos: 0,
        };
        let send = Event::SendS { msg: SMsg(0) };
        assert!(TraceMode::Full.records(&write));
        assert!(TraceMode::Full.records(&send));
        assert!(TraceMode::WritesOnly.records(&write));
        assert!(!TraceMode::WritesOnly.records(&send));
        assert!(!TraceMode::Off.records(&write));
        assert!(!TraceMode::Off.records(&send));
        assert_eq!(TraceMode::default(), TraceMode::Full);
        let json = serde_json::to_string(&TraceMode::Off).unwrap();
        let back: TraceMode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TraceMode::Off);
    }

    #[test]
    fn display_is_informative() {
        let t = sample_trace();
        let s = t.to_string();
        assert!(s.contains("write[0]=1"));
        assert!(s.contains("S!1"));
    }

    #[test]
    fn expiry_events_are_invisible_and_round_trip() {
        let e = Event::ChannelExpire {
            to: ProcessId::Receiver,
            msg: 2,
        };
        assert!(!e.visible_to(ProcessId::Sender));
        assert!(!e.visible_to(ProcessId::Receiver));
        assert_eq!(e.to_string(), "expire 2→R");
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        // Full traces record expiries; writes-only and off traces do not.
        assert!(TraceMode::Full.records(&e));
        assert!(!TraceMode::WritesOnly.records(&e));
        assert!(!TraceMode::Off.records(&e));
    }

    #[test]
    fn corruption_events_are_invisible_and_round_trip() {
        for kind in [
            CorruptionKind::ScrambleSender,
            CorruptionKind::ScrambleReceiver,
            CorruptionKind::DesyncSender,
            CorruptionKind::DesyncReceiver,
            CorruptionKind::InjectToR,
            CorruptionKind::InjectToS,
        ] {
            let e = Event::Corruption { kind, draw: 42 };
            assert!(!e.visible_to(ProcessId::Sender));
            assert!(!e.visible_to(ProcessId::Receiver));
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
            // Full traces record corruptions (they are part of the
            // replayable witness); stats-only traces do not.
            assert!(TraceMode::Full.records(&e));
            assert!(!TraceMode::WritesOnly.records(&e));
            assert!(!TraceMode::Off.records(&e));
        }
        // Display strings are distinct per kind.
        let mut shown: Vec<String> = [
            CorruptionKind::ScrambleSender,
            CorruptionKind::ScrambleReceiver,
            CorruptionKind::DesyncSender,
            CorruptionKind::DesyncReceiver,
            CorruptionKind::InjectToR,
            CorruptionKind::InjectToS,
        ]
        .iter()
        .map(|k| k.to_string())
        .collect();
        shown.sort();
        shown.dedup();
        assert_eq!(shown.len(), 6);
    }

    /// A minimal probe that counts its callbacks, exercising the trait's
    /// object-safety and the `as_any` recovery path.
    #[derive(Debug, Default)]
    struct CountingProbe {
        starts: usize,
        events: usize,
        steps: Step,
    }

    impl Probe for CountingProbe {
        fn on_run_start(&mut self, _input: &DataSeq) {
            self.starts += 1;
            self.events = 0;
            self.steps = 0;
        }
        fn on_event(&mut self, _step: Step, _event: &Event) {
            self.events += 1;
        }
        fn on_step_end(&mut self, step: Step) {
            self.steps = step + 1;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn msg_ids_order_and_display() {
        assert!(MsgId(0) < MsgId(1));
        assert_eq!(MsgId(17).to_string(), "#17");
        let json = serde_json::to_string(&MsgId(3)).unwrap();
        let back: MsgId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, MsgId(3));
    }

    #[test]
    fn msg_event_accessors_and_round_trip() {
        let sent = MsgEvent::Sent {
            id: MsgId(4),
            to: ProcessId::Receiver,
            msg: 2,
            coalesced_into: Some(MsgId(1)),
        };
        assert_eq!(sent.id(), Some(MsgId(4)));
        assert_eq!(sent.to(), ProcessId::Receiver);
        assert_eq!(sent.msg(), 2);
        assert!(sent.to_string().contains("coalesced into #1"));
        let dropped = MsgEvent::Dropped {
            id: None,
            to: ProcessId::Sender,
            msg: 0,
        };
        assert_eq!(dropped.id(), None);
        assert!(dropped.to_string().contains("#?"));
        for e in [
            sent,
            dropped,
            MsgEvent::Delivered {
                id: Some(MsgId(9)),
                to: ProcessId::Receiver,
                msg: 5,
            },
            MsgEvent::Expired {
                id: Some(MsgId(0)),
                to: ProcessId::Sender,
                msg: 1,
            },
        ] {
            let json = serde_json::to_string(&e).unwrap();
            let back: MsgEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn probe_provenance_hooks_default_to_off() {
        // CountingProbe does not override the provenance hooks: the
        // defaults must report "no provenance wanted" and ignore events.
        let mut p = CountingProbe::default();
        assert!(!Probe::wants_provenance(&p));
        p.on_msg_event(
            0,
            &MsgEvent::Sent {
                id: MsgId(0),
                to: ProcessId::Receiver,
                msg: 0,
                coalesced_into: None,
            },
        );
        assert_eq!(p.events, 0);
    }

    #[test]
    fn probe_trait_is_object_safe_and_recoverable() {
        let mut boxed: Box<dyn Probe> = Box::new(CountingProbe::default());
        boxed.on_run_start(&DataSeq::from_indices([1, 0]));
        boxed.on_event(0, &Event::SendS { msg: SMsg(1) });
        boxed.on_step_end(0);
        boxed.on_step_end(1);
        let concrete = boxed
            .as_any()
            .downcast_ref::<CountingProbe>()
            .expect("probe recovers its concrete type");
        assert_eq!(concrete.starts, 1);
        assert_eq!(concrete.events, 1);
        assert_eq!(concrete.steps, 2);
        boxed
            .as_any_mut()
            .downcast_mut::<CountingProbe>()
            .expect("mutable recovery works")
            .events = 0;
    }
}
