//! Finite message alphabets and typed messages.
//!
//! The paper denotes the sender's and receiver's message alphabets by `M^S`
//! and `M^R`. Their finiteness is the whole point of the bounds, so we make
//! the alphabet an explicit value and the two directions distinct types:
//! a sender message [`SMsg`] can never be confused with a receiver message
//! [`RMsg`] at compile time.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A message sent by the sender `S` (an index into `M^S`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SMsg(pub u16);

impl fmt::Display for SMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u16> for SMsg {
    fn from(v: u16) -> Self {
        SMsg(v)
    }
}

/// A message sent by the receiver `R` (an index into `M^R`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RMsg(pub u16);

impl fmt::Display for RMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u16> for RMsg {
    fn from(v: u16) -> Self {
        RMsg(v)
    }
}

/// A finite message alphabet of a given size.
///
/// ```
/// use stp_core::alphabet::{Alphabet, SMsg};
///
/// let m = Alphabet::new(4);
/// assert_eq!(m.size(), 4);
/// assert!(m.contains(3));
/// assert!(!m.contains(4));
/// let all: Vec<SMsg> = m.sender_msgs().collect();
/// assert_eq!(all.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Alphabet {
    size: u16,
}

impl Alphabet {
    /// Creates an alphabet with `size` distinct messages.
    pub fn new(size: u16) -> Self {
        Alphabet { size }
    }

    /// Number of messages in the alphabet (the paper's `m` when this is
    /// `M^S`).
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Whether the raw index `msg` is a member.
    pub fn contains(&self, msg: u16) -> bool {
        msg < self.size
    }

    /// All sender messages of this alphabet, in index order.
    pub fn sender_msgs(&self) -> impl Iterator<Item = SMsg> + '_ {
        (0..self.size).map(SMsg)
    }

    /// All receiver messages of this alphabet, in index order.
    pub fn receiver_msgs(&self) -> impl Iterator<Item = RMsg> + '_ {
        (0..self.size).map(RMsg)
    }

    /// Validates that a sender message belongs to this alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MsgOutOfAlphabet`] when it does not.
    pub fn validate_s(&self, msg: SMsg) -> Result<()> {
        if self.contains(msg.0) {
            Ok(())
        } else {
            Err(Error::MsgOutOfAlphabet {
                msg: msg.0 as u32,
                alphabet: self.size as u32,
            })
        }
    }

    /// Validates that a receiver message belongs to this alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MsgOutOfAlphabet`] when it does not.
    pub fn validate_r(&self, msg: RMsg) -> Result<()> {
        if self.contains(msg.0) {
            Ok(())
        } else {
            Err(Error::MsgOutOfAlphabet {
                msg: msg.0 as u32,
                alphabet: self.size as u32,
            })
        }
    }
}

impl Default for Alphabet {
    fn default() -> Self {
        Alphabet::new(2)
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M[{}]", self.size)
    }
}

/// A sequence of sender messages — the image of an input sequence under an
/// encoding `μ`, or the send history of a run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SMsgSeq {
    msgs: Vec<SMsg>,
}

impl SMsgSeq {
    /// Creates an empty message sequence.
    pub fn new() -> Self {
        SMsgSeq { msgs: Vec::new() }
    }

    /// Creates a message sequence from raw indices.
    pub fn from_indices<I: IntoIterator<Item = u16>>(indices: I) -> Self {
        SMsgSeq {
            msgs: indices.into_iter().map(SMsg).collect(),
        }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// The underlying messages.
    pub fn msgs(&self) -> &[SMsg] {
        &self.msgs
    }

    /// Appends a message.
    pub fn push(&mut self, msg: SMsg) {
        self.msgs.push(msg);
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &SMsgSeq) -> bool {
        self.len() <= other.len() && self.msgs[..] == other.msgs[..self.len()]
    }

    /// Whether the sequence never repeats a message.
    ///
    /// Repetition-freeness is the load-bearing property of the paper's tight
    /// protocols: once a message has been sent over a duplicating channel,
    /// sending it again conveys nothing.
    pub fn is_repetition_free(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.msgs.len());
        self.msgs.iter().all(|m| seen.insert(*m))
    }

    /// Validates membership of every message in `alphabet` and
    /// repetition-freeness.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MsgOutOfAlphabet`] or [`Error::RepetitionInSequence`].
    pub fn validate_repetition_free(&self, alphabet: Alphabet) -> Result<()> {
        let mut seen = std::collections::HashSet::with_capacity(self.msgs.len());
        for (i, m) in self.msgs.iter().enumerate() {
            alphabet.validate_s(*m)?;
            if !seen.insert(*m) {
                return Err(Error::RepetitionInSequence { position: i });
            }
        }
        Ok(())
    }

    /// Iterates over the messages.
    pub fn iter(&self) -> std::slice::Iter<'_, SMsg> {
        self.msgs.iter()
    }
}

impl FromIterator<SMsg> for SMsgSeq {
    fn from_iter<I: IntoIterator<Item = SMsg>>(iter: I) -> Self {
        SMsgSeq {
            msgs: iter.into_iter().collect(),
        }
    }
}

impl From<Vec<SMsg>> for SMsgSeq {
    fn from(msgs: Vec<SMsg>) -> Self {
        SMsgSeq { msgs }
    }
}

impl fmt::Display for SMsgSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, m) in self.msgs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", m.0)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_membership() {
        let a = Alphabet::new(3);
        assert!(a.contains(0));
        assert!(a.contains(2));
        assert!(!a.contains(3));
        assert_eq!(a.sender_msgs().count(), 3);
        assert_eq!(a.receiver_msgs().count(), 3);
    }

    #[test]
    fn validation_errors() {
        let a = Alphabet::new(2);
        assert!(a.validate_s(SMsg(1)).is_ok());
        assert_eq!(
            a.validate_s(SMsg(2)),
            Err(Error::MsgOutOfAlphabet {
                msg: 2,
                alphabet: 2
            })
        );
        assert!(a.validate_r(RMsg(0)).is_ok());
        assert!(a.validate_r(RMsg(9)).is_err());
    }

    #[test]
    fn msg_seq_prefix_and_repetition() {
        let a = SMsgSeq::from_indices([0, 1]);
        let b = SMsgSeq::from_indices([0, 1, 2]);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(b.is_repetition_free());
        assert!(!SMsgSeq::from_indices([0, 1, 0]).is_repetition_free());
    }

    #[test]
    fn validate_repetition_free_reports_position() {
        let alpha = Alphabet::new(4);
        let seq = SMsgSeq::from_indices([3, 1, 3]);
        assert_eq!(
            seq.validate_repetition_free(alpha),
            Err(Error::RepetitionInSequence { position: 2 })
        );
        let out = SMsgSeq::from_indices([0, 4]);
        assert!(matches!(
            out.validate_repetition_free(alpha),
            Err(Error::MsgOutOfAlphabet { msg: 4, .. })
        ));
        assert!(SMsgSeq::from_indices([2, 0, 1])
            .validate_repetition_free(alpha)
            .is_ok());
    }

    #[test]
    fn typed_messages_are_distinct_types() {
        // Compile-time property; the test body just exercises Display.
        assert_eq!(SMsg(1).to_string(), "s1");
        assert_eq!(RMsg(1).to_string(), "r1");
    }

    #[test]
    fn empty_sequence_properties() {
        let e = SMsgSeq::new();
        assert!(e.is_empty());
        assert!(e.is_repetition_free());
        assert!(e.is_prefix_of(&SMsgSeq::from_indices([0])));
        assert_eq!(e.to_string(), "⟨⟩");
    }
}
