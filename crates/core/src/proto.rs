//! Protocol traits: deterministic sender/receiver state machines.
//!
//! A protocol in the paper is a deterministic algorithm per processor; all
//! nondeterminism lives in the *environment* (the channel). We model a
//! processor as a Mealy machine driven by three kinds of events — `Init`
//! (once, at step 0), `Deliver` (a message arrived), and `Tick` (a step in
//! which nothing was delivered; Property 1(b)(i) guarantees such extensions
//! exist) — producing messages to send and, for the receiver, items to
//! write.
//!
//! Determinism plus the seeded adversaries in `stp-sim` make every run
//! replayable, and the `fingerprint` hook lets the verifier deduplicate
//! protocol states during exhaustive run-tree exploration.

use crate::alphabet::{Alphabet, RMsg, SMsg};
use crate::data::{DataItem, DataSeq};
use crate::error::{Error, Result};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The sender's read-only input tape with a read cursor.
///
/// Uniform protocols must consume it strictly left-to-right via
/// [`InputTape::read`]; non-uniform protocols (the paper allows `P_{S,X}`
/// to depend on the whole sequence) may inspect [`InputTape::full`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputTape {
    seq: DataSeq,
    cursor: usize,
}

impl InputTape {
    /// Creates a tape holding `seq` with the cursor at the start.
    pub fn new(seq: DataSeq) -> Self {
        InputTape { seq, cursor: 0 }
    }

    /// Reads (and consumes) the next item.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TapeExhausted`] past the end of the tape.
    pub fn read(&mut self) -> Result<DataItem> {
        match self.seq.get(self.cursor) {
            Some(item) => {
                self.cursor += 1;
                Ok(item)
            }
            None => Err(Error::TapeExhausted {
                len: self.seq.len(),
            }),
        }
    }

    /// Peeks at the next item without consuming it.
    pub fn peek(&self) -> Option<DataItem> {
        self.seq.get(self.cursor)
    }

    /// Number of items read so far.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Whether every item has been read.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.seq.len()
    }

    /// Number of items remaining.
    pub fn remaining(&self) -> usize {
        self.seq.len() - self.cursor
    }

    /// The entire tape contents (non-uniform protocols only).
    pub fn full(&self) -> &DataSeq {
        &self.seq
    }
}

/// An event delivered to the sender at the start of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderEvent {
    /// The first step of the run.
    Init,
    /// A step with no incoming message.
    Tick,
    /// A receiver message arrived.
    Deliver(RMsg),
}

/// What the sender does in one step.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SenderOutput {
    /// Messages to put on the channel this step.
    pub send: Vec<SMsg>,
}

impl SenderOutput {
    /// An idle step.
    pub fn idle() -> Self {
        SenderOutput::default()
    }

    /// A step that sends a single message.
    pub fn send_one(msg: SMsg) -> Self {
        SenderOutput { send: vec![msg] }
    }
}

/// An event delivered to the receiver at the start of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverEvent {
    /// The first step of the run.
    Init,
    /// A step with no incoming message.
    Tick,
    /// A sender message arrived.
    Deliver(SMsg),
}

/// What the receiver does in one step.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReceiverOutput {
    /// Messages to put on the channel this step.
    pub send: Vec<RMsg>,
    /// Items to append to the output tape this step, in order.
    pub write: Vec<DataItem>,
}

impl ReceiverOutput {
    /// An idle step.
    pub fn idle() -> Self {
        ReceiverOutput::default()
    }

    /// A step that sends a single message and writes nothing.
    pub fn send_one(msg: RMsg) -> Self {
        ReceiverOutput {
            send: vec![msg],
            write: Vec::new(),
        }
    }
}

/// A deterministic sender protocol.
///
/// Implementations own their [`InputTape`]; the harness observes tape
/// progress through [`Sender::reads`] to record `Read` events.
pub trait Sender: fmt::Debug {
    /// The sender's message alphabet `M^S` (its size is the paper's `m`).
    fn alphabet(&self) -> Alphabet;

    /// Processes one event and returns the step's actions.
    fn on_event(&mut self, ev: SenderEvent) -> SenderOutput;

    /// Number of input items read so far.
    fn reads(&self) -> usize;

    /// Whether the sender believes the whole input has been transmitted and
    /// acknowledged (used to terminate finite experiments; a conservative
    /// `false` is always sound).
    fn is_done(&self) -> bool {
        false
    }

    /// A transient fault scrambles the sender's volatile state. The
    /// perturbation must be a deterministic pure function of the current
    /// state and `draw` (so corrupted runs replay bit-identically), and
    /// must leave construction-time configuration (domain size, policies)
    /// untouched — only run state is volatile. Returns `true` iff the
    /// corruption took effect; the default opts out (`false`), so existing
    /// protocols are untouched until they implement the hook.
    fn scramble(&mut self, draw: u64) -> bool {
        let _ = draw;
        false
    }

    /// A transient fault desynchronizes the sender's sequence/progress
    /// counters — a narrower perturbation than [`Sender::scramble`], for
    /// campaigns that target bookkeeping rather than whole-state chaos.
    /// Same determinism contract and opt-in default as `scramble`.
    fn desync(&mut self, draw: u64) -> bool {
        let _ = draw;
        false
    }

    /// Rewinds the sender to its initial state for a fresh run on `input`,
    /// exactly as if it had been newly constructed for that sequence.
    /// Construction-time configuration (domain size, policies, timeouts)
    /// is preserved; all run state (tape cursor, outstanding messages,
    /// phase, completion latches) is discarded.
    ///
    /// Pooled executors call this between runs instead of re-boxing the
    /// protocol, so implementations must leave no residue.
    fn reset(&mut self, input: &DataSeq);

    /// Clones the protocol state behind a box (object-safe `Clone`).
    fn box_clone(&self) -> Box<dyn Sender>;

    /// A hash of the local state, used by the verifier to deduplicate
    /// explored states. The default hashes the `Debug` rendering, which is
    /// sound as long as `Debug` faithfully reflects the state (derived
    /// `Debug` does).
    fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{self:?}").hash(&mut h);
        h.finish()
    }
}

impl Clone for Box<dyn Sender> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A deterministic receiver protocol.
pub trait Receiver: fmt::Debug {
    /// The receiver's message alphabet `M^R`.
    fn alphabet(&self) -> Alphabet;

    /// Processes one event and returns the step's actions.
    fn on_event(&mut self, ev: ReceiverEvent) -> ReceiverOutput;

    /// A transient fault scrambles the receiver's volatile state. See
    /// [`Sender::scramble`] for the determinism contract; the default opts
    /// out.
    fn scramble(&mut self, draw: u64) -> bool {
        let _ = draw;
        false
    }

    /// A transient fault desynchronizes the receiver's counters. See
    /// [`Sender::desync`]; the default opts out.
    fn desync(&mut self, draw: u64) -> bool {
        let _ = draw;
        false
    }

    /// Rewinds the receiver to its initial state for a fresh run, exactly
    /// as if newly constructed (the receiver is input-independent, so no
    /// argument is needed). See [`Sender::reset`] for the contract.
    fn reset(&mut self);

    /// Clones the protocol state behind a box (object-safe `Clone`).
    fn box_clone(&self) -> Box<dyn Receiver>;

    /// A hash of the local state (see [`Sender::fingerprint`]).
    fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{self:?}").hash(&mut h);
        h.finish()
    }
}

impl Clone for Box<dyn Receiver> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A trivial sender that never sends anything — the degenerate protocol for
/// `X = {⟨⟩}` (one allowable sequence needs no communication). Also handy
/// as a stub in tests.
#[derive(Debug, Clone, Default)]
pub struct SilentSender;

impl Sender for SilentSender {
    fn alphabet(&self) -> Alphabet {
        Alphabet::new(0)
    }
    fn on_event(&mut self, _ev: SenderEvent) -> SenderOutput {
        SenderOutput::idle()
    }
    fn reads(&self) -> usize {
        0
    }
    fn is_done(&self) -> bool {
        true
    }
    fn reset(&mut self, _input: &DataSeq) {}
    fn box_clone(&self) -> Box<dyn Sender> {
        Box::new(self.clone())
    }
}

/// The receiver counterpart of [`SilentSender`].
#[derive(Debug, Clone, Default)]
pub struct SilentReceiver;

impl Receiver for SilentReceiver {
    fn alphabet(&self) -> Alphabet {
        Alphabet::new(0)
    }
    fn on_event(&mut self, _ev: ReceiverEvent) -> ReceiverOutput {
        ReceiverOutput::idle()
    }
    fn reset(&mut self) {}
    fn box_clone(&self) -> Box<dyn Receiver> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_reads_in_order_then_errors() {
        let mut t = InputTape::new(DataSeq::from_indices([4, 5]));
        assert_eq!(t.peek(), Some(DataItem(4)));
        assert_eq!(t.read().unwrap(), DataItem(4));
        assert_eq!(t.position(), 1);
        assert_eq!(t.remaining(), 1);
        assert_eq!(t.read().unwrap(), DataItem(5));
        assert!(t.is_exhausted());
        assert_eq!(t.read(), Err(Error::TapeExhausted { len: 2 }));
        assert_eq!(t.peek(), None);
    }

    #[test]
    fn tape_full_view() {
        let t = InputTape::new(DataSeq::from_indices([1, 2, 3]));
        assert_eq!(t.full(), &DataSeq::from_indices([1, 2, 3]));
    }

    #[test]
    fn corruption_hooks_default_to_opted_out() {
        let mut s = SilentSender;
        assert!(!s.scramble(7));
        assert!(!Sender::desync(&mut s, 7));
        let mut r = SilentReceiver;
        assert!(!r.scramble(7));
        assert!(!Receiver::desync(&mut r, 7));
    }

    #[test]
    fn silent_processes_do_nothing() {
        let mut s = SilentSender;
        assert_eq!(s.on_event(SenderEvent::Init), SenderOutput::idle());
        assert_eq!(s.on_event(SenderEvent::Tick), SenderOutput::idle());
        assert!(s.is_done());
        assert_eq!(s.reads(), 0);
        let mut r = SilentReceiver;
        assert_eq!(r.on_event(ReceiverEvent::Init), ReceiverOutput::idle());
        assert_eq!(
            r.on_event(ReceiverEvent::Deliver(SMsg(0))),
            ReceiverOutput::idle()
        );
    }

    #[test]
    fn boxed_clone_preserves_behavior() {
        let s: Box<dyn Sender> = Box::new(SilentSender);
        let mut c = s.clone();
        assert_eq!(c.on_event(SenderEvent::Tick), SenderOutput::idle());
        let r: Box<dyn Receiver> = Box::new(SilentReceiver);
        let mut rc = r.clone();
        assert_eq!(rc.on_event(ReceiverEvent::Tick), ReceiverOutput::idle());
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        #[derive(Debug, Clone)]
        struct Counting(u32);
        impl Sender for Counting {
            fn alphabet(&self) -> Alphabet {
                Alphabet::new(1)
            }
            fn on_event(&mut self, _ev: SenderEvent) -> SenderOutput {
                self.0 += 1;
                SenderOutput::idle()
            }
            fn reads(&self) -> usize {
                0
            }
            fn reset(&mut self, _input: &DataSeq) {
                self.0 = 0;
            }
            fn box_clone(&self) -> Box<dyn Sender> {
                Box::new(self.clone())
            }
        }
        let mut a = Counting(0);
        let b = Counting(0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.on_event(SenderEvent::Tick);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn output_constructors() {
        assert_eq!(SenderOutput::send_one(SMsg(3)).send, vec![SMsg(3)]);
        let r = ReceiverOutput::send_one(RMsg(1));
        assert_eq!(r.send, vec![RMsg(1)]);
        assert!(r.write.is_empty());
    }
}
