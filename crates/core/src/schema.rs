//! Shared wire-schema types for the certificate subsystem.
//!
//! The verification gate spans three crates: `stp-verify` emits versioned
//! witnesses, its independent checker replays them through `stp-sim`, and
//! `stp-bench`'s `conformance` bin records one verdict per grid cell into
//! a JSONL ledger riding the telemetry sink. The types every layer must
//! agree on — the schema version, the verdict vocabulary and the ledger
//! record — live here, at the bottom of the dependency graph, so no layer
//! can drift from another without failing to compile.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Version of the certificate wire schema. Bump on any incompatible
/// change to a witness type; the checker rejects certificates whose
/// embedded version differs, so stale artifacts fail loudly instead of
/// being misinterpreted.
pub const CERT_SCHEMA_VERSION: u32 = 1;

/// What a conformance-grid cell concluded about its protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The family solves its cell: an achievability witness (capacity
    /// embedding or bounded recovery) was emitted and checked.
    Achieved,
    /// The family was refuted: an impossibility witness (fair cycle,
    /// indistinguishability conflict or bounded confusion) was emitted
    /// and checked.
    Refuted,
    /// The search returned nothing — neither a refutation nor an
    /// achievability witness. Always unexpected in the grid.
    Indeterminate,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Achieved => "achieved",
            Verdict::Refuted => "refuted",
            Verdict::Indeterminate => "indeterminate",
        })
    }
}

/// One line of the conformance ledger: a grid cell, the verdict the
/// searches produced, the certificate backing it, and the independent
/// checker's judgement of that certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceVerdict {
    /// The certificate schema version the cell's artifact was written at.
    pub schema_version: u32,
    /// Sender alphabet size `m` of the cell.
    pub m: u16,
    /// Family under test (`"tight"` at capacity, `"over"` above it).
    pub family: String,
    /// Channel model of the cell (`"dup"`, `"del"`, `"timed"`).
    pub channel: String,
    /// The verdict the theorems predict for this cell.
    pub expected: Verdict,
    /// The verdict the searches actually produced.
    pub verdict: Verdict,
    /// Kind of the emitted certificate (`"fair-cycle"`, `"conflict"`,
    /// `"capacity"`, `"recovery"`), or empty when none was produced.
    #[serde(default)]
    pub cert_kind: String,
    /// File the certificate was written to, relative to the ledger.
    #[serde(default)]
    pub cert_file: String,
    /// The independent checker's judgement: `"accepted"`, or
    /// `"rejected: <error>"`.
    pub checker: String,
    /// Whether the cell conforms: verdict matches expectation *and* the
    /// checker accepted the certificate.
    pub ok: bool,
}

impl ConformanceVerdict {
    /// Whether the checker accepted the cell's certificate.
    pub fn checker_accepted(&self) -> bool {
        self.checker == "accepted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_display_lowercase() {
        assert_eq!(Verdict::Achieved.to_string(), "achieved");
        assert_eq!(Verdict::Refuted.to_string(), "refuted");
        assert_eq!(Verdict::Indeterminate.to_string(), "indeterminate");
    }

    #[test]
    fn ledger_records_round_trip() {
        let v = ConformanceVerdict {
            schema_version: CERT_SCHEMA_VERSION,
            m: 2,
            family: "over".into(),
            channel: "dup".into(),
            expected: Verdict::Refuted,
            verdict: Verdict::Refuted,
            cert_kind: "conflict".into(),
            cert_file: "m2-over-dup.json".into(),
            checker: "accepted".into(),
            ok: true,
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: ConformanceVerdict = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        assert!(back.checker_accepted());
    }
}
