//! Families of allowable input sequences (`X`) and their prefix structure.
//!
//! The paper's bounds are statements about the *size* of `X`; its proofs
//! additionally use the prefix structure: the deletion-channel argument
//! fixes `β`, the least prefix length that uniquely identifies every
//! sequence in a finite subfamily, and the achievability constructions
//! embed the prefix tree of `X` into the tree of repetition-free message
//! sequences.

use crate::data::{DataItem, DataSeq};
use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A finite family `X` of allowable input sequences, with distinctness
/// enforced.
///
/// ```
/// use stp_core::data::DataSeq;
/// use stp_core::sequence::SequenceFamily;
///
/// let x = SequenceFamily::from_seqs([
///     DataSeq::from_indices([0]),
///     DataSeq::from_indices([1]),
/// ]).unwrap();
/// assert_eq!(x.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SequenceFamily {
    seqs: Vec<DataSeq>,
}

impl SequenceFamily {
    /// Creates an empty family.
    pub fn new() -> Self {
        SequenceFamily { seqs: Vec::new() }
    }

    /// Creates a family from an iterator of sequences.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EncodingNotInjective`] (reusing the collision error)
    /// if the same sequence appears twice.
    pub fn from_seqs<I: IntoIterator<Item = DataSeq>>(seqs: I) -> Result<Self> {
        let seqs: Vec<DataSeq> = seqs.into_iter().collect();
        let mut seen: BTreeMap<&DataSeq, usize> = BTreeMap::new();
        for (i, s) in seqs.iter().enumerate() {
            if let Some(&first) = seen.get(s) {
                return Err(Error::EncodingNotInjective { first, second: i });
            }
            seen.insert(s, i);
        }
        Ok(SequenceFamily { seqs })
    }

    /// The family of *all* sequences over a domain of size `d` with length
    /// at most `max_len` (including the empty sequence): `Σ d^k` sequences.
    pub fn all_up_to(d: u16, max_len: usize) -> Self {
        let mut seqs = vec![DataSeq::new()];
        let mut frontier = vec![DataSeq::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for s in &frontier {
                for v in 0..d {
                    let mut t = s.clone();
                    t.push(DataItem(v));
                    seqs.push(t.clone());
                    next.push(t);
                }
            }
            frontier = next;
        }
        SequenceFamily { seqs }
    }

    /// The family of all **repetition-free** sequences over a domain of
    /// size `d` — exactly the family the paper's tight protocols transmit;
    /// its size is `α(d)`.
    pub fn repetition_free(d: u16) -> Self {
        let seqs = crate::alpha::RepetitionFreeSeqs::new(d)
            .map(|ms| DataSeq::from_indices(ms.msgs().iter().map(|m| m.0)))
            .collect();
        SequenceFamily { seqs }
    }

    /// Number of sequences in the family.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// The sequences, in insertion order.
    pub fn seqs(&self) -> &[DataSeq] {
        &self.seqs
    }

    /// The sequence at `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<&DataSeq> {
        self.seqs.get(idx)
    }

    /// Whether `seq` is a member.
    pub fn contains(&self, seq: &DataSeq) -> bool {
        self.seqs.iter().any(|s| s == seq)
    }

    /// Iterates over the sequences.
    pub fn iter(&self) -> std::slice::Iter<'_, DataSeq> {
        self.seqs.iter()
    }

    /// Whether the family is prefix-closed (every prefix of a member is a
    /// member).
    pub fn is_prefix_closed(&self) -> bool {
        self.seqs
            .iter()
            .all(|s| (0..s.len()).all(|k| self.contains(&s.prefix(k))))
    }

    /// The longest sequence length in the family (0 for an empty family).
    pub fn max_len(&self) -> usize {
        self.seqs.iter().map(DataSeq::len).max().unwrap_or(0)
    }

    /// The paper's `β`: the least `i` such that every member is uniquely
    /// identified by its `i`-prefix (members shorter than `i` count as their
    /// own prefix). Used to budget the deletion-channel adversary.
    ///
    /// Returns `None` for an empty family (any `i` works, vacuously) — by
    /// convention we return `Some(0)` for families of size ≤ 1.
    ///
    /// ```
    /// use stp_core::data::DataSeq;
    /// use stp_core::sequence::SequenceFamily;
    ///
    /// let x = SequenceFamily::from_seqs([
    ///     DataSeq::from_indices([0, 0]),
    ///     DataSeq::from_indices([0, 1]),
    /// ]).unwrap();
    /// assert_eq!(x.identifying_prefix_len(), Some(2));
    /// ```
    pub fn identifying_prefix_len(&self) -> Option<usize> {
        if self.seqs.len() <= 1 {
            return Some(0);
        }
        let max = self.max_len();
        'outer: for i in 0..=max {
            let mut seen: BTreeMap<DataSeq, ()> = BTreeMap::new();
            for s in &self.seqs {
                let p = s.prefix(i.min(s.len()));
                // A sequence shorter than i is identified by itself, but two
                // different sequences may share that same short prefix only
                // if one IS the prefix — in which case they are still
                // distinguishable as objects (different lengths) unless the
                // truncations collide.
                let key = if s.len() <= i { s.clone() } else { p };
                if seen.insert(key, ()).is_some() {
                    continue 'outer;
                }
            }
            return Some(i);
        }
        None
    }

    /// Restricts to the first `n` sequences (the paper's `X'` of size
    /// `min(|X|, α(m)+1)`).
    pub fn take(&self, n: usize) -> SequenceFamily {
        SequenceFamily {
            seqs: self.seqs.iter().take(n).cloned().collect(),
        }
    }

    /// Builds the prefix tree of the family.
    pub fn prefix_tree(&self) -> PrefixTree {
        PrefixTree::from_family(self)
    }
}

impl fmt::Display for SequenceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{{")?;
        for (i, s) in self.seqs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a SequenceFamily {
    type Item = &'a DataSeq;
    type IntoIter = std::slice::Iter<'a, DataSeq>;
    fn into_iter(self) -> Self::IntoIter {
        self.seqs.iter()
    }
}

/// The prefix tree (trie) of a [`SequenceFamily`], used by the encoding
/// constructions: a family embeds into the repetition-free message tree of
/// an `m`-letter alphabet iff every trie node at depth `k` has at most
/// `m - k` children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixTree {
    nodes: Vec<TreeNode>,
}

/// One node of a [`PrefixTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Depth of the node (root = 0).
    pub depth: usize,
    /// The item labelling the edge from the parent (root: `None`).
    pub label: Option<DataItem>,
    /// Index of the parent node (root: `None`).
    pub parent: Option<usize>,
    /// Indices of child nodes, ordered by edge label.
    pub children: Vec<usize>,
    /// Whether a family member ends at this node.
    pub terminal: bool,
}

impl PrefixTree {
    /// Builds the trie of `family`.
    pub fn from_family(family: &SequenceFamily) -> Self {
        let mut tree = PrefixTree {
            nodes: vec![TreeNode {
                depth: 0,
                label: None,
                parent: None,
                children: Vec::new(),
                terminal: false,
            }],
        };
        for seq in family {
            let mut node = 0usize;
            for &item in seq {
                node = tree.child_or_insert(node, item);
            }
            tree.nodes[node].terminal = true;
        }
        tree
    }

    fn child_or_insert(&mut self, node: usize, label: DataItem) -> usize {
        if let Some(&c) = self.nodes[node]
            .children
            .iter()
            .find(|&&c| self.nodes[c].label == Some(label))
        {
            return c;
        }
        let depth = self.nodes[node].depth + 1;
        let idx = self.nodes.len();
        self.nodes.push(TreeNode {
            depth,
            label: Some(label),
            parent: Some(node),
            children: Vec::new(),
            terminal: false,
        });
        let pos = self.nodes[node]
            .children
            .iter()
            .position(|&c| self.nodes[c].label > Some(label))
            .unwrap_or(self.nodes[node].children.len());
        self.nodes[node].children.insert(pos, idx);
        idx
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree consists of the root only.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The nodes, root first, in insertion order.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Maximum number of children over all nodes at the given depth.
    pub fn max_arity_at_depth(&self, depth: usize) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.depth == depth)
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Depth of the deepest node.
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Whether this trie embeds into the repetition-free message tree over
    /// an `m`-letter alphabet: node at depth `k` ⇒ at most `m - k` children,
    /// and total depth ≤ `m`.
    ///
    /// This is the structural condition behind the paper's achievability
    /// results (end of Section 3).
    pub fn embeds_in_repetition_free(&self, m: u16) -> bool {
        if self.depth() > m as usize {
            return false;
        }
        self.nodes
            .iter()
            .all(|n| n.children.len() <= (m as usize).saturating_sub(n.depth))
    }

    /// Reconstructs the data sequence spelled by the path from the root to
    /// `node`.
    pub fn path_to(&self, node: usize) -> DataSeq {
        let mut items = Vec::new();
        let mut cur = node;
        while let Some(parent) = self.nodes[cur].parent {
            items.push(self.nodes[cur].label.expect("non-root has a label"));
            cur = parent;
        }
        items.reverse();
        DataSeq::from(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    #[test]
    fn family_rejects_duplicates() {
        let r = SequenceFamily::from_seqs([seq(&[0]), seq(&[1]), seq(&[0])]);
        assert_eq!(
            r,
            Err(Error::EncodingNotInjective {
                first: 0,
                second: 2
            })
        );
    }

    #[test]
    fn all_up_to_counts() {
        // Σ_{k=0}^{2} 2^k = 7.
        let x = SequenceFamily::all_up_to(2, 2);
        assert_eq!(x.len(), 7);
        assert!(x.is_prefix_closed());
        // d = 3, len ≤ 3: 1 + 3 + 9 + 27 = 40.
        assert_eq!(SequenceFamily::all_up_to(3, 3).len(), 40);
    }

    #[test]
    fn repetition_free_family_has_alpha_size() {
        for d in 0u16..=5 {
            let x = SequenceFamily::repetition_free(d);
            assert_eq!(x.len() as u128, crate::alpha::alpha(d as u32).unwrap());
            assert!(x.is_prefix_closed());
            assert!(x.iter().all(DataSeq::is_repetition_free));
        }
    }

    #[test]
    fn prefix_closedness_detection() {
        let closed = SequenceFamily::from_seqs([DataSeq::new(), seq(&[0]), seq(&[0, 1])]).unwrap();
        assert!(closed.is_prefix_closed());
        let open = SequenceFamily::from_seqs([seq(&[0, 1])]).unwrap();
        assert!(!open.is_prefix_closed());
    }

    #[test]
    fn identifying_prefix_len_cases() {
        // Distinguished at the first element.
        let x = SequenceFamily::from_seqs([seq(&[0, 0]), seq(&[1, 0])]).unwrap();
        assert_eq!(x.identifying_prefix_len(), Some(1));
        // Distinguished only at the second.
        let y = SequenceFamily::from_seqs([seq(&[0, 0]), seq(&[0, 1])]).unwrap();
        assert_eq!(y.identifying_prefix_len(), Some(2));
        // Prefix-of-each-other: lengths distinguish at i = 2.
        let z = SequenceFamily::from_seqs([seq(&[0]), seq(&[0, 1])]).unwrap();
        assert_eq!(z.identifying_prefix_len(), Some(2));
        // Singleton and empty families.
        assert_eq!(
            SequenceFamily::from_seqs([seq(&[3])])
                .unwrap()
                .identifying_prefix_len(),
            Some(0)
        );
        assert_eq!(SequenceFamily::new().identifying_prefix_len(), Some(0));
    }

    #[test]
    fn take_restricts_in_order() {
        let x = SequenceFamily::from_seqs([seq(&[0]), seq(&[1]), seq(&[2])]).unwrap();
        let t = x.take(2);
        assert_eq!(t.len(), 2);
        assert!(t.contains(&seq(&[0])));
        assert!(t.contains(&seq(&[1])));
        assert!(!t.contains(&seq(&[2])));
    }

    #[test]
    fn prefix_tree_structure() {
        let x = SequenceFamily::from_seqs([seq(&[0, 1]), seq(&[0, 2]), seq(&[1])]).unwrap();
        let t = x.prefix_tree();
        // root, 0, 0-1, 0-2, 1 → 5 nodes.
        assert_eq!(t.len(), 5);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.max_arity_at_depth(0), 2);
        assert_eq!(t.max_arity_at_depth(1), 2);
        // Terminals: 0-1, 0-2, 1 (but not 0 or root).
        let terminals: Vec<DataSeq> = t
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.terminal)
            .map(|(i, _)| t.path_to(i))
            .collect();
        assert_eq!(terminals.len(), 3);
        assert!(terminals.contains(&seq(&[0, 1])));
        assert!(terminals.contains(&seq(&[1])));
    }

    #[test]
    fn embedding_condition() {
        // Full binary family of depth 2 over d=2: root has 2 children
        // (depth 0: need m ≥ 2), depth-1 nodes have 2 children (need
        // m - 1 ≥ 2 → m ≥ 3).
        let x = SequenceFamily::all_up_to(2, 2);
        let t = x.prefix_tree();
        assert!(!t.embeds_in_repetition_free(2));
        assert!(t.embeds_in_repetition_free(3));
        // The repetition-free family over d letters embeds exactly at m = d.
        for d in 1u16..=4 {
            let rf = SequenceFamily::repetition_free(d).prefix_tree();
            assert!(rf.embeds_in_repetition_free(d), "d={d}");
            if d > 0 {
                assert!(!rf.embeds_in_repetition_free(d - 1), "d={d}");
            }
        }
    }

    #[test]
    fn path_reconstruction_round_trip() {
        let x = SequenceFamily::from_seqs([seq(&[2, 0, 1])]).unwrap();
        let t = x.prefix_tree();
        let deepest = t
            .nodes()
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| n.depth)
            .unwrap()
            .0;
        assert_eq!(t.path_to(deepest), seq(&[2, 0, 1]));
        assert_eq!(t.path_to(0), DataSeq::new());
    }
}
