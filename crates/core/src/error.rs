//! The crate-wide error type.

use std::fmt;

/// Convenience alias for results with [`enum@Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the `stp-core` APIs.
///
/// All variants carry enough context to be actionable; the `Display`
/// representation is lowercase without trailing punctuation per the Rust API
/// guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// `α(m)` (or an intermediate factorial) does not fit in `u128`.
    AlphaOverflow {
        /// The alphabet size whose `α` was requested.
        m: u32,
    },
    /// A data item index is outside its domain.
    ItemOutOfDomain {
        /// The offending item index.
        item: u32,
        /// The domain size.
        domain: u32,
    },
    /// A message index is outside its alphabet.
    MsgOutOfAlphabet {
        /// The offending message index.
        msg: u32,
        /// The alphabet size.
        alphabet: u32,
    },
    /// A sequence contains a repeated element where a repetition-free one is
    /// required.
    RepetitionInSequence {
        /// Position (0-based) of the second occurrence.
        position: usize,
    },
    /// An encoding violates prefix-monotonicity: `μ(X₁)` is a prefix of
    /// `μ(X₂)` although `X₁` is not a prefix of `X₂`.
    PrefixMonotonicityViolated {
        /// Index of the first offending pair member in the encoding's table.
        first: usize,
        /// Index of the second offending pair member.
        second: usize,
    },
    /// Two distinct sequences map to the same message sequence.
    EncodingNotInjective {
        /// Index of the first colliding entry.
        first: usize,
        /// Index of the second colliding entry.
        second: usize,
    },
    /// A sequence family does not fit the requested encoding construction
    /// (e.g. a prefix-tree node has more children than remaining letters).
    CapacityExceeded {
        /// Number of sequences (or children) requested.
        requested: u128,
        /// The capacity that was available.
        capacity: u128,
    },
    /// A rank is outside the range of the enumeration it indexes.
    RankOutOfRange {
        /// The offending rank.
        rank: u128,
        /// The number of enumerated objects.
        count: u128,
    },
    /// The input tape was read past its end.
    TapeExhausted {
        /// Length of the tape.
        len: usize,
    },
    /// A requirement checker detected a safety violation: the output tape is
    /// not a prefix of the input tape.
    SafetyViolated {
        /// The step at which the violation first occurred.
        step: u64,
        /// Position of the first disagreeing output item.
        position: usize,
    },
    /// A requirement checker detected a liveness shortfall within the
    /// inspected horizon.
    LivenessShortfall {
        /// Number of items written.
        written: usize,
        /// Number of items expected.
        expected: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::AlphaOverflow { m } => {
                write!(f, "alpha({m}) does not fit in u128")
            }
            Error::ItemOutOfDomain { item, domain } => {
                write!(f, "data item {item} outside domain of size {domain}")
            }
            Error::MsgOutOfAlphabet { msg, alphabet } => {
                write!(f, "message {msg} outside alphabet of size {alphabet}")
            }
            Error::RepetitionInSequence { position } => {
                write!(f, "sequence repeats an element at position {position}")
            }
            Error::PrefixMonotonicityViolated { first, second } => {
                write!(
                    f,
                    "encoding violates prefix monotonicity between entries {first} and {second}"
                )
            }
            Error::EncodingNotInjective { first, second } => {
                write!(f, "encoding entries {first} and {second} collide")
            }
            Error::CapacityExceeded {
                requested,
                capacity,
            } => {
                write!(f, "requested {requested} exceeds capacity {capacity}")
            }
            Error::RankOutOfRange { rank, count } => {
                write!(f, "rank {rank} out of range for {count} objects")
            }
            Error::TapeExhausted { len } => {
                write!(f, "input tape of length {len} read past its end")
            }
            Error::SafetyViolated { step, position } => {
                write!(
                    f,
                    "safety violated at step {step}: output disagrees with input at position {position}"
                )
            }
            Error::LivenessShortfall { written, expected } => {
                write!(
                    f,
                    "liveness shortfall: {written} of {expected} items written"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let samples: Vec<Error> = vec![
            Error::AlphaOverflow { m: 40 },
            Error::ItemOutOfDomain { item: 9, domain: 4 },
            Error::MsgOutOfAlphabet {
                msg: 7,
                alphabet: 3,
            },
            Error::RepetitionInSequence { position: 2 },
            Error::PrefixMonotonicityViolated {
                first: 0,
                second: 1,
            },
            Error::EncodingNotInjective {
                first: 3,
                second: 5,
            },
            Error::CapacityExceeded {
                requested: 10,
                capacity: 5,
            },
            Error::RankOutOfRange {
                rank: 99,
                count: 16,
            },
            Error::TapeExhausted { len: 4 },
            Error::SafetyViolated {
                step: 17,
                position: 2,
            },
            Error::LivenessShortfall {
                written: 1,
                expected: 3,
            },
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "trailing punctuation in {s:?}");
            assert!(
                s.chars().next().unwrap().is_lowercase(),
                "uppercase start in {s:?}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::AlphaOverflow { m: 34 });
        assert!(e.source().is_none());
    }
}
