//! # stp-core — the Sequence Transmission Problem, as a library
//!
//! This crate is the heart of a full reproduction of
//!
//! > Da-Wei Wang and Lenore D. Zuck, *Tight Bounds for the Sequence
//! > Transmission Problem*, YALEU/DCS/TR-705, May 1989 (PODC 1989).
//!
//! In the *X-sequence transmission problem* (`X`-STP) a **sender** `S` reads
//! a sequence of data items from a finite domain and transmits them over an
//! unreliable bidirectional channel to a **receiver** `R`, which must write
//! them to an output tape such that
//!
//! * **safety** — the output is at all times a prefix of the input, and
//! * **liveness** — in every fair run every input item is eventually written.
//!
//! Both processors use **finite message alphabets**. The paper's central
//! result is that when the channel can reorder and duplicate
//! (`X`-STP(dup)), or reorder and delete (`X`-STP(del), for *bounded*
//! protocols), the number of distinct transmittable sequences is exactly
//!
//! ```text
//! α(m) = m! · Σ_{k=0}^{m} 1/k!
//! ```
//!
//! where `m` is the size of the sender's message alphabet — the number of
//! *repetition-free* sequences over an `m`-letter alphabet.
//!
//! ## What lives here
//!
//! * [`data`] — data domains, items and sequences (the input/output tapes).
//! * [`alphabet`] — finite message alphabets and typed messages.
//! * [`alpha`] — exact `α(m)` arithmetic, enumeration, ranking/unranking of
//!   repetition-free sequences.
//! * [`sequence`] — prefix structure of sequence families, the `β`
//!   identifying-prefix length used in the deletion-channel proofs.
//! * [`encoding`] — the encoding characterization of solvability: mappings
//!   from input sequences to repetition-free, prefix-monotone message
//!   sequences, plus constructors and capacity computations.
//! * [`proto`] — the sender/receiver protocol traits (deterministic state
//!   machines) shared by every protocol and by the simulator/verifier.
//! * [`event`] — the observable event vocabulary of a run.
//! * [`require`] — executable safety/liveness requirement checkers.
//! * [`schema`] — shared wire-schema types for the certificate subsystem
//!   (schema version, verdicts, the conformance-ledger record).
//! * [`error`] — the crate's error type.
//!
//! ## Quick start
//!
//! ```
//! use stp_core::alpha::alpha;
//!
//! // The tight bound for a 4-message sender alphabet:
//! assert_eq!(alpha(4).unwrap(), 65);
//! ```
//!
//! Higher layers (channels, protocols, the simulator, the knowledge checker
//! and the impossibility engine) live in the sibling crates `stp-channel`,
//! `stp-protocols`, `stp-sim`, `stp-knowledge` and `stp-verify`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod alphabet;
pub mod data;
pub mod encoding;
pub mod error;
pub mod event;
pub mod proto;
pub mod require;
pub mod schema;
pub mod sequence;

pub use alphabet::{Alphabet, RMsg, SMsg};
pub use data::{DataItem, DataSeq, Domain};
pub use error::{Error, Result};
pub use event::{CorruptionKind, Event, MsgEvent, MsgId, ProcessId, Step, Trace};
pub use proto::{
    InputTape, Receiver, ReceiverEvent, ReceiverOutput, Sender, SenderEvent, SenderOutput,
};
pub use schema::{ConformanceVerdict, Verdict, CERT_SCHEMA_VERSION};
