//! The `α(m)` combinatorics at the heart of the paper's tight bounds.
//!
//! `α(m) = m! · Σ_{k=0}^{m} 1/k! = Σ_{k=0}^{m} m!/(m-k)!` counts the
//! sequences over an `m`-letter alphabet that contain **no repetitions**
//! (including the empty sequence). The paper proves that `α(|M^S|)` is
//! exactly the number of distinct input sequences any solution to
//! `X`-STP(dup) — and any *bounded* solution to `X`-STP(del) — can
//! transmit.
//!
//! This module provides:
//!
//! * exact evaluation of `α(m)` and `m!` in `u128` with overflow detection
//!   ([`alpha`], [`factorial`]),
//! * the recurrence `α(m) = m·α(m-1) + 1` ([`alpha_recurrence_step`]),
//! * the count of repetition-free sequences of an exact length
//!   ([`falling_factorial`]),
//! * shortlex enumeration of all repetition-free sequences
//!   ([`RepetitionFreeSeqs`]),
//! * ranking and unranking within that enumeration ([`rank`], [`unrank`]),
//! * the `α(m)/m! → e` convergence data ([`alpha_over_factorial`]).
//!
//! ```
//! use stp_core::alpha::{alpha, RepetitionFreeSeqs};
//!
//! // Closed form and enumeration agree.
//! let enumerated = RepetitionFreeSeqs::new(3).count() as u128;
//! assert_eq!(enumerated, alpha(3).unwrap()); // 16
//! ```

use crate::alphabet::SMsgSeq;
use crate::error::{Error, Result};

/// Exact `m!` in `u128`.
///
/// # Errors
///
/// Returns [`Error::AlphaOverflow`] when the factorial exceeds `u128`
/// (first at `m = 35`).
///
/// ```
/// use stp_core::alpha::factorial;
/// assert_eq!(factorial(0).unwrap(), 1);
/// assert_eq!(factorial(5).unwrap(), 120);
/// assert!(factorial(35).is_err());
/// ```
pub fn factorial(m: u32) -> Result<u128> {
    let mut acc: u128 = 1;
    for k in 1..=m as u128 {
        acc = acc.checked_mul(k).ok_or(Error::AlphaOverflow { m })?;
    }
    Ok(acc)
}

/// The falling factorial `m!/(m-k)! = m·(m-1)···(m-k+1)`: the number of
/// repetition-free sequences of length exactly `k` over `m` letters.
///
/// Returns `0` when `k > m` (no injective word that long exists).
///
/// # Errors
///
/// Returns [`Error::AlphaOverflow`] on `u128` overflow.
pub fn falling_factorial(m: u32, k: u32) -> Result<u128> {
    if k > m {
        return Ok(0);
    }
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul((m - i) as u128)
            .ok_or(Error::AlphaOverflow { m })?;
    }
    Ok(acc)
}

/// One step of the recurrence `α(m) = m·α(m-1) + 1`.
///
/// # Errors
///
/// Returns [`Error::AlphaOverflow`] on `u128` overflow.
pub fn alpha_recurrence_step(m: u32, alpha_prev: u128) -> Result<u128> {
    alpha_prev
        .checked_mul(m as u128)
        .and_then(|v| v.checked_add(1))
        .ok_or(Error::AlphaOverflow { m })
}

/// Exact `α(m) = Σ_{k=0}^{m} m!/(m-k)!`, the paper's tight bound on `|X|`.
///
/// Computed by the recurrence `α(0) = 1`, `α(m) = m·α(m-1) + 1`, which the
/// unit tests cross-check against the summation form and against explicit
/// enumeration.
///
/// # Errors
///
/// Returns [`Error::AlphaOverflow`] when the value exceeds `u128` (first at
/// `m = 34`).
///
/// ```
/// use stp_core::alpha::alpha;
/// assert_eq!(alpha(0).unwrap(), 1);
/// assert_eq!(alpha(1).unwrap(), 2);
/// assert_eq!(alpha(2).unwrap(), 5);
/// assert_eq!(alpha(3).unwrap(), 16);
/// assert_eq!(alpha(4).unwrap(), 65);
/// assert_eq!(alpha(5).unwrap(), 326);
/// ```
pub fn alpha(m: u32) -> Result<u128> {
    let mut acc: u128 = 1;
    for i in 1..=m {
        acc = alpha_recurrence_step(i, acc)?;
    }
    Ok(acc)
}

/// `α(m)` by the summation `Σ_{k=0}^{m} m!/(m-k)!` — used as an independent
/// cross-check of [`alpha`].
///
/// # Errors
///
/// Returns [`Error::AlphaOverflow`] on `u128` overflow.
pub fn alpha_by_summation(m: u32) -> Result<u128> {
    let mut total: u128 = 0;
    for k in 0..=m {
        total = total
            .checked_add(falling_factorial(m, k)?)
            .ok_or(Error::AlphaOverflow { m })?;
    }
    Ok(total)
}

/// The ratio `α(m)/m!`, which converges to `e = 2.71828…` from below.
///
/// # Errors
///
/// Returns [`Error::AlphaOverflow`] when either quantity overflows `u128`.
pub fn alpha_over_factorial(m: u32) -> Result<f64> {
    Ok(alpha(m)? as f64 / factorial(m)? as f64)
}

/// Capacity planning: the smallest alphabet size `m` with `α(m) ≥ n` —
/// how many distinct messages a deployment needs to transmit `n`
/// different sequences over a duplicating (or, boundedly, a deleting)
/// reordering channel.
///
/// # Errors
///
/// Returns [`Error::AlphaOverflow`] when `n` exceeds `α(33)` (the largest
/// representable capacity).
///
/// ```
/// use stp_core::alpha::min_alphabet_for;
/// assert_eq!(min_alphabet_for(1).unwrap(), 0);
/// assert_eq!(min_alphabet_for(2).unwrap(), 1);
/// assert_eq!(min_alphabet_for(3).unwrap(), 2);
/// assert_eq!(min_alphabet_for(5).unwrap(), 2);
/// assert_eq!(min_alphabet_for(6).unwrap(), 3);
/// assert_eq!(min_alphabet_for(66).unwrap(), 5);
/// ```
pub fn min_alphabet_for(n: u128) -> Result<u32> {
    let mut m = 0u32;
    let mut cap: u128 = 1;
    while cap < n {
        m += 1;
        cap = alpha_recurrence_step(m, cap)?;
    }
    Ok(m)
}

/// The largest `m` for which `α(m)` fits in `u128`.
pub fn max_representable_m() -> u32 {
    let mut m = 0;
    while alpha(m + 1).is_ok() {
        m += 1;
    }
    m
}

/// Shortlex enumeration of every repetition-free sequence over an
/// `m`-letter alphabet (empty sequence first, then length 1 in
/// lexicographic order, and so on). Yields exactly `α(m)` sequences.
///
/// ```
/// use stp_core::alpha::RepetitionFreeSeqs;
/// use stp_core::alphabet::SMsgSeq;
///
/// let seqs: Vec<SMsgSeq> = RepetitionFreeSeqs::new(2).collect();
/// assert_eq!(seqs.len(), 5); // α(2)
/// assert_eq!(seqs[0], SMsgSeq::new());
/// assert_eq!(seqs[4], SMsgSeq::from_indices([1, 0]));
/// ```
#[derive(Debug, Clone)]
pub struct RepetitionFreeSeqs {
    m: u16,
    /// Sequences of the current length, in lexicographic order; `None`
    /// before the first call to `next`.
    current_len: usize,
    /// Position within the current length class; the class is regenerated
    /// lazily via odometer stepping over injective words.
    word: Option<Vec<u16>>,
    exhausted: bool,
}

impl RepetitionFreeSeqs {
    /// Creates the enumeration for an `m`-letter alphabet.
    pub fn new(m: u16) -> Self {
        RepetitionFreeSeqs {
            m,
            current_len: 0,
            word: None,
            exhausted: false,
        }
    }

    /// Smallest injective word of length `len`, i.e. `[0, 1, …, len-1]`, or
    /// `None` when `len > m`.
    fn first_word(&self, len: usize) -> Option<Vec<u16>> {
        if len > self.m as usize {
            None
        } else {
            Some((0..len as u16).collect())
        }
    }

    /// Advances `word` to the lexicographically next injective word of the
    /// same length; returns `false` when the class is exhausted.
    fn advance(&mut self) -> bool {
        let m = self.m;
        let word = match &mut self.word {
            Some(w) => w,
            None => return false,
        };
        // Odometer over injective words: increment the last position to the
        // next unused letter; on wrap, carry left.
        let len = word.len();
        let mut pos = len;
        loop {
            if pos == 0 {
                return false;
            }
            pos -= 1;
            let used: std::collections::HashSet<u16> = word[..pos].iter().copied().collect();
            // Next letter after word[pos] that is unused in the prefix.
            let mut cand = word[pos] + 1;
            while cand < m && used.contains(&cand) {
                cand += 1;
            }
            if cand < m {
                word[pos] = cand;
                // Fill the suffix with the smallest unused letters.
                let mut used: std::collections::HashSet<u16> =
                    word[..=pos].iter().copied().collect();
                for slot in word.iter_mut().take(len).skip(pos + 1) {
                    let mut c = 0;
                    while used.contains(&c) {
                        c += 1;
                    }
                    *slot = c;
                    used.insert(c);
                }
                return true;
            }
        }
    }
}

impl Iterator for RepetitionFreeSeqs {
    type Item = SMsgSeq;

    fn next(&mut self) -> Option<SMsgSeq> {
        if self.exhausted {
            return None;
        }
        match self.word.take() {
            None => {
                // First call: yield the empty sequence and prime length 1.
                self.current_len = 0;
                self.word = self.first_word(0);
                // Current item is the empty word; set up next length.
                let out = SMsgSeq::new();
                self.current_len = 1;
                self.word = self.first_word(1);
                if self.word.is_none() {
                    self.exhausted = true;
                }
                Some(out)
            }
            Some(word) => {
                let out = SMsgSeq::from_indices(word.iter().copied());
                self.word = Some(word);
                if !self.advance() {
                    self.current_len += 1;
                    self.word = self.first_word(self.current_len);
                    if self.word.is_none() {
                        self.exhausted = true;
                    }
                }
                Some(out)
            }
        }
    }
}

/// Shortlex rank of a repetition-free sequence over `m` letters
/// (the empty sequence has rank 0).
///
/// # Errors
///
/// Returns [`Error::MsgOutOfAlphabet`] if a message is outside the alphabet,
/// [`Error::RepetitionInSequence`] if the word repeats a letter, or
/// [`Error::AlphaOverflow`] if intermediate counts overflow.
///
/// ```
/// use stp_core::alpha::{rank, unrank};
/// use stp_core::alphabet::SMsgSeq;
///
/// let s = SMsgSeq::from_indices([1, 0]);
/// let r = rank(3, &s).unwrap();
/// assert_eq!(unrank(3, r).unwrap(), s);
/// ```
pub fn rank(m: u16, seq: &SMsgSeq) -> Result<u128> {
    seq.validate_repetition_free(crate::alphabet::Alphabet::new(m))?;
    let len = seq.len() as u32;
    let m32 = m as u32;
    // Rank = (# sequences strictly shorter) + (lexicographic index within
    // the length class).
    let mut r: u128 = 0;
    for k in 0..len {
        r = r
            .checked_add(falling_factorial(m32, k)?)
            .ok_or(Error::AlphaOverflow { m: m32 })?;
    }
    // Lexicographic index among injective words of this length: positional
    // system with falling-factorial weights over *unused* letters.
    let mut used: Vec<bool> = vec![false; m as usize];
    for (i, msg) in seq.msgs().iter().enumerate() {
        let smaller_unused = (0..msg.0).filter(|&c| !used[c as usize]).count() as u128;
        let remaining_positions = len - 1 - i as u32;
        let weight = falling_factorial(m32 - 1 - i as u32, remaining_positions)?;
        r = smaller_unused
            .checked_mul(weight)
            .and_then(|v| r.checked_add(v))
            .ok_or(Error::AlphaOverflow { m: m32 })?;
        used[msg.0 as usize] = true;
    }
    Ok(r)
}

/// Inverse of [`rank`]: the repetition-free sequence over `m` letters with
/// the given shortlex rank.
///
/// # Errors
///
/// Returns [`Error::RankOutOfRange`] when `r ≥ α(m)`, or
/// [`Error::AlphaOverflow`] on intermediate overflow.
pub fn unrank(m: u16, r: u128) -> Result<SMsgSeq> {
    let m32 = m as u32;
    let total = alpha(m32)?;
    if r >= total {
        return Err(Error::RankOutOfRange {
            rank: r,
            count: total,
        });
    }
    // Find the length class.
    let mut rem = r;
    let mut len: u32 = 0;
    loop {
        let class = falling_factorial(m32, len)?;
        if rem < class {
            break;
        }
        rem -= class;
        len += 1;
    }
    // Decode the positional representation.
    let mut used: Vec<bool> = vec![false; m as usize];
    let mut out = Vec::with_capacity(len as usize);
    for i in 0..len {
        let weight = falling_factorial(m32 - 1 - i, len - 1 - i)?;
        let idx = (rem / weight) as usize;
        rem %= weight;
        // idx-th unused letter.
        let letter = (0..m)
            .filter(|&c| !used[c as usize])
            .nth(idx)
            .expect("index within unused letters by construction");
        used[letter as usize] = true;
        out.push(letter);
    }
    Ok(SMsgSeq::from_indices(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALPHA_TABLE: [(u32, u128); 9] = [
        (0, 1),
        (1, 2),
        (2, 5),
        (3, 16),
        (4, 65),
        (5, 326),
        (6, 1957),
        (7, 13700),
        (8, 109601),
    ];

    #[test]
    fn alpha_matches_known_table() {
        for (m, v) in ALPHA_TABLE {
            assert_eq!(alpha(m).unwrap(), v, "alpha({m})");
        }
    }

    #[test]
    fn alpha_matches_summation_form() {
        for m in 0..=25 {
            assert_eq!(alpha(m).unwrap(), alpha_by_summation(m).unwrap(), "m={m}");
        }
    }

    #[test]
    fn alpha_overflows_eventually_and_max_m_is_consistent() {
        let max_m = max_representable_m();
        assert!(alpha(max_m).is_ok());
        assert_eq!(alpha(max_m + 1), Err(Error::AlphaOverflow { m: max_m + 1 }));
        // e·33! ≈ 2.4e37 < u128::MAX; e·34! ≈ 8e38 > u128::MAX.
        assert_eq!(max_m, 33);
    }

    #[test]
    fn factorial_values_and_overflow() {
        assert_eq!(factorial(0).unwrap(), 1);
        assert_eq!(factorial(1).unwrap(), 1);
        assert_eq!(factorial(10).unwrap(), 3_628_800);
        assert!(factorial(34).is_ok());
        assert!(factorial(35).is_err());
    }

    #[test]
    fn falling_factorial_basics() {
        assert_eq!(falling_factorial(5, 0).unwrap(), 1);
        assert_eq!(falling_factorial(5, 1).unwrap(), 5);
        assert_eq!(falling_factorial(5, 2).unwrap(), 20);
        assert_eq!(falling_factorial(5, 5).unwrap(), 120);
        assert_eq!(falling_factorial(5, 6).unwrap(), 0);
        assert_eq!(falling_factorial(0, 0).unwrap(), 1);
    }

    #[test]
    fn ratio_converges_to_e() {
        let e = std::f64::consts::E;
        let r5 = alpha_over_factorial(5).unwrap();
        let r20 = alpha_over_factorial(20).unwrap();
        assert!((r20 - e).abs() < (r5 - e).abs());
        assert!((r20 - e).abs() < 1e-15);
        // Convergence is from below: α(m) = floor(e·m!) for m ≥ 1.
        for m in 1..=20 {
            assert!(alpha_over_factorial(m).unwrap() <= e, "m={m}");
        }
    }

    #[test]
    fn enumeration_counts_match_alpha() {
        for m in 0u16..=6 {
            let count = RepetitionFreeSeqs::new(m).count() as u128;
            assert_eq!(count, alpha(m as u32).unwrap(), "m={m}");
        }
    }

    #[test]
    fn enumeration_is_shortlex_and_repetition_free() {
        let seqs: Vec<SMsgSeq> = RepetitionFreeSeqs::new(4).collect();
        for w in &seqs {
            assert!(w.is_repetition_free(), "{w}");
        }
        for pair in seqs.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.len() < b.len() || (a.len() == b.len() && a.msgs() < b.msgs()),
                "not shortlex: {a} then {b}"
            );
        }
        // All distinct.
        let set: std::collections::HashSet<_> = seqs.iter().collect();
        assert_eq!(set.len(), seqs.len());
    }

    #[test]
    fn enumeration_small_cases_explicit() {
        let seqs: Vec<SMsgSeq> = RepetitionFreeSeqs::new(2).collect();
        assert_eq!(
            seqs,
            vec![
                SMsgSeq::new(),
                SMsgSeq::from_indices([0]),
                SMsgSeq::from_indices([1]),
                SMsgSeq::from_indices([0, 1]),
                SMsgSeq::from_indices([1, 0]),
            ]
        );
        let zero: Vec<SMsgSeq> = RepetitionFreeSeqs::new(0).collect();
        assert_eq!(zero, vec![SMsgSeq::new()]);
    }

    #[test]
    fn rank_agrees_with_enumeration_order() {
        for m in 0u16..=5 {
            for (i, seq) in RepetitionFreeSeqs::new(m).enumerate() {
                assert_eq!(rank(m, &seq).unwrap(), i as u128, "m={m} seq={seq}");
                assert_eq!(unrank(m, i as u128).unwrap(), seq, "m={m} i={i}");
            }
        }
    }

    #[test]
    fn rank_rejects_bad_input() {
        assert!(matches!(
            rank(2, &SMsgSeq::from_indices([0, 0])),
            Err(Error::RepetitionInSequence { .. })
        ));
        assert!(matches!(
            rank(2, &SMsgSeq::from_indices([5])),
            Err(Error::MsgOutOfAlphabet { .. })
        ));
        assert!(matches!(
            unrank(2, 5),
            Err(Error::RankOutOfRange { rank: 5, count: 5 })
        ));
    }

    #[test]
    fn min_alphabet_is_inverse_of_alpha() {
        for m in 0..=10u32 {
            let a = alpha(m).unwrap();
            assert_eq!(min_alphabet_for(a).unwrap(), m, "exact capacity");
            assert_eq!(min_alphabet_for(a + 1).unwrap(), m + 1, "one over");
        }
        assert!(min_alphabet_for(u128::MAX).is_err());
    }

    proptest! {
        #[test]
        fn prop_recurrence_matches_closed_form(m in 1u32..20) {
            let prev = alpha(m - 1).unwrap();
            prop_assert_eq!(alpha_recurrence_step(m, prev).unwrap(), alpha(m).unwrap());
        }

        #[test]
        fn prop_unrank_rank_round_trip(m in 0u16..7, r_seed in 0u64..10_000) {
            let total = alpha(m as u32).unwrap();
            let r = (r_seed as u128) % total;
            let seq = unrank(m, r).unwrap();
            prop_assert_eq!(rank(m, &seq).unwrap(), r);
        }

        #[test]
        fn prop_unranked_sequences_are_repetition_free(m in 0u16..8, r_seed in 0u64..100_000) {
            let total = alpha(m as u32).unwrap();
            let r = (r_seed as u128) % total;
            let seq = unrank(m, r).unwrap();
            prop_assert!(seq.is_repetition_free());
            prop_assert!(seq.len() <= m as usize);
        }
    }
}
