//! Data domains, items and sequences — the content of the input and output
//! tapes.
//!
//! The paper fixes a finite domain `D` of data items; input sequences are
//! drawn from a family `X` of *allowable* sequences over `D`. We represent a
//! domain by its size and items by indices into it, which keeps every type
//! `Copy` and hashable and makes exhaustive enumeration (needed by the
//! verifier) trivial.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single data item: an index into a [`Domain`].
///
/// ```
/// use stp_core::data::{DataItem, Domain};
///
/// let d = Domain::new(4);
/// let x = DataItem(2);
/// assert!(d.contains(x));
/// assert!(!d.contains(DataItem(4)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataItem(pub u16);

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<u16> for DataItem {
    fn from(v: u16) -> Self {
        DataItem(v)
    }
}

/// A finite data domain `D = {d_0, …, d_{n-1}}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Domain {
    size: u16,
}

impl Domain {
    /// Creates a domain with `size` distinct items.
    ///
    /// A zero-sized domain is permitted: the only sequence over it is the
    /// empty one.
    pub fn new(size: u16) -> Self {
        Domain { size }
    }

    /// Number of items in the domain.
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Whether `item` belongs to this domain.
    pub fn contains(&self, item: DataItem) -> bool {
        item.0 < self.size
    }

    /// Iterates over all items of the domain in index order.
    ///
    /// ```
    /// use stp_core::data::Domain;
    /// let items: Vec<_> = Domain::new(3).iter().map(|d| d.0).collect();
    /// assert_eq!(items, vec![0, 1, 2]);
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = DataItem> + '_ {
        (0..self.size).map(DataItem)
    }

    /// Validates that every element of `seq` belongs to this domain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ItemOutOfDomain`] naming the first offender.
    pub fn validate(&self, seq: &DataSeq) -> Result<()> {
        for &item in seq.items() {
            if !self.contains(item) {
                return Err(Error::ItemOutOfDomain {
                    item: item.0 as u32,
                    domain: self.size as u32,
                });
            }
        }
        Ok(())
    }
}

impl Default for Domain {
    fn default() -> Self {
        Domain::new(2)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D[{}]", self.size)
    }
}

/// A finite sequence of data items — an input tape `X` or output tape `Y`.
///
/// The paper's length convention (`|X| = k + 1` for a `k`-element sequence)
/// is exposed separately as [`DataSeq::paper_len`]; [`DataSeq::len`] is the
/// ordinary element count.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct DataSeq {
    items: Vec<DataItem>,
}

impl DataSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        DataSeq { items: Vec::new() }
    }

    /// Creates a sequence from raw item indices.
    ///
    /// ```
    /// use stp_core::data::DataSeq;
    /// let s = DataSeq::from_indices([0, 2, 1]);
    /// assert_eq!(s.len(), 3);
    /// ```
    pub fn from_indices<I: IntoIterator<Item = u16>>(indices: I) -> Self {
        DataSeq {
            items: indices.into_iter().map(DataItem).collect(),
        }
    }

    /// Number of items in the sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The paper's length convention: `k + 1` for a `k`-element finite
    /// sequence (so the empty sequence has paper length 1).
    pub fn paper_len(&self) -> usize {
        self.items.len() + 1
    }

    /// The underlying items.
    pub fn items(&self) -> &[DataItem] {
        &self.items
    }

    /// The item at `pos`, if present (0-based).
    pub fn get(&self, pos: usize) -> Option<DataItem> {
        self.items.get(pos).copied()
    }

    /// Appends an item.
    pub fn push(&mut self, item: DataItem) {
        self.items.push(item);
    }

    /// Returns the prefix consisting of the first `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> DataSeq {
        DataSeq {
            items: self.items[..n].to_vec(),
        }
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    ///
    /// ```
    /// use stp_core::data::DataSeq;
    /// let a = DataSeq::from_indices([1, 2]);
    /// let b = DataSeq::from_indices([1, 2, 3]);
    /// assert!(a.is_prefix_of(&b));
    /// assert!(!b.is_prefix_of(&a));
    /// assert!(a.is_prefix_of(&a));
    /// ```
    pub fn is_prefix_of(&self, other: &DataSeq) -> bool {
        self.len() <= other.len() && self.items[..] == other.items[..self.len()]
    }

    /// Whether the sequence never repeats an item.
    pub fn is_repetition_free(&self) -> bool {
        self.first_repetition().is_none()
    }

    /// Position of the first repeated element (the *second* occurrence), if
    /// any.
    pub fn first_repetition(&self) -> Option<usize> {
        // Domains are small (u16); a bitset over seen values is both simple
        // and fast.
        let mut seen = std::collections::HashSet::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            if !seen.insert(item) {
                return Some(i);
            }
        }
        None
    }

    /// Reverses the sequence (used by the Section-5 recovery mode, which
    /// transmits the items in reverse order).
    pub fn reversed(&self) -> DataSeq {
        DataSeq {
            items: self.items.iter().rev().copied().collect(),
        }
    }

    /// Iterates over the items.
    pub fn iter(&self) -> std::slice::Iter<'_, DataItem> {
        self.items.iter()
    }
}

impl FromIterator<DataItem> for DataSeq {
    fn from_iter<I: IntoIterator<Item = DataItem>>(iter: I) -> Self {
        DataSeq {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<DataItem> for DataSeq {
    fn extend<I: IntoIterator<Item = DataItem>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl From<Vec<DataItem>> for DataSeq {
    fn from(items: Vec<DataItem>) -> Self {
        DataSeq { items }
    }
}

impl<'a> IntoIterator for &'a DataSeq {
    type Item = &'a DataItem;
    type IntoIter = std::slice::Iter<'a, DataItem>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl fmt::Display for DataSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", item.0)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_contains_and_iter() {
        let d = Domain::new(3);
        assert_eq!(d.size(), 3);
        assert!(d.contains(DataItem(0)));
        assert!(d.contains(DataItem(2)));
        assert!(!d.contains(DataItem(3)));
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn zero_domain_has_no_items() {
        let d = Domain::new(0);
        assert_eq!(d.iter().count(), 0);
        assert!(!d.contains(DataItem(0)));
        assert!(d.validate(&DataSeq::new()).is_ok());
    }

    #[test]
    fn validate_flags_first_offender() {
        let d = Domain::new(2);
        let s = DataSeq::from_indices([0, 1, 5, 7]);
        assert_eq!(
            d.validate(&s),
            Err(Error::ItemOutOfDomain { item: 5, domain: 2 })
        );
    }

    #[test]
    fn paper_length_convention() {
        assert_eq!(DataSeq::new().paper_len(), 1);
        assert_eq!(DataSeq::from_indices([0, 1, 0]).paper_len(), 4);
    }

    #[test]
    fn prefix_relations() {
        let empty = DataSeq::new();
        let a = DataSeq::from_indices([3]);
        let ab = DataSeq::from_indices([3, 1]);
        let ac = DataSeq::from_indices([3, 2]);
        assert!(empty.is_prefix_of(&a));
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&ac));
        assert!(!ab.is_prefix_of(&ac));
        assert!(!ac.is_prefix_of(&ab));
        assert!(ab.is_prefix_of(&ab));
    }

    #[test]
    fn prefix_extraction() {
        let s = DataSeq::from_indices([4, 5, 6]);
        assert_eq!(s.prefix(0), DataSeq::new());
        assert_eq!(s.prefix(2), DataSeq::from_indices([4, 5]));
        assert_eq!(s.prefix(3), s);
    }

    #[test]
    fn repetition_detection() {
        assert!(DataSeq::new().is_repetition_free());
        assert!(DataSeq::from_indices([0, 1, 2]).is_repetition_free());
        let rep = DataSeq::from_indices([0, 1, 0]);
        assert!(!rep.is_repetition_free());
        assert_eq!(rep.first_repetition(), Some(2));
        assert_eq!(DataSeq::from_indices([7, 7]).first_repetition(), Some(1));
    }

    #[test]
    fn reversed_round_trips() {
        let s = DataSeq::from_indices([1, 2, 3]);
        assert_eq!(s.reversed(), DataSeq::from_indices([3, 2, 1]));
        assert_eq!(s.reversed().reversed(), s);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DataSeq::from_indices([0, 2]).to_string(), "⟨0,2⟩");
        assert_eq!(DataSeq::new().to_string(), "⟨⟩");
        assert_eq!(DataItem(3).to_string(), "d3");
        assert_eq!(Domain::new(5).to_string(), "D[5]");
    }

    #[test]
    fn collect_and_extend() {
        let s: DataSeq = (0u16..3).map(DataItem).collect();
        assert_eq!(s.len(), 3);
        let mut t = DataSeq::new();
        t.extend(s.iter().copied());
        assert_eq!(t, s);
    }
}
