//! # stp-knowledge — reasoning about what the receiver knows
//!
//! All of the paper's results "are derived using formal reasoning about
//! knowledge": the receiver *knows* the value of the `i`-th input item at a
//! point `(r, t)` when every point it cannot tell apart from `(r, t)`
//! agrees on that value. This crate makes the definitions executable:
//!
//! * a [`Universe`] is a finite set of recorded runs standing in for the
//!   system's run set `R`;
//! * indistinguishability `(r,t) ~_R (r',t')` is equality of the
//!   receiver's *local histories* under the complete-history
//!   interpretation (our processors observe every tick, so only same-time
//!   points can ever be indistinguishable — the paper itself notes that
//!   `R` may tell points apart "by the time on R's local clock");
//! * `K_R(x_i = d)` is universal agreement over the indistinguishability
//!   class ([`Universe::knows_item`]);
//! * the learning times `t_i` — the first time `R` knows the first `i`
//!   items — come out of [`Universe::learning_times`], and their
//!   stability (once known, always known) is checkable with
//!   [`Universe::is_knowledge_stable`].
//!
//! ## Soundness note
//!
//! Knowledge quantifies over *all* runs of a system; a sampled universe is
//! a subset, so agreement over it is a *necessary* condition reported as
//! knowledge — an **upper bound** on what `R` knows. Disagreement inside a
//! sampled universe is conclusive: `R` provably does not know. The
//! `stp-verify` crate builds *exhaustive* universes for small systems,
//! turning the upper bound into the exact value; the two agree on every
//! case both can handle (see the integration tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formula;
pub mod frontier;
pub mod learning;
pub mod universe;

pub use formula::Formula;
pub use frontier::{FrontierPoint, FrontierProbe};
pub use learning::{empirical_write_steps, sample_universe, LearningProfile};
pub use universe::Universe;
