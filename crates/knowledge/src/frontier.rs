//! Online knowledge-frontier probing.
//!
//! The epistemic machinery in [`universe`](crate::universe) evaluates
//! knowledge *exactly* but needs a whole universe of runs. For live
//! observability we want something far cheaper: a per-step *frontier*
//! summary of how much each side knows, computable online from a single
//! run's event stream. [`FrontierProbe`] tracks
//!
//! * the **receiver frontier** — how many items `R` has safely written
//!   (its learned prefix depth `d`) and how many candidate continuations
//!   remain compatible with that knowledge. A repetition-free sequence
//!   over an `m`-symbol alphabet whose first `d` items are pinned down
//!   continues as any repetition-free sequence over the remaining `m − d`
//!   symbols, so the candidate count is exactly
//!   [`alpha`]`(m − d)` — at depth 0 this is the paper's `α(m)`, and it
//!   collapses monotonically toward `α(0) = 1` as `R` learns;
//! * the **sender frontier** — how many distinct acknowledgement values
//!   `S` has received (`DeliverToS`), its depth of knowledge about what
//!   `R` has learned.
//!
//! Each *change* of either quantity is recorded as a [`FrontierPoint`],
//! ready to export as Perfetto counter tracks
//! ([`FrontierProbe::counter_tracks`]) or telemetry JSONL
//! ([`FrontierProbe::frontier_records`]).

use stp_core::alpha::alpha;
use stp_core::data::DataSeq;
use stp_core::event::{Event, Probe, Step};
use stp_sim::telemetry::FrontierRecord;
use stp_sim::trace::CounterTrack;

/// One sample of the knowledge frontier, recorded when it moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierPoint {
    /// The step after which this frontier state holds.
    pub step: Step,
    /// Items the receiver has safely written (its learned prefix).
    pub r_written: usize,
    /// Candidate sequences still compatible with the receiver's
    /// knowledge: `α(m − r_written)`, saturated to `u128::MAX` when the
    /// alphabet is too large for the exact count.
    pub candidates: u128,
    /// Distinct acknowledgement values the sender has received.
    pub s_ack_depth: usize,
}

/// A [`Probe`] sampling the knowledge frontier online.
///
/// Attach via `WorldBuilder::probe`. The probe is protocol-agnostic: it
/// reads only the executor's event stream (writes and deliveries), so it
/// reports a sound *upper bound* on the candidate set — exactly the
/// reading the crate's soundness note prescribes for sampled knowledge.
#[derive(Debug)]
pub struct FrontierProbe {
    m: u16,
    // alphas[d] = α(m − d), precomputed; saturated on overflow.
    alphas: Vec<u128>,
    r_written: usize,
    acked: Vec<bool>,
    s_ack_depth: usize,
    points: Vec<FrontierPoint>,
}

impl FrontierProbe {
    /// Creates a probe for an alphabet of size `m`.
    pub fn new(m: u16) -> FrontierProbe {
        let alphas = (0..=m)
            .map(|d| alpha(u32::from(m - d)).unwrap_or(u128::MAX))
            .collect();
        FrontierProbe {
            m,
            alphas,
            r_written: 0,
            acked: vec![false; usize::from(m)],
            s_ack_depth: 0,
            points: Vec::new(),
        }
    }

    /// The candidate-continuation count at receiver depth `d` (clamped to
    /// the alphabet size): `α(m − d)`, saturated on overflow.
    pub fn candidates_at(&self, d: usize) -> u128 {
        let d = d.min(usize::from(self.m));
        self.alphas[d]
    }

    /// Every recorded frontier movement, in step order. The first point
    /// is the step-0 baseline (`α(m)` candidates, nothing acknowledged).
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// The frontier as Perfetto counter tracks: the receiver's candidate
    /// count (log₁₀, so `α(m)`-scale collapses render visibly) and both
    /// knowledge depths.
    pub fn counter_tracks(&self) -> Vec<CounterTrack> {
        let mut candidates = Vec::with_capacity(self.points.len());
        let mut written = Vec::with_capacity(self.points.len());
        let mut acks = Vec::with_capacity(self.points.len());
        for p in &self.points {
            candidates.push((p.step, (p.candidates as f64).log10()));
            written.push((p.step, p.r_written as f64));
            acks.push((p.step, p.s_ack_depth as f64));
        }
        vec![
            CounterTrack {
                name: "log10 candidates".to_string(),
                points: candidates,
            },
            CounterTrack {
                name: "R written".to_string(),
                points: written,
            },
            CounterTrack {
                name: "S ack depth".to_string(),
                points: acks,
            },
        ]
    }

    /// The frontier as telemetry wire records, tagged with run context.
    pub fn frontier_records(&self, experiment: &str, seed: u64) -> Vec<FrontierRecord> {
        self.points
            .iter()
            .map(|p| FrontierRecord {
                experiment: experiment.to_string(),
                seed,
                step: p.step,
                r_written: p.r_written,
                candidates: p.candidates,
                s_ack_depth: p.s_ack_depth,
            })
            .collect()
    }

    fn current(&self, step: Step) -> FrontierPoint {
        FrontierPoint {
            step,
            r_written: self.r_written,
            candidates: self.candidates_at(self.r_written),
            s_ack_depth: self.s_ack_depth,
        }
    }
}

impl Probe for FrontierProbe {
    fn on_run_start(&mut self, _input: &DataSeq) {
        self.r_written = 0;
        self.acked.iter_mut().for_each(|a| *a = false);
        self.s_ack_depth = 0;
        self.points.clear();
        self.points.push(self.current(0));
    }

    fn on_event(&mut self, _step: Step, event: &Event) {
        match *event {
            Event::Write { .. } => self.r_written += 1,
            Event::DeliverToS { msg } => {
                if let Some(seen) = self.acked.get_mut(usize::from(msg.0)) {
                    if !*seen {
                        *seen = true;
                        self.s_ack_depth += 1;
                    }
                }
            }
            _ => {}
        }
    }

    fn on_step_end(&mut self, step: Step) {
        let now = self.current(step);
        let last = self.points.last().expect("baseline recorded at run start");
        if (now.r_written, now.s_ack_depth) != (last.r_written, last.s_ack_depth) {
            self.points.push(now);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DelChannel, DropHeavyScheduler};
    use stp_protocols::{ResendPolicy, TightReceiver, TightSender};
    use stp_sim::World;

    #[test]
    fn baseline_candidates_equal_alpha_of_m() {
        for m in 0..=10u16 {
            let probe = FrontierProbe::new(m);
            assert_eq!(probe.candidates_at(0), alpha(u32::from(m)).unwrap());
            assert_eq!(probe.candidates_at(usize::from(m)), 1, "α(0) = 1");
        }
    }

    #[test]
    fn candidates_saturate_instead_of_panicking() {
        let probe = FrontierProbe::new(200);
        assert_eq!(probe.candidates_at(0), u128::MAX);
        assert_eq!(probe.candidates_at(200), 1);
    }

    #[test]
    fn frontier_collapses_as_the_run_completes() {
        let input = DataSeq::from_indices([2, 0, 3]);
        let m = 4u16;
        let mut world = World::builder(input.clone())
            .sender(Box::new(TightSender::new(
                input.clone(),
                m,
                ResendPolicy::EveryTick,
            )))
            .receiver(Box::new(TightReceiver::new(m, ResendPolicy::EveryTick)))
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(DropHeavyScheduler::new(11, 0.3, 0.6)))
            .probe(Box::new(FrontierProbe::new(m)))
            .build()
            .unwrap();
        assert!(world.run_until(20_000, World::is_complete));
        let probe = world.probe_of::<FrontierProbe>().unwrap();
        let points = probe.points();
        assert!(points.len() >= 2, "the frontier moved");
        assert_eq!(points[0].step, 0);
        assert_eq!(points[0].r_written, 0);
        assert_eq!(points[0].candidates, alpha(u32::from(m)).unwrap());
        assert_eq!(points[0].s_ack_depth, 0);
        // Candidates shrink monotonically; depths grow monotonically.
        for w in points.windows(2) {
            assert!(w[1].step > w[0].step);
            assert!(w[1].candidates <= w[0].candidates);
            assert!(w[1].r_written >= w[0].r_written);
            assert!(w[1].s_ack_depth >= w[0].s_ack_depth);
        }
        let last = points.last().unwrap();
        assert_eq!(last.r_written, input.len());
        assert_eq!(
            last.candidates,
            alpha(u32::from(m) - input.len() as u32).unwrap()
        );
        // The export shapes agree with the points.
        let tracks = probe.counter_tracks();
        assert_eq!(tracks.len(), 3);
        assert!(tracks.iter().all(|t| t.points.len() == points.len()));
        let recs = probe.frontier_records("e1", 11);
        assert_eq!(recs.len(), points.len());
        assert_eq!(recs[0].candidates, points[0].candidates);
        assert_eq!(recs[0].experiment, "e1");
    }

    #[test]
    fn probe_resets_cleanly_between_runs() {
        let input = DataSeq::from_indices([1, 0]);
        let m = 2u16;
        let mut world = World::builder(input.clone())
            .sender(Box::new(TightSender::new(
                input.clone(),
                m,
                ResendPolicy::EveryTick,
            )))
            .receiver(Box::new(TightReceiver::new(m, ResendPolicy::EveryTick)))
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(DropHeavyScheduler::new(3, 0.2, 0.7)))
            .probe(Box::new(FrontierProbe::new(m)))
            .build()
            .unwrap();
        assert!(world.run_until(10_000, World::is_complete));
        let first: Vec<FrontierPoint> =
            world.probe_of::<FrontierProbe>().unwrap().points().to_vec();
        world.reset(&input, 3);
        assert!(world.run_until(10_000, World::is_complete));
        let second = world.probe_of::<FrontierProbe>().unwrap().points();
        assert_eq!(first.as_slice(), second, "same seed ⇒ same frontier");
    }
}
