//! Learning-time extraction and universe sampling.
//!
//! The paper defines `t_i` — when the receiver first *knows* the first `i`
//! data items — and argues it is the right notion of "R learns item `i`"
//! (writing can lag knowing arbitrarily). This module extracts both the
//! epistemic `t_i` (via a [`Universe`]) and the *empirical* write steps
//! from a trace, and packages sampling helpers that build universes by
//! running a protocol family across its claimed sequences under seeded
//! adversaries.

use crate::universe::Universe;
use stp_channel::{Channel, Scheduler};
use stp_core::event::{Step, Trace};
use stp_protocols::ProtocolFamily;
use stp_sim::run_family_member;

/// The per-item learning profile of one run inside a universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearningProfile {
    /// The epistemic learning times `t_i` (1-based items; `None` = never
    /// within the horizon).
    pub t: Vec<Option<Step>>,
    /// The steps at which the receiver actually wrote each item.
    pub write_steps: Vec<Step>,
}

impl LearningProfile {
    /// Extracts the profile of run `run` in `universe`.
    pub fn of(universe: &Universe, run: usize) -> LearningProfile {
        LearningProfile {
            t: universe.learning_times(run),
            write_steps: universe.trace(run).write_steps(),
        }
    }

    /// Whether knowledge precedes (or coincides with) writing for every
    /// written item — the sanity property connecting the two notions. The
    /// receiver writes item `i` during step `w`; the knowledge point is
    /// visible from `w + 1` on (local histories cover *completed* steps),
    /// so the check is `t_i ≤ w_i + 1`.
    pub fn knowledge_precedes_writes(&self) -> bool {
        self.t.iter().zip(&self.write_steps).all(|(t, &w)| match t {
            Some(t) => *t <= w + 1,
            None => false,
        })
    }

    /// Gaps `t_i − t_{i−1}` between consecutive learning times (`None`
    /// where either endpoint is unknown). The distribution of these gaps
    /// is experiment E8's deliverable.
    pub fn learning_gaps(&self) -> Vec<Option<Step>> {
        let mut out = Vec::with_capacity(self.t.len());
        let mut prev: Option<Step> = Some(0);
        for t in &self.t {
            out.push(match (prev, t) {
                (Some(p), Some(t)) => Some(t.saturating_sub(p)),
                _ => None,
            });
            prev = *t;
        }
        out
    }
}

/// The empirical write steps of a trace (shorthand used by benches).
pub fn empirical_write_steps(trace: &Trace) -> Vec<Step> {
    trace.write_steps()
}

/// Builds a universe by running `family` on **every** sequence it claims,
/// once per scheduler seed, for exactly `steps` global steps each (equal
/// horizons keep late points comparable).
pub fn sample_universe(
    family: &dyn ProtocolFamily,
    seeds: &[u64],
    steps: Step,
    make_channel: impl Fn() -> Box<dyn Channel>,
    make_scheduler: impl Fn(u64) -> Box<dyn Scheduler>,
) -> Universe {
    let mut traces = Vec::new();
    for x in family.claimed_family().iter() {
        for &seed in seeds {
            let mut trace =
                run_family_member(family, x, make_channel(), make_scheduler(seed), steps);
            trace.set_steps(steps);
            traces.push(trace);
        }
    }
    Universe::new(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DupChannel, EagerScheduler};
    use stp_protocols::{ResendPolicy, TightFamily};

    fn tight_universe(d: u16, steps: Step) -> Universe {
        sample_universe(
            &TightFamily::new(d, ResendPolicy::Once),
            &[0],
            steps,
            || Box::new(DupChannel::new()),
            |_| Box::new(EagerScheduler::new()),
        )
    }

    #[test]
    fn tight_protocol_learning_times_exist_and_are_stable() {
        let u = tight_universe(2, 60);
        for run in 0..u.len() {
            let n = u.trace(run).input().len();
            let profile = LearningProfile::of(&u, run);
            assert_eq!(profile.t.len(), n);
            for (i, t) in profile.t.iter().enumerate() {
                assert!(t.is_some(), "run {run}: item {} never learnt", i + 1);
            }
            for i in 1..=n {
                assert!(u.is_knowledge_stable(run, i), "run {run} item {i}");
            }
        }
    }

    #[test]
    fn knowledge_precedes_writes_in_the_tight_protocol() {
        let u = tight_universe(2, 60);
        for run in 0..u.len() {
            let profile = LearningProfile::of(&u, run);
            if !profile.write_steps.is_empty() {
                assert!(
                    profile.knowledge_precedes_writes(),
                    "run {run}: {profile:?}"
                );
            }
        }
    }

    #[test]
    fn learning_gaps_have_expected_shape() {
        let p = LearningProfile {
            t: vec![Some(3), Some(7), None],
            write_steps: vec![2, 6],
        };
        assert_eq!(p.learning_gaps(), vec![Some(3), Some(4), None]);
    }

    #[test]
    fn universe_size_matches_family_times_seeds() {
        let u = sample_universe(
            &TightFamily::new(2, ResendPolicy::Once),
            &[0, 1],
            30,
            || Box::new(DupChannel::new()),
            |_| Box::new(EagerScheduler::new()),
        );
        // α(2) = 5 sequences × 2 seeds.
        assert_eq!(u.len(), 10);
    }
}
