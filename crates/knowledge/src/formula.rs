//! The paper's fact language, executable (§2.3).
//!
//! The set of *facts* is "the closure of the set of basic facts under the
//! Boolean operators and the knowledge operator `K_p` for `p ∈ {S, R}`",
//! with satisfaction
//!
//! ```text
//! (R, r, t) ⊨ K_p φ   iff   (R, r', t') ⊨ φ for all (r', t') ~_p (r, t)
//! ```
//!
//! [`Formula`] is that closure as an AST; [`Formula::eval`] is `⊨` over a
//! finite [`Universe`]. The basic facts are the ones the paper uses:
//! `x_i = d`, `|Y| ≥ n`, and "Y is a prefix of X" (its Safety clause).
//!
//! Because indistinguishability is an equivalence relation, the S5 axioms
//! hold and the tests pin them down: **truth** (`K_p φ → φ`), **positive
//! introspection** (`K_p φ → K_p K_p φ`) and **negative introspection**
//! (`¬K_p φ → K_p ¬K_p φ`).
//!
//! ```
//! use stp_core::data::DataItem;
//! use stp_core::event::ProcessId;
//! use stp_knowledge::formula::Formula;
//!
//! // "the receiver knows x₁ = 3"
//! let f = Formula::knows(ProcessId::Receiver, Formula::item_is(1, DataItem(3)));
//! assert!(format!("{f}").contains("K_R"));
//! ```

use crate::universe::Universe;
use std::fmt;
use stp_core::data::DataItem;
use stp_core::event::{ProcessId, Step};

/// A fact: the closure of the basic facts under booleans and `K_p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Basic fact `x_i = d` (1-based `i`, as in the paper).
    ItemIs {
        /// 1-based item index.
        i: usize,
        /// The asserted value.
        d: DataItem,
    },
    /// Basic fact `|Y| ≥ n` (at least `n` items written).
    OutputLenAtLeast(usize),
    /// Basic fact "`Y` is a prefix of `X`" (the Safety clause).
    OutputIsPrefix,
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// The knowledge operator `K_p φ`.
    Knows(ProcessId, Box<Formula>),
}

impl Formula {
    /// `x_i = d`.
    pub fn item_is(i: usize, d: DataItem) -> Formula {
        Formula::ItemIs { i, d }
    }

    /// `K_p φ`.
    pub fn knows(p: ProcessId, f: Formula) -> Formula {
        Formula::Knows(p, Box::new(f))
    }

    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `φ ∧ ψ`.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// `φ ∨ ψ`.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// The paper's abbreviation `K_p(x_i)` — "`p` knows the value of the
    /// `i`-th item": `⋁_{d ∈ D} K_p(x_i = d)`.
    pub fn knows_value(p: ProcessId, i: usize, domain: u16) -> Formula {
        let mut it = (0..domain).map(|d| Formula::knows(p, Formula::item_is(i, DataItem(d))));
        let first = it.next().unwrap_or(Formula::OutputLenAtLeast(usize::MAX));
        it.fold(first, Formula::or)
    }

    /// The satisfaction relation `(R, run, t) ⊨ φ` over the universe.
    pub fn eval(&self, u: &Universe, run: usize, t: Step) -> bool {
        match self {
            Formula::ItemIs { i, d } => u.trace(run).input().get(i - 1) == Some(*d),
            Formula::OutputLenAtLeast(n) => u.trace(run).output_at(t).len() >= *n,
            Formula::OutputIsPrefix => {
                let out = u.trace(run).output_at(t);
                out.is_prefix_of(u.trace(run).input())
            }
            Formula::Not(f) => !f.eval(u, run, t),
            Formula::And(a, b) => a.eval(u, run, t) && b.eval(u, run, t),
            Formula::Or(a, b) => a.eval(u, run, t) || b.eval(u, run, t),
            Formula::Knows(p, f) => (0..u.len())
                .filter(|&o| u.indistinguishable(*p, run, o, t))
                .all(|o| f.eval(u, o, t)),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::ItemIs { i, d } => write!(f, "x{i}={}", d.0),
            Formula::OutputLenAtLeast(n) => write!(f, "|Y|≥{n}"),
            Formula::OutputIsPrefix => write!(f, "Y⊑X"),
            Formula::Not(g) => write!(f, "¬({g})"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Knows(p, g) => write!(f, "K_{p}({g})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_core::alphabet::{RMsg, SMsg};
    use stp_core::data::DataSeq;
    use stp_core::event::{Event, Trace};

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    /// Two runs that diverge for R at step 2 and carry different inputs.
    fn two_run_universe() -> Universe {
        let mk = |input: &[u16], deliveries: &[u16], acks: &[u16]| {
            let mut t = Trace::new(seq(input));
            let steps = deliveries.len().max(acks.len());
            for k in 0..steps {
                if let Some(&m) = deliveries.get(k) {
                    t.record(k as Step + 1, Event::DeliverToR { msg: SMsg(m) });
                }
                if let Some(&a) = acks.get(k) {
                    t.record(k as Step + 1, Event::DeliverToS { msg: RMsg(a) });
                }
            }
            t.set_steps(6);
            t
        };
        Universe::new(vec![mk(&[5, 1], &[9, 0], &[0]), mk(&[5, 2], &[9, 1], &[0])])
    }

    #[test]
    fn basic_facts_evaluate_against_the_run() {
        let u = two_run_universe();
        assert!(Formula::item_is(1, DataItem(5)).eval(&u, 0, 0));
        assert!(!Formula::item_is(1, DataItem(4)).eval(&u, 0, 0));
        assert!(Formula::item_is(2, DataItem(1)).eval(&u, 0, 0));
        assert!(
            !Formula::item_is(3, DataItem(0)).eval(&u, 0, 0),
            "no third item"
        );
        assert!(Formula::OutputLenAtLeast(0).eval(&u, 0, 0));
        assert!(!Formula::OutputLenAtLeast(1).eval(&u, 0, 5));
        assert!(Formula::OutputIsPrefix.eval(&u, 0, 5));
    }

    #[test]
    fn knowledge_matches_knows_item() {
        let u = two_run_universe();
        for run in 0..2 {
            for t in 0..=6 {
                for i in 1..=2usize {
                    let via_formula = (0..10).any(|d| {
                        Formula::knows(ProcessId::Receiver, Formula::item_is(i, DataItem(d)))
                            .eval(&u, run, t)
                            && u.trace(run).input().get(i - 1) == Some(DataItem(d))
                    });
                    assert_eq!(
                        via_formula,
                        u.knows_item(run, t, i).is_some(),
                        "run {run}, t={t}, i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn knows_value_abbreviation_expands_correctly() {
        let u = two_run_universe();
        let f = Formula::knows_value(ProcessId::Receiver, 2, 3);
        // Before divergence (t=2): unknown; after (t=3): known.
        assert!(!f.eval(&u, 0, 2));
        assert!(f.eval(&u, 0, 3));
    }

    #[test]
    fn sender_knows_its_input_immediately() {
        let u = two_run_universe();
        let f = Formula::knows(ProcessId::Sender, Formula::item_is(2, DataItem(1)));
        assert!(f.eval(&u, 0, 0), "the input is part of S's local state");
        let g = Formula::knows(ProcessId::Sender, Formula::item_is(2, DataItem(2)));
        assert!(g.eval(&u, 1, 0));
    }

    #[test]
    fn s5_axioms_hold() {
        let u = two_run_universe();
        let atoms = [
            Formula::item_is(1, DataItem(5)),
            Formula::item_is(2, DataItem(1)),
            Formula::OutputLenAtLeast(1),
            Formula::OutputIsPrefix,
        ];
        for p in [ProcessId::Sender, ProcessId::Receiver] {
            for atom in &atoms {
                for run in 0..2 {
                    for t in 0..=6 {
                        let k = Formula::knows(p, atom.clone());
                        // Truth: K φ → φ.
                        if k.eval(&u, run, t) {
                            assert!(atom.eval(&u, run, t), "truth axiom: {k} at ({run},{t})");
                            // Positive introspection: K φ → K K φ.
                            assert!(
                                Formula::knows(p, k.clone()).eval(&u, run, t),
                                "positive introspection: {k}"
                            );
                        } else {
                            // Negative introspection: ¬K φ → K ¬K φ.
                            assert!(
                                Formula::knows(p, Formula::not(k.clone())).eval(&u, run, t),
                                "negative introspection: {k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nested_cross_agent_knowledge() {
        // After R's histories diverge (t ≥ 3), R knows x₂; does S know
        // that R knows? S's history also differs across the runs only via
        // ack deliveries — with the same ack stream S cannot tell the two
        // runs apart… but S-indistinguishability also requires equal
        // inputs, and the inputs differ, so S (knowing its input) knows
        // everything R could ever learn about it.
        let u = two_run_universe();
        let r_knows = Formula::knows_value(ProcessId::Receiver, 2, 3);
        let s_knows_r_knows = Formula::knows(ProcessId::Sender, r_knows.clone());
        assert!(r_knows.eval(&u, 0, 3));
        assert!(s_knows_r_knows.eval(&u, 0, 3));
        // At t = 2, R does not know — and S knows that R does not know.
        assert!(!r_knows.eval(&u, 0, 2));
        assert!(Formula::knows(ProcessId::Sender, Formula::not(r_knows)).eval(&u, 0, 2));
    }

    #[test]
    fn display_renders_readably() {
        let f = Formula::knows(
            ProcessId::Receiver,
            Formula::and(
                Formula::item_is(1, DataItem(0)),
                Formula::not(Formula::OutputLenAtLeast(2)),
            ),
        );
        assert_eq!(f.to_string(), "K_R((x1=0 ∧ ¬(|Y|≥2)))");
    }
}
