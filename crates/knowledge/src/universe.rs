//! Run universes and the indistinguishability / knowledge machinery.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use stp_core::data::DataItem;
use stp_core::event::{LocalStep, ProcessId, Step, Trace};

/// A finite set of recorded runs standing in for the system's run set.
#[derive(Debug, Clone)]
pub struct Universe {
    traces: Vec<Trace>,
    /// Per run: the receiver's full local history, one entry per step.
    r_histories: Vec<Vec<LocalStep>>,
    /// Per run: rolling hashes of receiver-history prefixes;
    /// `r_hashes[run][t]` covers steps `0..t`.
    r_hashes: Vec<Vec<u64>>,
    /// Per run: the sender's full local history.
    s_histories: Vec<Vec<LocalStep>>,
    /// Per run: rolling hashes of sender-history prefixes. Note that the
    /// sender's local state conceptually includes its input tape, which a
    /// bare event history does not capture — so sender indistinguishability
    /// additionally compares the inputs (see
    /// [`Universe::indistinguishable`]).
    s_hashes: Vec<Vec<u64>>,
}

fn hash_step(prev: u64, step: &LocalStep) -> u64 {
    let mut h = DefaultHasher::new();
    prev.hash(&mut h);
    step.received.hash(&mut h);
    step.sent.hash(&mut h);
    step.tape.hash(&mut h);
    h.finish()
}

fn index_histories(traces: &[Trace], p: ProcessId) -> (Vec<Vec<LocalStep>>, Vec<Vec<u64>>) {
    let mut histories = Vec::with_capacity(traces.len());
    let mut hash_chains = Vec::with_capacity(traces.len());
    for t in traces {
        let hist = t.local_history(p, t.steps());
        let mut hashes = Vec::with_capacity(hist.len() + 1);
        hashes.push(0u64);
        let mut acc = 0u64;
        for step in &hist {
            acc = hash_step(acc, step);
            hashes.push(acc);
        }
        histories.push(hist);
        hash_chains.push(hashes);
    }
    (histories, hash_chains)
}

impl Universe {
    /// Builds a universe from recorded traces.
    pub fn new(traces: Vec<Trace>) -> Self {
        let (r_histories, r_hashes) = index_histories(&traces, ProcessId::Receiver);
        let (s_histories, s_hashes) = index_histories(&traces, ProcessId::Sender);
        Universe {
            traces,
            r_histories,
            r_hashes,
            s_histories,
            s_hashes,
        }
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the universe holds no runs.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The traces.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// The trace of run `run`.
    pub fn trace(&self, run: usize) -> &Trace {
        &self.traces[run]
    }

    /// Whether processor `p` cannot tell apart `(run, t)` and `(other, t)`
    /// — equality of `p`'s local histories up to (excluding) step `t`,
    /// and, for the sender (whose local state includes its input tape),
    /// equality of the inputs.
    ///
    /// Points beyond a run's recorded horizon do not exist in the universe
    /// and are never indistinguishable from anything.
    pub fn indistinguishable(&self, p: ProcessId, run: usize, other: usize, t: Step) -> bool {
        let (histories, hashes) = match p {
            ProcessId::Receiver => (&self.r_histories, &self.r_hashes),
            ProcessId::Sender => {
                if self.traces[run].input() != self.traces[other].input() {
                    return false;
                }
                (&self.s_histories, &self.s_hashes)
            }
        };
        let t = t as usize;
        if t > histories[run].len() || t > histories[other].len() {
            return false;
        }
        hashes[run][t] == hashes[other][t] && histories[run][..t] == histories[other][..t]
    }

    /// Whether the receiver cannot tell apart `(run, t)` and `(other, t)` —
    /// equality of receiver local histories up to (excluding) step `t`.
    pub fn r_indistinguishable(&self, run: usize, other: usize, t: Step) -> bool {
        self.indistinguishable(ProcessId::Receiver, run, other, t)
    }

    /// All runs whose time-`t` points the receiver cannot tell apart from
    /// `(run, t)` (including `run` itself).
    pub fn indistinguishability_class(&self, run: usize, t: Step) -> Vec<usize> {
        (0..self.traces.len())
            .filter(|&o| self.r_indistinguishable(run, o, t))
            .collect()
    }

    /// `K_R(x_i)` at `(run, t)`: the value `d` such that the receiver knows
    /// `x_i = d` (1-based `i`), or `None` when some indistinguishable point
    /// disagrees (or lacks an `i`-th item).
    pub fn knows_item(&self, run: usize, t: Step, i: usize) -> Option<DataItem> {
        debug_assert!(i >= 1, "items are 1-based, following the paper");
        let own = self.traces[run].input().get(i - 1)?;
        for other in 0..self.traces.len() {
            if !self.r_indistinguishable(run, other, t) {
                continue;
            }
            match self.traces[other].input().get(i - 1) {
                Some(d) if d == own => {}
                _ => return None,
            }
        }
        Some(own)
    }

    /// `⋀_{j=1..i} K_R(x_j)` at `(run, t)`.
    pub fn knows_prefix(&self, run: usize, t: Step, i: usize) -> bool {
        (1..=i).all(|j| self.knows_item(run, t, j).is_some())
    }

    /// The paper's `t_i` for every `i` up to the input length: the minimal
    /// `t` at which the receiver knows the first `i` items, or `None` if it
    /// never does within the recorded horizon.
    pub fn learning_times(&self, run: usize) -> Vec<Option<Step>> {
        let n = self.traces[run].input().len();
        let horizon = self.traces[run].steps();
        let mut out = Vec::with_capacity(n);
        let mut from: Step = 0;
        for i in 1..=n {
            // t_i is monotone in i, so resume scanning where t_{i-1} left
            // off.
            let mut found = None;
            for t in from..=horizon {
                if self.knows_prefix(run, t, i) {
                    found = Some(t);
                    from = t;
                    break;
                }
            }
            if found.is_none() {
                from = horizon + 1;
            }
            out.push(found);
        }
        out
    }

    /// Checks stability of `K_R(x_i)` along `run`: once known, the value
    /// stays known and unchanged at every later recorded point.
    pub fn is_knowledge_stable(&self, run: usize, i: usize) -> bool {
        let horizon = self.traces[run].steps();
        let mut seen: Option<DataItem> = None;
        for t in 0..=horizon {
            match (seen, self.knows_item(run, t, i)) {
                (None, Some(d)) => seen = Some(d),
                (Some(d), Some(d2)) if d == d2 => {}
                (Some(_), _) => return false,
                (None, None) => {}
            }
        }
        true
    }

    /// Renders the time-`t` slice of the receiver's Kripke structure as
    /// Graphviz DOT: one node per run (labelled with its input and output
    /// so far), one cluster per indistinguishability class. Feed it to
    /// `dot -Tsvg` to *see* the paper's possible-worlds semantics.
    pub fn to_dot(&self, t: Step) -> String {
        let mut out = String::from("graph kripke {\n  rankdir=LR;\n  node [shape=box];\n");
        for (c, class) in self.classes_at(t).iter().enumerate() {
            out.push_str(&format!(
                "  subgraph cluster_{c} {{\n    label=\"class {c}\";\n"
            ));
            for &run in class {
                let trace = &self.traces[run];
                out.push_str(&format!(
                    "    r{run} [label=\"run {run}\\nX={}\\nY={}\"];\n",
                    trace.input(),
                    trace.output_at(t)
                ));
            }
            // Indistinguishability edges within the class (a clique; we
            // draw the path to keep the picture readable).
            for w in class.windows(2) {
                out.push_str(&format!("    r{} -- r{};\n", w[0], w[1]));
            }
            out.push_str("  }\n");
        }
        out.push_str("}\n");
        out
    }

    /// Groups all runs by their receiver-history hash at time `t` —
    /// useful for spotting indistinguishable clusters in experiments.
    pub fn classes_at(&self, t: Step) -> Vec<Vec<usize>> {
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
        for run in 0..self.traces.len() {
            let tt = t as usize;
            if tt > self.r_histories[run].len() {
                continue;
            }
            by_hash.entry(self.r_hashes[run][tt]).or_default().push(run);
        }
        let mut classes: Vec<Vec<usize>> = by_hash.into_values().collect();
        classes.sort();
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_core::alphabet::SMsg;
    use stp_core::data::DataSeq;
    use stp_core::event::Event;

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    /// A trace where R receives `msgs[k]` at step `k+1` (one per step).
    fn trace_with_deliveries(input: &[u16], msgs: &[u16], steps: Step) -> Trace {
        let mut t = Trace::new(seq(input));
        for (k, &m) in msgs.iter().enumerate() {
            t.record(k as Step + 1, Event::DeliverToR { msg: SMsg(m) });
        }
        t.set_steps(steps);
        t
    }

    #[test]
    fn identical_histories_are_indistinguishable() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[0, 1], &[7], 5),
            trace_with_deliveries(&[0, 2], &[7], 5),
        ]);
        for t in 0..=5 {
            assert!(u.r_indistinguishable(0, 1, t), "t={t}");
        }
        assert_eq!(u.indistinguishability_class(0, 3), vec![0, 1]);
    }

    #[test]
    fn diverging_histories_split_at_the_divergence() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[0, 1], &[7, 3], 5),
            trace_with_deliveries(&[0, 2], &[7, 4], 5),
        ]);
        assert!(u.r_indistinguishable(0, 1, 2)); // only ⟨7⟩ seen by then
        assert!(!u.r_indistinguishable(0, 1, 3)); // 3 vs 4 at step 2
    }

    #[test]
    fn knowledge_requires_agreement_of_the_whole_class() {
        // Two runs indistinguishable forever, inputs agree on x₁ but not x₂.
        let u = Universe::new(vec![
            trace_with_deliveries(&[5, 1], &[9], 10),
            trace_with_deliveries(&[5, 2], &[9], 10),
        ]);
        assert_eq!(u.knows_item(0, 10, 1), Some(DataItem(5)));
        assert_eq!(u.knows_item(0, 10, 2), None);
        assert!(u.knows_prefix(0, 10, 1));
        assert!(!u.knows_prefix(0, 10, 2));
    }

    #[test]
    fn knowledge_emerges_when_histories_diverge() {
        // Runs share step 1 but diverge at step 2.
        let u = Universe::new(vec![
            trace_with_deliveries(&[5, 1], &[9, 0], 10),
            trace_with_deliveries(&[5, 2], &[9, 1], 10),
        ]);
        assert_eq!(u.knows_item(0, 2, 2), None, "still clustered at t=2");
        assert_eq!(u.knows_item(0, 3, 2), Some(DataItem(1)), "split at t=3");
    }

    #[test]
    fn learning_times_are_monotone_and_match_divergence() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[5, 1], &[9, 0], 10),
            trace_with_deliveries(&[5, 2], &[9, 1], 10),
            trace_with_deliveries(&[6, 2], &[8, 1], 10),
        ]);
        let lt = u.learning_times(0);
        // x₁ = 5 is known once run 2 (input 6…) is distinguishable — that
        // happens at t=2 (8 vs 9 delivered at step 1).
        assert_eq!(lt[0], Some(2));
        // x₂ = 1 needs run 1 distinguished too: t=3.
        assert_eq!(lt[1], Some(3));
        let pairs: Vec<_> = lt.windows(2).collect();
        for w in pairs {
            if let (Some(a), Some(b)) = (w[0], w[1]) {
                assert!(a <= b, "t_i must be monotone");
            }
        }
    }

    #[test]
    fn never_learnt_items_return_none() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[1], &[], 4),
            trace_with_deliveries(&[0], &[], 4),
        ]);
        assert_eq!(u.learning_times(0), vec![None]);
    }

    #[test]
    fn singleton_universe_knows_everything_vacuously() {
        // With one run, the class is a singleton and R "knows" the input
        // immediately — the honest illustration of the sampling caveat.
        let u = Universe::new(vec![trace_with_deliveries(&[3, 1, 4], &[], 2)]);
        assert_eq!(u.knows_item(0, 0, 3), Some(DataItem(4)));
    }

    #[test]
    fn stability_holds_for_diverging_universes() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[5, 1], &[9, 0], 10),
            trace_with_deliveries(&[5, 2], &[9, 1], 10),
        ]);
        assert!(u.is_knowledge_stable(0, 1));
        assert!(u.is_knowledge_stable(0, 2));
    }

    #[test]
    fn classes_at_partitions_runs() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[0], &[1], 5),
            trace_with_deliveries(&[1], &[1], 5),
            trace_with_deliveries(&[2], &[2], 5),
        ]);
        let classes = u.classes_at(2);
        assert_eq!(classes.len(), 2);
        assert!(classes.contains(&vec![0, 1]));
        assert!(classes.contains(&vec![2]));
        // At t=0 everyone clusters.
        assert_eq!(u.classes_at(0), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dot_export_contains_every_run_and_class() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[0], &[1], 5),
            trace_with_deliveries(&[1], &[1], 5),
            trace_with_deliveries(&[2], &[2], 5),
        ]);
        let dot = u.to_dot(2);
        assert!(dot.starts_with("graph kripke"));
        for run in 0..3 {
            assert!(dot.contains(&format!("r{run} [label=")), "{dot}");
        }
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(!dot.contains("cluster_2"), "only two classes at t=2");
        // The indistinguishable pair is connected.
        assert!(dot.contains("r0 -- r1"));
    }

    #[test]
    fn sender_indistinguishability_requires_equal_inputs() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[5, 1], &[], 5),
            trace_with_deliveries(&[5, 2], &[], 5),
            trace_with_deliveries(&[5, 1], &[], 5),
        ]);
        use stp_core::event::ProcessId;
        // Same input, same (empty) history: indistinguishable to S.
        assert!(u.indistinguishable(ProcessId::Sender, 0, 2, 3));
        // Different inputs: never, even with identical event histories.
        assert!(!u.indistinguishable(ProcessId::Sender, 0, 1, 3));
        // R, by contrast, confuses all three.
        assert!(u.indistinguishable(ProcessId::Receiver, 0, 1, 0));
    }

    #[test]
    fn short_runs_have_no_late_points() {
        let u = Universe::new(vec![
            trace_with_deliveries(&[0], &[], 2),
            trace_with_deliveries(&[0], &[], 9),
        ]);
        assert!(u.r_indistinguishable(0, 1, 2));
        assert!(!u.r_indistinguishable(0, 1, 5), "run 0 has no point at 5");
    }
}
