//! Phase-scoped hot-path profiler: attributes engine busy time to named
//! phases (scheduler decision, per-channel-kind delivery/expiry, sender
//! step, receiver step, probe dispatch, telemetry sink, …) with
//! monotonic scoped timers, and meters allocations per phase when the
//! counting allocator from the `stp-prof` crate is installed.
//!
//! # Design
//!
//! The hot path (`World::step`, `SessionEngine::step_slot_once`) runs in
//! ~tens of nanoseconds; a [`std::time::Instant`] read costs about half
//! that, so timing every phase of every step would multiply the cost of
//! the thing being measured. The profiler therefore *samples*: every
//! [`period`](PhaseProfiler::period)-th unit of work (a slot quantum in
//! the session engine, a whole run in the sweep engine) becomes a
//! **window**. Inside a window a `ProfObs` takes one timestamp per
//! phase *boundary* — consecutive marks, so `N` phases cost `N + 1`
//! clock reads, not `2N` — and accumulates per-phase nanoseconds in
//! plain thread-local arrays. When the window closes, the tallies are
//! flushed into per-phase [`AtomicHistogram`]s (the PR 8 fleet layout:
//! exponential power-of-two edges, relaxed atomics, snapshot-merge
//! semantics) exactly once. Unsampled work runs the byte-identical
//! unprofiled code path, so profiling changes *observed* time only, not
//! behaviour — result digests with profiling on equal digests with it
//! off (see `tests/prof_parity.rs`).
//!
//! Allocation metering is opt-in at link time: the `stp-prof` crate's
//! `CountingAlloc` global allocator calls [`note_alloc`] on every
//! allocation, which charges the current thread's active phase (set by
//! the scoped timers while a window is open, [`Phase::COUNT`]
//! otherwise — the "unattributed" slot). Without that allocator
//! installed, [`note_alloc`] is never called and every alloc figure
//! reports zero with [`ProfRecord::alloc_metered`] false.
//!
//! Everything here is observation: no profiler state feeds back into
//! scheduling, delivery, or protocol decisions.

use crate::fleet::{AtomicHistogram, NO_SAMPLES};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use stp_channel::ChannelSpec;

/// An engine phase the profiler can charge time (and allocations) to.
///
/// The taxonomy follows the step structure shared by
/// [`World::step`](crate::world::World::step) and `SessionEngine::step_slot_once`:
/// scheduler decision, channel work split by kind and by direction of
/// cost (delivery vs expiry), the two protocol half-steps, then the
/// engine-side phases that only some drivers have (probe dispatch,
/// admission, retirement, telemetry). `Bookkeeping` absorbs everything
/// between named regions — loop control, scratch clears, step counters —
/// so a window's phase nanoseconds always sum to the window span and
/// coverage is checkable rather than assumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Scheduler `note_progress` + `decide`.
    SchedulerDecide,
    /// Delivery-side channel work on a [`ChannelSpec::Dup`] channel:
    /// deletions, corruptions, dequeues, and send enqueues.
    DeliverDup,
    /// Delivery-side channel work on a [`ChannelSpec::Del`] channel.
    DeliverDel,
    /// Delivery-side channel work on a [`ChannelSpec::Fifo`] channel.
    DeliverFifo,
    /// Delivery-side channel work on a [`ChannelSpec::LossyFifo`] channel.
    DeliverLossyFifo,
    /// Delivery-side channel work on a [`ChannelSpec::Perfect`] channel.
    DeliverPerfect,
    /// Delivery-side channel work on a [`ChannelSpec::Timed`] channel.
    DeliverTimed,
    /// Sender automaton: event construction and `on_event`, plus input
    /// tape reads.
    SenderStep,
    /// Receiver automaton: event construction and `on_event`, plus
    /// output tape writes.
    ReceiverStep,
    /// Expiry-side channel work on a [`ChannelSpec::Dup`] channel:
    /// `tick`, `take_expirations`, and expiry recording.
    ExpireDup,
    /// Expiry-side channel work on a [`ChannelSpec::Del`] channel.
    ExpireDel,
    /// Expiry-side channel work on a [`ChannelSpec::Fifo`] channel.
    ExpireFifo,
    /// Expiry-side channel work on a [`ChannelSpec::LossyFifo`] channel.
    ExpireLossyFifo,
    /// Expiry-side channel work on a [`ChannelSpec::Perfect`] channel.
    ExpirePerfect,
    /// Expiry-side channel work on a [`ChannelSpec::Timed`] channel.
    ExpireTimed,
    /// Probe fan-out at the end of a [`World`](crate::world::World) step.
    ProbeDispatch,
    /// Session-engine admission: draining the submit queue into free
    /// slots at the top of a round.
    Admission,
    /// Session-engine retirement: recycling a finished slot's columns.
    Retire,
    /// Telemetry sink writes (JSONL emission) timed via
    /// [`PhaseProfiler::time`].
    TelemetrySink,
    /// Everything between named regions: loop control, scratch clears,
    /// step counters, completion checks.
    Bookkeeping,
}

impl Phase {
    /// Number of phases; also the "unattributed" allocation slot index.
    pub const COUNT: usize = 20;

    /// Every phase, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::SchedulerDecide,
        Phase::DeliverDup,
        Phase::DeliverDel,
        Phase::DeliverFifo,
        Phase::DeliverLossyFifo,
        Phase::DeliverPerfect,
        Phase::DeliverTimed,
        Phase::SenderStep,
        Phase::ReceiverStep,
        Phase::ExpireDup,
        Phase::ExpireDel,
        Phase::ExpireFifo,
        Phase::ExpireLossyFifo,
        Phase::ExpirePerfect,
        Phase::ExpireTimed,
        Phase::ProbeDispatch,
        Phase::Admission,
        Phase::Retire,
        Phase::TelemetrySink,
        Phase::Bookkeeping,
    ];

    /// Stable snake_case name, used in telemetry, folded stacks, and
    /// Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SchedulerDecide => "scheduler_decide",
            Phase::DeliverDup => "deliver_dup",
            Phase::DeliverDel => "deliver_del",
            Phase::DeliverFifo => "deliver_fifo",
            Phase::DeliverLossyFifo => "deliver_lossy_fifo",
            Phase::DeliverPerfect => "deliver_perfect",
            Phase::DeliverTimed => "deliver_timed",
            Phase::SenderStep => "sender_step",
            Phase::ReceiverStep => "receiver_step",
            Phase::ExpireDup => "expire_dup",
            Phase::ExpireDel => "expire_del",
            Phase::ExpireFifo => "expire_fifo",
            Phase::ExpireLossyFifo => "expire_lossy_fifo",
            Phase::ExpirePerfect => "expire_perfect",
            Phase::ExpireTimed => "expire_timed",
            Phase::ProbeDispatch => "probe_dispatch",
            Phase::Admission => "admission",
            Phase::Retire => "retire",
            Phase::TelemetrySink => "telemetry_sink",
            Phase::Bookkeeping => "bookkeeping",
        }
    }

    /// Dense index into per-phase arrays (`0..COUNT`).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The delivery-side phase for a channel kind.
pub fn delivery_phase(spec: &ChannelSpec) -> Phase {
    match spec {
        ChannelSpec::Dup => Phase::DeliverDup,
        ChannelSpec::Del => Phase::DeliverDel,
        ChannelSpec::Fifo => Phase::DeliverFifo,
        ChannelSpec::LossyFifo => Phase::DeliverLossyFifo,
        ChannelSpec::Perfect => Phase::DeliverPerfect,
        ChannelSpec::Timed { .. } => Phase::DeliverTimed,
    }
}

/// The expiry-side phase for a channel kind.
pub fn expiry_phase(spec: &ChannelSpec) -> Phase {
    match spec {
        ChannelSpec::Dup => Phase::ExpireDup,
        ChannelSpec::Del => Phase::ExpireDel,
        ChannelSpec::Fifo => Phase::ExpireFifo,
        ChannelSpec::LossyFifo => Phase::ExpireLossyFifo,
        ChannelSpec::Perfect => Phase::ExpirePerfect,
        ChannelSpec::Timed { .. } => Phase::ExpireTimed,
    }
}

// ---------------------------------------------------------------------
// Allocation metering.
//
// The counting global allocator (crates/prof) calls `note_alloc` from
// inside `GlobalAlloc::alloc`; these statics and the thread-local are
// therefore the only state it touches, and `note_alloc` must never
// allocate. One extra slot past `Phase::COUNT` collects allocations made
// while no profiling window is open on the calling thread.

const ALLOC_SLOTS: usize = Phase::COUNT + 1;

/// Slot charged when no phase is active on the calling thread.
const UNATTRIBUTED: usize = Phase::COUNT;

static ALLOC_CALLS: [AtomicU64; ALLOC_SLOTS] = [const { AtomicU64::new(0) }; ALLOC_SLOTS];
static ALLOC_BYTES: [AtomicU64; ALLOC_SLOTS] = [const { AtomicU64::new(0) }; ALLOC_SLOTS];

thread_local! {
    static CURRENT_PHASE: Cell<usize> = const { Cell::new(UNATTRIBUTED) };
}

/// Records one heap allocation of `bytes` against the calling thread's
/// active phase (the unattributed slot when no window is open).
///
/// Called by the `stp-prof` counting global allocator; **must not
/// allocate** (it runs inside `GlobalAlloc::alloc`).
#[inline]
pub fn note_alloc(bytes: usize) {
    let slot = CURRENT_PHASE.with(Cell::get);
    ALLOC_CALLS[slot].fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES[slot].fetch_add(bytes as u64, Ordering::Relaxed);
}

fn alloc_totals() -> ([u64; ALLOC_SLOTS], [u64; ALLOC_SLOTS]) {
    let mut calls = [0u64; ALLOC_SLOTS];
    let mut bytes = [0u64; ALLOC_SLOTS];
    for i in 0..ALLOC_SLOTS {
        calls[i] = ALLOC_CALLS[i].load(Ordering::Relaxed);
        bytes[i] = ALLOC_BYTES[i].load(Ordering::Relaxed);
    }
    (calls, bytes)
}

// ---------------------------------------------------------------------
// The profiler proper.

/// Per-window-nanosecond bucket edges: the PR 8 exponential layout
/// (power-of-two edges) stretched to nanosecond scale — 32 edges from
/// 16 ns to ~34 s cover a single sampled slot quantum up to a whole
/// profiled sweep run.
fn phase_window_bounds() -> Vec<f64> {
    let mut edge = 16.0;
    (0..32)
        .map(|_| {
            let e = edge;
            edge *= 2.0;
            e
        })
        .collect()
}

/// Aggregated phase timings for one profiled workload: per-phase
/// [`AtomicHistogram`]s of window nanoseconds plus exact totals, shared
/// across worker threads behind an `Arc` and drained into a
/// [`ProfRecord`] by [`report`](PhaseProfiler::report).
///
/// All counters use relaxed atomics — the profiler is telemetry, not
/// synchronization.
#[derive(Debug)]
pub struct PhaseProfiler {
    period: u64,
    hists: Vec<AtomicHistogram>,
    total_ns: Vec<AtomicU64>,
    calls: Vec<AtomicU64>,
    busy_ns: AtomicU64,
    windows: AtomicU64,
    alloc_base_calls: [u64; ALLOC_SLOTS],
    alloc_base_bytes: [u64; ALLOC_SLOTS],
}

impl PhaseProfiler {
    /// Default sampling period: one window per 128 units of work keeps
    /// the measured overhead on the ~40 ns step hot path well under the
    /// 5% `PROF_BUDGET` CI gate.
    pub const DEFAULT_PERIOD: u64 = 128;

    /// Creates a profiler sampling every `period`-th unit of work
    /// (`period = 1` profiles everything).
    ///
    /// Allocation counters are global; the constructor snapshots them so
    /// the report only shows allocations made after this profiler was
    /// created.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> PhaseProfiler {
        assert!(period > 0, "sampling period must be at least 1");
        let (alloc_base_calls, alloc_base_bytes) = alloc_totals();
        PhaseProfiler {
            period,
            hists: (0..Phase::COUNT)
                .map(|_| AtomicHistogram::new(phase_window_bounds()))
                .collect(),
            total_ns: (0..Phase::COUNT).map(|_| AtomicU64::new(0)).collect(),
            calls: (0..Phase::COUNT).map(|_| AtomicU64::new(0)).collect(),
            busy_ns: AtomicU64::new(0),
            windows: AtomicU64::new(0),
            alloc_base_calls,
            alloc_base_bytes,
        }
    }

    /// The sampling period this profiler was created with.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Whether the `tick`-th unit of work should be a profiled window.
    #[inline]
    pub fn sample(&self, tick: u64) -> bool {
        tick.is_multiple_of(self.period)
    }

    /// Times `f` as one standalone window attributed entirely to
    /// `phase` — the coarse-grained entry point for phases outside the
    /// step loop (telemetry sinks, admission drains, retirement).
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let prev = CURRENT_PHASE.with(|c| c.replace(phase.index()));
        let out = f();
        CURRENT_PHASE.with(|c| c.set(prev));
        let ns = start.elapsed().as_nanos() as u64;
        let i = phase.index();
        self.hists[i].record(ns);
        self.total_ns[i].fetch_add(ns, Ordering::Relaxed);
        self.calls[i].fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.windows.fetch_add(1, Ordering::Relaxed);
        out
    }

    fn flush(&self, ns: &[u64; Phase::COUNT], hits: &[u64; Phase::COUNT], window_ns: u64) {
        for i in 0..Phase::COUNT {
            if hits[i] > 0 || ns[i] > 0 {
                self.hists[i].record(ns[i]);
                self.total_ns[i].fetch_add(ns[i], Ordering::Relaxed);
                self.calls[i].fetch_add(hits[i], Ordering::Relaxed);
            }
        }
        self.busy_ns.fetch_add(window_ns, Ordering::Relaxed);
        self.windows.fetch_add(1, Ordering::Relaxed);
    }

    /// Drains the profiler into a serializable [`ProfRecord`] tagged
    /// with the experiment and workload names. Non-destructive: counters
    /// keep accumulating and a later report includes earlier windows.
    pub fn report(&self, experiment: &str, workload: &str) -> ProfRecord {
        let (alloc_calls_now, alloc_bytes_now) = alloc_totals();
        let busy_ns = self.busy_ns.load(Ordering::Relaxed);
        let mut attributed_ns = 0u64;
        let mut phases = Vec::new();
        let mut allocs_total = 0u64;
        let mut alloc_bytes_total = 0u64;
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let total = self.total_ns[i].load(Ordering::Relaxed);
            let calls = self.calls[i].load(Ordering::Relaxed);
            let allocs = alloc_calls_now[i].saturating_sub(self.alloc_base_calls[i]);
            let alloc_bytes = alloc_bytes_now[i].saturating_sub(self.alloc_base_bytes[i]);
            attributed_ns += total;
            allocs_total += allocs;
            alloc_bytes_total += alloc_bytes;
            if total == 0 && calls == 0 && allocs == 0 {
                continue;
            }
            let hist = self.hists[i].snapshot();
            let (p50, p99) = if hist.count == 0 {
                (NO_SAMPLES, NO_SAMPLES)
            } else {
                (hist.quantile(0.50), hist.quantile(0.99))
            };
            phases.push(ProfPhase {
                phase: phase.name().to_string(),
                calls,
                windows: hist.count,
                total_ns: total,
                share: if busy_ns == 0 {
                    0.0
                } else {
                    total as f64 / busy_ns as f64
                },
                p50_window_ns: p50,
                p99_window_ns: p99,
                allocs,
                alloc_bytes,
            });
        }
        // The unattributed slot counts toward run totals but has no
        // named phase row.
        allocs_total +=
            alloc_calls_now[UNATTRIBUTED].saturating_sub(self.alloc_base_calls[UNATTRIBUTED]);
        alloc_bytes_total +=
            alloc_bytes_now[UNATTRIBUTED].saturating_sub(self.alloc_base_bytes[UNATTRIBUTED]);
        phases.sort_by_key(|p| std::cmp::Reverse(p.total_ns));
        ProfRecord {
            experiment: experiment.to_string(),
            workload: workload.to_string(),
            period: self.period,
            windows: self.windows.load(Ordering::Relaxed),
            busy_ns,
            attributed_ns,
            coverage: if busy_ns == 0 {
                NO_SAMPLES
            } else {
                attributed_ns as f64 / busy_ns as f64
            },
            alloc_metered: allocs_total > 0,
            allocs_total,
            alloc_bytes_total,
            phases,
        }
    }
}

impl Default for PhaseProfiler {
    fn default() -> PhaseProfiler {
        PhaseProfiler::new(PhaseProfiler::DEFAULT_PERIOD)
    }
}

// ---------------------------------------------------------------------
// The per-window observer.

/// The zero-cost hook the generic step bodies call at phase boundaries:
/// [`NoObs`] compiles marks away entirely (the unprofiled hot path),
/// [`ProfObs`] timestamps them (one sampled window).
pub(crate) trait StepObs {
    /// Close the current phase at "now" and enter `next`.
    fn mark(&mut self, next: Phase);
}

/// The no-op observer: monomorphizes every `mark` to nothing, so the
/// unprofiled step path is byte-identical to the pre-profiler code.
pub(crate) struct NoObs;

impl StepObs for NoObs {
    #[inline(always)]
    fn mark(&mut self, _next: Phase) {}
}

/// One open profiling window: consecutive boundary timestamps
/// accumulating per-phase nanoseconds in plain arrays, flushed into the
/// shared [`PhaseProfiler`] exactly once by [`finish`](ProfObs::finish).
pub(crate) struct ProfObs {
    start: Instant,
    last: Instant,
    current: usize,
    ns: [u64; Phase::COUNT],
    hits: [u64; Phase::COUNT],
}

impl ProfObs {
    /// Opens a window; time before the first mark is `Bookkeeping`.
    pub(crate) fn begin() -> ProfObs {
        let now = Instant::now();
        CURRENT_PHASE.with(|c| c.set(Phase::Bookkeeping.index()));
        let mut hits = [0u64; Phase::COUNT];
        hits[Phase::Bookkeeping.index()] = 1;
        ProfObs {
            start: now,
            last: now,
            current: Phase::Bookkeeping.index(),
            ns: [0; Phase::COUNT],
            hits,
        }
    }

    /// Closes the window and flushes the tallies into `prof`.
    pub(crate) fn finish(mut self, prof: &PhaseProfiler) {
        let now = Instant::now();
        self.ns[self.current] += (now - self.last).as_nanos() as u64;
        let window_ns = (now - self.start).as_nanos() as u64;
        CURRENT_PHASE.with(|c| c.set(UNATTRIBUTED));
        prof.flush(&self.ns, &self.hits, window_ns);
    }
}

impl StepObs for ProfObs {
    #[inline]
    fn mark(&mut self, next: Phase) {
        let now = Instant::now();
        self.ns[self.current] += (now - self.last).as_nanos() as u64;
        self.last = now;
        self.current = next.index();
        self.hits[self.current] += 1;
        CURRENT_PHASE.with(|c| c.set(self.current));
    }
}

// ---------------------------------------------------------------------
// Wire form and exports.

/// One named phase's share of a [`ProfRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfPhase {
    /// Stable snake_case phase name ([`Phase::name`]).
    pub phase: String,
    /// Times the phase was entered across all windows.
    pub calls: u64,
    /// Windows in which the phase appeared (histogram sample count).
    pub windows: u64,
    /// Total nanoseconds attributed to the phase.
    pub total_ns: u64,
    /// `total_ns / busy_ns` — fraction of measured busy time.
    pub share: f64,
    /// Median per-window nanoseconds, [`NO_SAMPLES`] when unobserved.
    pub p50_window_ns: f64,
    /// 99th-percentile per-window nanoseconds, [`NO_SAMPLES`] when
    /// unobserved.
    pub p99_window_ns: f64,
    /// Heap allocations charged to the phase (0 unless the counting
    /// allocator is installed).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// The self-describing profiler report: the payload of a `{"prof": …}`
/// telemetry line and the input to the folded-stack and Prometheus
/// exports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfRecord {
    /// Experiment / binary that produced the record.
    pub experiment: String,
    /// Workload label (e.g. `e1_grid`, `churn`).
    pub workload: String,
    /// Sampling period (1 = every unit of work profiled).
    pub period: u64,
    /// Profiled windows flushed.
    pub windows: u64,
    /// Total measured busy nanoseconds (sum of window spans).
    pub busy_ns: u64,
    /// Nanoseconds attributed to named phases.
    pub attributed_ns: u64,
    /// `attributed_ns / busy_ns`; [`NO_SAMPLES`] before any window
    /// closes. By construction ≈ 1.0 — the acceptance gate checks
    /// ≥ 0.95 so an uninstrumented early-exit path cannot silently
    /// leak time.
    pub coverage: f64,
    /// Whether the counting allocator was live (any allocation seen).
    pub alloc_metered: bool,
    /// Total allocations during the profiled run, incl. unattributed.
    pub allocs_total: u64,
    /// Total bytes requested, incl. unattributed.
    pub alloc_bytes_total: u64,
    /// Per-phase rows, sorted by descending `total_ns`; phases that
    /// never ran are omitted.
    pub phases: Vec<ProfPhase>,
}

/// Renders a record as folded stacks — one `stp;{workload};{phase}
/// {nanoseconds}` line per phase — the input format of
/// `inferno-flamegraph` / `flamegraph.pl`.
pub fn folded(record: &ProfRecord) -> String {
    let mut out = String::new();
    for p in &record.phases {
        if p.total_ns == 0 {
            continue;
        }
        out.push_str(&format!(
            "stp;{};{} {}\n",
            record.workload, p.phase, p.total_ns
        ));
    }
    out
}

/// Renders a record in the Prometheus text exposition format (version
/// 0.0.4): per-phase counters for nanoseconds, calls, and allocations,
/// plus whole-run window/busy counters. Quantile gauges are omitted for
/// phases still at [`NO_SAMPLES`] — the sentinel never appears as a
/// `-1` sample.
pub fn prometheus_prof_text(record: &ProfRecord) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let label =
        |p: &ProfPhase| format!("{{workload=\"{}\",phase=\"{}\"}}", record.workload, p.phase);

    let mut counter = |name: &str, help: &str, value: &dyn Fn(&ProfPhase) -> u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for p in &record.phases {
            let _ = writeln!(out, "{name}{} {}", label(p), value(p));
        }
    };
    counter(
        "stp_prof_phase_ns_total",
        "Nanoseconds attributed to the phase.",
        &|p| p.total_ns,
    );
    counter(
        "stp_prof_phase_calls_total",
        "Times the phase was entered.",
        &|p| p.calls,
    );
    counter(
        "stp_prof_phase_allocs_total",
        "Heap allocations charged to the phase.",
        &|p| p.allocs,
    );
    counter(
        "stp_prof_phase_alloc_bytes_total",
        "Bytes requested by allocations charged to the phase.",
        &|p| p.alloc_bytes,
    );

    let sampled: Vec<&ProfPhase> = record
        .phases
        .iter()
        .filter(|p| p.p99_window_ns != NO_SAMPLES)
        .collect();
    if !sampled.is_empty() {
        let _ = writeln!(
            out,
            "# HELP stp_prof_window_p99_ns 99th-percentile profiled-window nanoseconds."
        );
        let _ = writeln!(out, "# TYPE stp_prof_window_p99_ns gauge");
        for p in &sampled {
            let _ = writeln!(
                out,
                "stp_prof_window_p99_ns{} {}",
                label(p),
                p.p99_window_ns
            );
        }
    }

    let _ = writeln!(
        out,
        "# HELP stp_prof_windows_total Profiled windows flushed."
    );
    let _ = writeln!(out, "# TYPE stp_prof_windows_total counter");
    let _ = writeln!(
        out,
        "stp_prof_windows_total{{workload=\"{}\"}} {}",
        record.workload, record.windows
    );
    let _ = writeln!(
        out,
        "# HELP stp_prof_busy_ns_total Measured busy nanoseconds (sum of window spans)."
    );
    let _ = writeln!(out, "# TYPE stp_prof_busy_ns_total counter");
    let _ = writeln!(
        out,
        "stp_prof_busy_ns_total{{workload=\"{}\"}} {}",
        record.workload, record.busy_ns
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn phase_names_are_unique_snake_case_and_dense() {
        let mut seen = HashSet::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "ALL must be in discriminant order");
            assert!(seen.insert(p.name()), "duplicate phase name {}", p.name());
            assert!(
                p.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "phase name {} is not snake_case",
                p.name()
            );
        }
        assert_eq!(seen.len(), Phase::COUNT);
    }

    #[test]
    fn channel_kinds_map_to_distinct_phases() {
        let specs = [
            ChannelSpec::Dup,
            ChannelSpec::Del,
            ChannelSpec::Fifo,
            ChannelSpec::LossyFifo,
            ChannelSpec::Perfect,
            ChannelSpec::Timed { deadline: 4 },
        ];
        let deliver: HashSet<Phase> = specs.iter().map(delivery_phase).collect();
        let expire: HashSet<Phase> = specs.iter().map(expiry_phase).collect();
        assert_eq!(deliver.len(), specs.len());
        assert_eq!(expire.len(), specs.len());
        assert!(deliver.is_disjoint(&expire));
    }

    #[test]
    fn observer_window_attributes_all_time() {
        let prof = PhaseProfiler::new(1);
        let mut obs = ProfObs::begin();
        obs.mark(Phase::SchedulerDecide);
        obs.mark(Phase::SenderStep);
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.mark(Phase::Bookkeeping);
        obs.finish(&prof);

        let rec = prof.report("test", "unit");
        assert_eq!(rec.windows, 1);
        assert!(rec.busy_ns > 0);
        assert_eq!(rec.attributed_ns, rec.busy_ns, "marks are consecutive");
        assert!((rec.coverage - 1.0).abs() < 1e-9);
        let sender = rec
            .phases
            .iter()
            .find(|p| p.phase == "sender_step")
            .expect("sender_step row");
        assert!(sender.total_ns >= 1_000_000, "sleep lands in sender_step");
        assert!(sender.share > 0.5);
        assert_eq!(sender.calls, 1);
    }

    #[test]
    fn time_records_standalone_window_and_alloc_attribution() {
        let prof = PhaseProfiler::new(1);
        let out = prof.time(Phase::TelemetrySink, || {
            // Stand in for the counting allocator: charge the active
            // phase directly.
            note_alloc(4096);
            7
        });
        assert_eq!(out, 7);
        let rec = prof.report("test", "unit");
        let sink = rec
            .phases
            .iter()
            .find(|p| p.phase == "telemetry_sink")
            .expect("telemetry_sink row");
        assert_eq!(sink.calls, 1);
        assert!(sink.allocs >= 1);
        assert!(sink.alloc_bytes >= 4096);
        assert!(rec.alloc_metered);
        assert!(rec.allocs_total >= 1);
    }

    #[test]
    fn report_is_empty_and_guarded_before_any_window() {
        let prof = PhaseProfiler::new(8);
        let rec = prof.report("test", "unit");
        assert_eq!(rec.windows, 0);
        assert_eq!(rec.busy_ns, 0);
        assert_eq!(rec.coverage, NO_SAMPLES);
        assert!(rec.phases.iter().all(|p| p.allocs > 0), "only alloc rows");
    }

    #[test]
    fn sampling_period_selects_every_nth_tick() {
        let prof = PhaseProfiler::new(4);
        let sampled: Vec<u64> = (0..12).filter(|&t| prof.sample(t)).collect();
        assert_eq!(sampled, vec![0, 4, 8]);
        assert!(PhaseProfiler::new(1).sample(3), "period 1 profiles all");
    }

    #[test]
    #[should_panic(expected = "sampling period")]
    fn zero_period_panics() {
        let _ = PhaseProfiler::new(0);
    }

    #[test]
    fn record_round_trips_through_json() {
        let prof = PhaseProfiler::new(1);
        prof.time(Phase::Admission, || std::hint::black_box(3));
        let rec = prof.report("round_trip", "unit");
        let json = serde_json::to_string(&rec).expect("serialize");
        let back: ProfRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, rec);
    }

    #[test]
    fn folded_lines_are_flamegraph_shaped() {
        let prof = PhaseProfiler::new(1);
        prof.time(Phase::SenderStep, || std::hint::black_box(1));
        prof.time(Phase::ReceiverStep, || std::hint::black_box(2));
        let rec = prof.report("test", "wl");
        let text = folded(&rec);
        assert!(!text.is_empty());
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack count");
            assert!(count.parse::<u64>().is_ok(), "count is integer: {line}");
            let frames: Vec<&str> = stack.split(';').collect();
            assert_eq!(frames[0], "stp");
            assert_eq!(frames[1], "wl");
            assert_eq!(frames.len(), 3);
        }
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let prof = PhaseProfiler::new(1);
        prof.time(Phase::SenderStep, || std::hint::black_box(1));
        let mut rec = prof.report("test", "wl");
        // Force an alloc-only row (NO_SAMPLES quantiles) to prove the
        // sentinel is filtered, not printed.
        rec.phases.push(ProfPhase {
            phase: "retire".to_string(),
            calls: 0,
            windows: 0,
            total_ns: 0,
            share: 0.0,
            p50_window_ns: NO_SAMPLES,
            p99_window_ns: NO_SAMPLES,
            allocs: 3,
            alloc_bytes: 96,
        });
        let text = prometheus_prof_text(&rec);
        assert!(text.ends_with('\n'), "exposition ends with newline");
        let mut helps = HashSet::new();
        let mut types = HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(helps.insert(name.to_string()), "duplicate HELP {name}");
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap();
                assert!(types.insert(name.to_string()), "duplicate TYPE {name}");
            } else {
                let (_series, value) = line.rsplit_once(' ').expect("series value");
                let v: f64 = value.parse().expect("numeric sample");
                assert!(v != NO_SAMPLES, "NO_SAMPLES leaked: {line}");
            }
        }
        assert_eq!(helps, types, "every HELP has a TYPE");
    }
}
