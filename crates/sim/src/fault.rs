//! One-shot fault injection — the instrument behind the boundedness
//! experiments (E3, E5).
//!
//! [`burst_plan`] builds the canonical two-clause [`FaultPlan`]: at a
//! chosen global step, destroy in-flight copies (on deleting/lossy
//! channels) and suppress that step's deliveries. Compiled onto any inner
//! scheduler with [`CampaignScheduler::new`], injecting exactly one fault
//! right after the receiver learns item `i` is how we measure a protocol's
//! recovery profile: the paper's Definition-2 *bounded* protocols recover
//! in time `f(i)` independent of the input length, while the Section-5
//! hybrid needs time proportional to the whole remaining sequence.
//!
//! The historical `FaultInjector` wrapper that predated the campaign
//! engine was deprecated in 0.1.0 and removed in 0.3.0; `burst_plan` is
//! its exact migration target. Anything richer — multiple strikes,
//! windows, write-triggered faults, randomized storms — is a larger
//! [`FaultPlan`] (or the measurement helpers in [`crate::slo`]).

use stp_channel::campaign::{FaultAction, FaultClause, FaultPlan, Trigger};
use stp_core::event::Step;

#[cfg(doc)]
use stp_channel::campaign::CampaignScheduler;

/// The two-clause [`FaultPlan`] behind the retired
/// `FaultInjector::new(inner, at, copies)`: one deletion burst of up to
/// `copies` in-flight copies per direction at the first decision with
/// `step >= at`, with that step's deliveries suppressed.
///
/// Compile the plan onto any inner scheduler with
/// [`CampaignScheduler::new`], or build richer single-clause plans
/// directly with [`FaultPlan::single`].
pub fn burst_plan(at: Step, copies: usize) -> FaultPlan {
    FaultPlan::new(0)
        .with(FaultClause::new(
            FaultAction::DeletionBurst { copies },
            Trigger::AtStep(at),
        ))
        .with(FaultClause::new(
            FaultAction::SilenceWindow,
            Trigger::AtStep(at),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::campaign::CampaignScheduler;
    use stp_channel::{Channel, DelChannel, DupChannel, EagerScheduler, Scheduler};
    use stp_core::alphabet::SMsg;

    fn injector(at: Step, copies: usize) -> CampaignScheduler {
        CampaignScheduler::new(Box::new(EagerScheduler::new()), burst_plan(at, copies))
    }

    #[test]
    fn fires_once_at_the_configured_step() {
        let mut ch = DelChannel::new();
        ch.send_s(SMsg(0));
        ch.send_s(SMsg(1));
        let mut f = injector(3, 1);
        for t in 0..3 {
            let d = f.decide(t, &ch);
            assert!(d.delete_to_r.is_empty(), "t={t}");
            assert!(!f.any_fired());
        }
        let d = f.decide(3, &ch);
        assert_eq!(d.delete_to_r.len(), 1);
        assert!(d.deliver_to_r.is_none(), "delivery suppressed at the fault");
        assert!(f.any_fired());
        // Subsequent steps delegate untouched.
        let d = f.decide(4, &ch);
        assert!(d.delete_to_r.is_empty());
        assert!(d.deliver_to_r.is_some());
    }

    #[test]
    fn respects_non_deleting_channels() {
        let mut ch = DupChannel::new();
        ch.send_s(SMsg(0));
        let mut f = injector(0, 1);
        let d = f.decide(0, &ch);
        assert!(d.delete_to_r.is_empty(), "dup channels cannot lose copies");
        assert!(d.deliver_to_r.is_none(), "delivery still suppressed");
        assert!(f.any_fired(), "the strike step still counts as fired");
    }

    #[test]
    fn late_start_fires_at_first_opportunity() {
        let ch = DelChannel::new();
        let mut f = injector(2, 1);
        // Jump straight past the configured step.
        let _ = f.decide(10, &ch);
        assert!(f.any_fired());
    }

    #[test]
    fn reset_rearms_the_fault_for_a_fresh_run() {
        let mut ch = DelChannel::new();
        ch.send_s(SMsg(0));
        let mut f = injector(1, 1);
        let _ = f.decide(1, &ch);
        assert!(f.any_fired());
        f.reset();
        assert!(!f.any_fired(), "reset clears the latch");
        let d = f.decide(1, &ch);
        assert_eq!(d.delete_to_r.len(), 1, "the fault fires again");
        assert!(f.any_fired());
    }
}
