//! One-shot fault injection — the instrument behind the boundedness
//! experiments (E3, E5).
//!
//! [`FaultInjector`] wraps an inner scheduler and, at a chosen global step,
//! destroys in-flight copies (on deleting/lossy channels) and suppresses
//! that step's deliveries. Everything else is delegated. Injecting exactly
//! one fault right after the receiver learns item `i` is how we measure a
//! protocol's recovery profile: the paper's Definition-2 *bounded*
//! protocols recover in time `f(i)` independent of the input length, while
//! the Section-5 hybrid needs time proportional to the whole remaining
//! sequence.
//!
//! # Migration
//!
//! `FaultInjector` predates the composable campaign engine and is now a
//! thin veneer over [`CampaignScheduler`]: `FaultInjector::new(inner, at,
//! copies)` is exactly the two-clause plan
//!
//! ```text
//! FaultPlan::new(0)
//!     .with(FaultClause::new(FaultAction::DeletionBurst { copies }, Trigger::AtStep(at)))
//!     .with(FaultClause::new(FaultAction::SilenceWindow,           Trigger::AtStep(at)))
//! ```
//!
//! New code that needs anything richer — multiple strikes, windows,
//! write-triggered faults, randomized storms — should build a
//! [`FaultPlan`] and use
//! [`CampaignScheduler`] directly (or the measurement helpers in
//! [`crate::slo`]). The historical wart that an injector could not be
//! reused across [`World`](crate::World) runs (its `fired` latch stayed
//! set) is gone: [`FaultInjector::reset`] rewinds it.

use stp_channel::campaign::{CampaignScheduler, FaultAction, FaultClause, FaultPlan, Trigger};
use stp_channel::{Channel, Scheduler, StepDecision};
use stp_core::event::Step;

/// The two-clause [`FaultPlan`] behind the historical
/// `FaultInjector::new(inner, at, copies)`: one deletion burst of up to
/// `copies` in-flight copies per direction at the first decision with
/// `step >= at`, with that step's deliveries suppressed.
///
/// This is the migration target for the deprecated
/// [`FaultInjector::new`]: compile the plan onto any inner scheduler with
/// [`CampaignScheduler::new`], or build richer single-clause plans
/// directly with [`FaultPlan::single`].
pub fn burst_plan(at: Step, copies: usize) -> FaultPlan {
    FaultPlan::new(0)
        .with(FaultClause::new(
            FaultAction::DeletionBurst { copies },
            Trigger::AtStep(at),
        ))
        .with(FaultClause::new(
            FaultAction::SilenceWindow,
            Trigger::AtStep(at),
        ))
}

/// A scheduler wrapper that injects a single deletion burst at a fixed
/// step. Compatibility veneer over [`CampaignScheduler`]; see the module
/// docs for migration guidance.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    campaign: CampaignScheduler,
}

impl FaultInjector {
    /// Wraps `inner`, deleting up to `copies` in-flight copies per
    /// direction at the first decision with `step >= at` and suppressing
    /// that step's deliveries.
    #[deprecated(
        since = "0.1.0",
        note = "use CampaignScheduler::new(inner, burst_plan(at, copies)), or build a \
                FaultPlan::single(..) directly — FaultInjector adds nothing over the \
                campaign engine"
    )]
    pub fn new(inner: Box<dyn Scheduler>, at: Step, copies: usize) -> Self {
        FaultInjector {
            campaign: CampaignScheduler::new(inner, burst_plan(at, copies)),
        }
    }

    /// Whether the fault has fired yet.
    pub fn fired(&self) -> bool {
        self.campaign.any_fired()
    }

    /// Rewinds the injector so it can drive a fresh run: the fault will
    /// fire again at its configured step. The inner scheduler is not
    /// reset.
    pub fn reset(&mut self) {
        self.campaign.reset();
    }
}

impl Scheduler for FaultInjector {
    fn decide(&mut self, step: Step, chan: &dyn Channel) -> StepDecision {
        self.campaign.decide(step, chan)
    }

    fn note_progress(&mut self, step: Step, written: usize) {
        self.campaign.note_progress(step, written);
    }

    fn reset(&mut self, seed: u64) {
        // UFCS: the campaign's inherent `reset()` (which does not touch the
        // inner scheduler) would otherwise shadow the trait method.
        Scheduler::reset(&mut self.campaign, seed);
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use stp_channel::{DelChannel, DupChannel, EagerScheduler};
    use stp_core::alphabet::SMsg;

    #[test]
    fn fires_once_at_the_configured_step() {
        let mut ch = DelChannel::new();
        ch.send_s(SMsg(0));
        ch.send_s(SMsg(1));
        let mut f = FaultInjector::new(Box::new(EagerScheduler::new()), 3, 1);
        for t in 0..3 {
            let d = f.decide(t, &ch);
            assert!(d.delete_to_r.is_empty(), "t={t}");
            assert!(!f.fired());
        }
        let d = f.decide(3, &ch);
        assert_eq!(d.delete_to_r.len(), 1);
        assert!(d.deliver_to_r.is_none(), "delivery suppressed at the fault");
        assert!(f.fired());
        // Subsequent steps delegate untouched.
        let d = f.decide(4, &ch);
        assert!(d.delete_to_r.is_empty());
        assert!(d.deliver_to_r.is_some());
    }

    #[test]
    fn respects_non_deleting_channels() {
        let mut ch = DupChannel::new();
        ch.send_s(SMsg(0));
        let mut f = FaultInjector::new(Box::new(EagerScheduler::new()), 0, 1);
        let d = f.decide(0, &ch);
        assert!(d.delete_to_r.is_empty(), "dup channels cannot lose copies");
        assert!(d.deliver_to_r.is_none(), "delivery still suppressed");
        assert!(f.fired(), "the strike step still counts as fired");
    }

    #[test]
    fn late_start_fires_at_first_opportunity() {
        let ch = DelChannel::new();
        let mut f = FaultInjector::new(Box::new(EagerScheduler::new()), 2, 1);
        // Jump straight past the configured step.
        let _ = f.decide(10, &ch);
        assert!(f.fired());
    }

    #[test]
    fn reset_rearms_the_fault_for_a_fresh_run() {
        let mut ch = DelChannel::new();
        ch.send_s(SMsg(0));
        let mut f = FaultInjector::new(Box::new(EagerScheduler::new()), 1, 1);
        let _ = f.decide(1, &ch);
        assert!(f.fired());
        f.reset();
        assert!(!f.fired(), "reset clears the latch");
        let d = f.decide(1, &ch);
        assert_eq!(d.delete_to_r.len(), 1, "the fault fires again");
        assert!(f.fired());
    }
}
