//! One-shot fault injection — the instrument behind the boundedness
//! experiments (E3, E5).
//!
//! [`FaultInjector`] wraps an inner scheduler and, at a chosen global step,
//! destroys in-flight copies (on deleting/lossy channels). Everything else
//! is delegated. Injecting exactly one fault right after the receiver
//! learns item `i` is how we measure a protocol's recovery profile: the
//! paper's Definition-2 *bounded* protocols recover in time `f(i)`
//! independent of the input length, while the Section-5 hybrid needs time
//! proportional to the whole remaining sequence.

use stp_channel::{Channel, Scheduler, StepDecision};
use stp_core::event::Step;

/// A scheduler wrapper that injects a single deletion burst at a fixed
/// step.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    inner: Box<dyn Scheduler>,
    /// Step at which to strike.
    at: Step,
    /// Maximum copies to destroy in each direction (usually 1).
    copies: usize,
    /// Whether the strike also suppresses that step's deliveries.
    suppress_delivery: bool,
    fired: bool,
}

impl FaultInjector {
    /// Wraps `inner`, deleting up to `copies` in-flight copies per
    /// direction at step `at` and suppressing that step's deliveries.
    pub fn new(inner: Box<dyn Scheduler>, at: Step, copies: usize) -> Self {
        FaultInjector {
            inner,
            at,
            copies,
            suppress_delivery: true,
            fired: false,
        }
    }

    /// Whether the fault has fired yet.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl Scheduler for FaultInjector {
    fn decide(&mut self, step: Step, chan: &dyn Channel) -> StepDecision {
        let mut d = self.inner.decide(step, chan);
        if !self.fired && step >= self.at {
            self.fired = true;
            if chan.can_delete() {
                d.delete_to_r = chan
                    .deliverable_to_r()
                    .into_iter()
                    .take(self.copies)
                    .collect();
                d.delete_to_s = chan
                    .deliverable_to_s()
                    .into_iter()
                    .take(self.copies)
                    .collect();
            }
            if self.suppress_delivery {
                d.deliver_to_r = None;
                d.deliver_to_s = None;
            }
        }
        d
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DelChannel, DupChannel, EagerScheduler};
    use stp_core::alphabet::SMsg;

    #[test]
    fn fires_once_at_the_configured_step() {
        let mut ch = DelChannel::new();
        ch.send_s(SMsg(0));
        ch.send_s(SMsg(1));
        let mut f = FaultInjector::new(Box::new(EagerScheduler::new()), 3, 1);
        for t in 0..3 {
            let d = f.decide(t, &ch);
            assert!(d.delete_to_r.is_empty(), "t={t}");
            assert!(!f.fired());
        }
        let d = f.decide(3, &ch);
        assert_eq!(d.delete_to_r.len(), 1);
        assert!(d.deliver_to_r.is_none(), "delivery suppressed at the fault");
        assert!(f.fired());
        // Subsequent steps delegate untouched.
        let d = f.decide(4, &ch);
        assert!(d.delete_to_r.is_empty());
        assert!(d.deliver_to_r.is_some());
    }

    #[test]
    fn respects_non_deleting_channels() {
        let mut ch = DupChannel::new();
        ch.send_s(SMsg(0));
        let mut f = FaultInjector::new(Box::new(EagerScheduler::new()), 0, 1);
        let d = f.decide(0, &ch);
        assert!(d.delete_to_r.is_empty(), "dup channels cannot lose copies");
        assert!(f.fired(), "the strike step still counts as fired");
    }

    #[test]
    fn late_start_fires_at_first_opportunity() {
        let ch = DelChannel::new();
        let mut f = FaultInjector::new(Box::new(EagerScheduler::new()), 2, 1);
        // Jump straight past the configured step.
        let _ = f.decide(10, &ch);
        assert!(f.fired());
    }
}
