//! Trace replay: reconstruct the adversary's decisions from a recorded
//! trace and re-execute them.
//!
//! Because protocols are deterministic and the trace records every
//! delivery and deletion, the scheduler's behaviour is fully recoverable:
//! [`script_from_trace`] turns a trace into a
//! [`stp_channel::ScriptedScheduler`] script, and
//! [`replay`] re-runs it, producing a bit-identical trace. This is how
//! certificates and bug reports travel: a trace *is* a replayable witness.

use crate::world::World;
use stp_channel::{Channel, CorruptionCommand, ScriptedScheduler, StepDecision};
use stp_core::alphabet::{RMsg, SMsg};
use stp_core::event::{Event, ProcessId, Trace};
use stp_core::proto::{Receiver, Sender};

/// Extracts the per-step adversary decisions from a recorded trace.
pub fn script_from_trace(trace: &Trace) -> Vec<StepDecision> {
    let steps = trace.steps() as usize;
    let mut script = vec![StepDecision::idle(); steps];
    for e in trace.events() {
        let d = &mut script[e.step as usize];
        match e.event {
            Event::DeliverToR { msg } => d.deliver_to_r = Some(msg),
            Event::DeliverToS { msg } => d.deliver_to_s = Some(msg),
            Event::ChannelDrop { to, msg } => match to {
                ProcessId::Receiver => d.delete_to_r.push(SMsg(msg)),
                ProcessId::Sender => d.delete_to_s.push(RMsg(msg)),
            },
            // Corruption strikes that took effect are replayed verbatim;
            // `ChannelExpire` stays excluded (the channel re-expires on
            // its own during replay).
            Event::Corruption { kind, draw } => {
                d.corruptions.push(CorruptionCommand { kind, draw });
            }
            _ => {}
        }
    }
    script
}

/// Builds a [`World`] that will re-execute a recorded adversary script via
/// a [`ScriptedScheduler`] — the replay hook certificate checkers use to
/// re-run a witness without touching any search internals. The caller
/// decides how far to run it (typically `script.len()` steps, possibly
/// with fingerprint probes along the way).
pub fn scripted_world(
    input: stp_core::data::DataSeq,
    sender: Box<dyn Sender>,
    receiver: Box<dyn Receiver>,
    channel: Box<dyn Channel>,
    script: Vec<StepDecision>,
) -> World {
    World::builder(input)
        .sender(sender)
        .receiver(receiver)
        .channel(channel)
        .scheduler(Box::new(ScriptedScheduler::new(script)))
        .build()
        .expect("all components supplied")
}

/// Re-executes a recorded trace against fresh protocol and channel
/// instances, returning the reproduced trace. With the same deterministic
/// processors and an equivalent empty channel, the result equals the
/// original (the round-trip the tests pin down).
pub fn replay(
    trace: &Trace,
    sender: Box<dyn Sender>,
    receiver: Box<dyn Receiver>,
    channel: Box<dyn Channel>,
) -> Trace {
    let script = script_from_trace(trace);
    let steps = script.len() as u64;
    let mut world = scripted_world(trace.input().clone(), sender, receiver, channel, script);
    world.run(steps);
    world.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DelChannel, DropHeavyScheduler, DupChannel, DupStormScheduler};
    use stp_core::data::DataSeq;
    use stp_protocols::{ResendPolicy, TightReceiver, TightSender};

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    #[test]
    fn replay_reproduces_a_dup_storm_run_exactly() {
        let input = seq(&[2, 0, 1]);
        let mut w = World::builder(input.clone())
            .sender(Box::new(TightSender::new(
                input.clone(),
                3,
                ResendPolicy::Once,
            )))
            .receiver(Box::new(TightReceiver::new(3, ResendPolicy::Once)))
            .channel(Box::new(DupChannel::new()))
            .scheduler(Box::new(DupStormScheduler::new(99, 0.8)))
            .build()
            .unwrap();
        w.run(120);
        let original = w.into_trace();
        let replayed = replay(
            &original,
            Box::new(TightSender::new(input.clone(), 3, ResendPolicy::Once)),
            Box::new(TightReceiver::new(3, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
        );
        assert_eq!(original, replayed);
    }

    #[test]
    fn replay_reproduces_deletions_too() {
        let input = seq(&[1, 0]);
        let mut w = World::builder(input.clone())
            .sender(Box::new(TightSender::new(
                input.clone(),
                2,
                ResendPolicy::EveryTick,
            )))
            .receiver(Box::new(TightReceiver::new(2, ResendPolicy::EveryTick)))
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(DropHeavyScheduler::new(5, 0.4, 0.5)))
            .build()
            .unwrap();
        w.run(200);
        let original = w.into_trace();
        assert!(
            original
                .events()
                .iter()
                .any(|e| matches!(e.event, Event::ChannelDrop { .. })),
            "the adversary should actually have deleted something"
        );
        let replayed = replay(
            &original,
            Box::new(TightSender::new(input.clone(), 2, ResendPolicy::EveryTick)),
            Box::new(TightReceiver::new(2, ResendPolicy::EveryTick)),
            Box::new(DelChannel::new()),
        );
        assert_eq!(original, replayed);
    }

    #[test]
    fn replay_reproduces_a_corrupted_run_exactly() {
        use stp_channel::campaign::{FaultAction, FaultClause, FaultPlan, Trigger};
        use stp_channel::{CampaignScheduler, EagerScheduler};
        use stp_protocols::{StabilizingReceiver, StabilizingSender};

        let input = seq(&[2, 0, 1, 2]);
        let plan = FaultPlan::new(17)
            .with(
                FaultClause::new(FaultAction::StateScramble, Trigger::OnWrite { index: 1 })
                    .direction(stp_channel::campaign::Direction::ToReceiver),
            )
            .with(
                FaultClause::new(FaultAction::InjectNoise, Trigger::AtStep(9))
                    .direction(stp_channel::campaign::Direction::ToReceiver),
            );
        let build_pair = || {
            (
                Box::new(StabilizingSender::new(input.clone(), 3, 6)),
                Box::new(StabilizingReceiver::new(3, 6)),
            )
        };
        let (s, r) = build_pair();
        let mut w = World::builder(input.clone())
            .sender(s)
            .receiver(r)
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(CampaignScheduler::new(
                Box::new(EagerScheduler::new()),
                plan,
            )))
            .build()
            .unwrap();
        w.run(400);
        let original = w.into_trace();
        assert!(
            original
                .events()
                .iter()
                .any(|e| matches!(e.event, Event::Corruption { .. })),
            "a corruption strike should have taken effect"
        );
        let (s, r) = build_pair();
        let replayed = replay(&original, s, r, Box::new(DelChannel::new()));
        assert_eq!(original, replayed);
    }

    #[test]
    fn script_extraction_shapes() {
        let mut t = Trace::new(seq(&[0]));
        t.record(1, Event::DeliverToR { msg: SMsg(0) });
        t.record(
            2,
            Event::ChannelDrop {
                to: ProcessId::Sender,
                msg: 3,
            },
        );
        t.set_steps(4);
        let script = script_from_trace(&t);
        assert_eq!(script.len(), 4);
        assert_eq!(script[0], StepDecision::idle());
        assert_eq!(script[1].deliver_to_r, Some(SMsg(0)));
        assert_eq!(script[2].delete_to_s, vec![RMsg(3)]);
        assert_eq!(script[3], StepDecision::idle());
    }
}
