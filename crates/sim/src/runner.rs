//! Sweeping a protocol family over its claimed sequence set — the
//! workhorse behind the achievability experiments (E1, E3).
//!
//! The sweeps here are thin fronts over the pooled
//! [`SweepEngine`]: describe the grid with a
//! [`SweepSpec`], then call [`sweep_family`]
//! (serial) or [`sweep_family_parallel`] (worker pool). Both produce the
//! same [`SweepOutcome`] in the same order.

use crate::engine::{SweepEngine, SweepSpec};
use crate::metrics::{RunStats, SweepReport};
use crate::telemetry::ProgressMeter;
use crate::world::World;
use stp_channel::{Channel, Scheduler};
use stp_core::data::DataSeq;
use stp_core::event::{Step, Trace};
use stp_protocols::ProtocolFamily;

/// One run of one grid cell: a family member under one adversary recipe
/// and one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberRun {
    /// The input sequence of the run.
    pub input: DataSeq,
    /// The adversary seed.
    pub seed: u64,
    /// Index into the spec's scheduler list that drove this run.
    pub scheduler: usize,
    /// The run's statistics.
    pub stats: RunStats,
    /// The recorded trace — `None` when the sweep ran with
    /// [`TraceMode::Off`](stp_core::event::TraceMode::Off).
    pub trace: Option<Trace>,
}

/// The aggregate outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-(scheduler, sequence, seed) results in grid order.
    pub runs: Vec<MemberRun>,
    /// Sequences that failed to complete under some seed.
    pub failures: Vec<(DataSeq, u64)>,
    /// Sweep-wide distributions folded from every run's statistics.
    pub report: SweepReport,
}

impl SweepOutcome {
    /// Packages finished runs, deriving the failure list and the
    /// aggregate [`SweepReport`].
    pub fn from_runs(runs: Vec<MemberRun>) -> Self {
        let failures = runs
            .iter()
            .filter(|r| !r.stats.is_complete())
            .map(|r| (r.input.clone(), r.seed))
            .collect();
        let mut report = SweepReport::new();
        for r in &runs {
            report.observe(&r.stats);
        }
        SweepOutcome {
            runs,
            failures,
            report,
        }
    }

    /// Whether every member completed safely under every seed.
    pub fn all_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of runs executed.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs were executed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Mean messages-per-item over complete runs (`None` if none).
    pub fn mean_sends_per_item(&self) -> Option<f64> {
        let rates: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|r| r.stats.sends_per_item())
            .collect();
        if rates.is_empty() {
            None
        } else {
            Some(rates.iter().sum::<f64>() / rates.len() as f64)
        }
    }

    /// The worst inter-write gap observed across all runs.
    pub fn worst_gap(&self) -> Option<Step> {
        self.runs.iter().filter_map(|r| r.stats.max_gap()).max()
    }
}

/// Runs one family member once and returns the trace.
pub fn run_family_member(
    family: &dyn ProtocolFamily,
    x: &DataSeq,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    max_steps: Step,
) -> Trace {
    let mut world = World::builder(x.clone())
        .sender(family.sender_for(x))
        .receiver(family.receiver())
        .channel(channel)
        .scheduler(scheduler)
        .build()
        .expect("all components supplied");
    world.run_until(max_steps, World::is_complete);
    world.into_trace()
}

/// Sweeps `family` over every sequence it claims, across the spec's
/// schedulers and seeds, serially on the calling thread.
pub fn sweep_family(family: &dyn ProtocolFamily, spec: &SweepSpec) -> SweepOutcome {
    SweepEngine::new(spec.clone()).run_serial(family)
}

/// The multi-threaded variant of [`sweep_family`]: the same grid, fanned
/// out over the spec's worker pool. Results are identical to the serial
/// sweep (each run is independent and seeded) and arrive in the same
/// order.
pub fn sweep_family_parallel(
    family: &(dyn ProtocolFamily + Sync),
    spec: &SweepSpec,
) -> SweepOutcome {
    SweepEngine::new(spec.clone()).run(family)
}

/// [`sweep_family_parallel`] with live progress: the meter is armed for
/// the grid size, fed one tick per finished run by every worker, and
/// flushed with a final report when the merge completes.
pub fn sweep_family_parallel_observed(
    family: &(dyn ProtocolFamily + Sync),
    spec: &SweepSpec,
    meter: &ProgressMeter,
) -> SweepOutcome {
    SweepEngine::new(spec.clone()).run_observed(family, Some(meter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{ChannelSpec, SchedulerSpec};
    use stp_core::alpha::alpha;
    use stp_protocols::{NaiveFamily, ResendPolicy, TightFamily};

    #[test]
    fn tight_dup_sweep_is_fully_complete_under_storms() {
        let family = TightFamily::new(3, ResendPolicy::Once);
        let spec = SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::DupStorm { p_deliver: 0.9 })
            .max_steps(5_000)
            .seeds([0, 7, 42]);
        let outcome = sweep_family(&family, &spec);
        assert!(outcome.all_complete(), "failures: {:?}", outcome.failures);
        assert_eq!(outcome.len() as u128, alpha(3).unwrap() * 3);
        assert!(outcome.mean_sends_per_item().unwrap() >= 1.0);
    }

    #[test]
    fn tight_del_sweep_is_fully_complete_under_drops() {
        let family = TightFamily::new(2, ResendPolicy::EveryTick);
        let spec = SweepSpec::new(
            ChannelSpec::Del,
            SchedulerSpec::DropHeavy {
                p_drop: 0.3,
                p_deliver: 0.6,
            },
        )
        .max_steps(20_000)
        .seeds([3, 4]);
        let outcome = sweep_family(&family, &spec);
        assert!(outcome.all_complete(), "failures: {:?}", outcome.failures);
        assert!(outcome.worst_gap().is_some());
    }

    #[test]
    fn naive_overcapacity_family_fails_some_member() {
        // Theorem 1 in action: the claimed family exceeds α(m), so some
        // sequence must fail even under a *friendly* adversary.
        let family = NaiveFamily::new(2, 2);
        let spec = SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::DupStorm { p_deliver: 0.9 })
            .max_steps(2_000)
            .seeds([0]);
        let outcome = sweep_family(&family, &spec);
        assert!(
            !outcome.all_complete(),
            "an over-capacity family cannot complete everywhere"
        );
        // The repetition-containing sequences are among the failures.
        assert!(outcome
            .failures
            .iter()
            .any(|(x, _)| !x.is_repetition_free()));
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let family = TightFamily::new(3, ResendPolicy::Once);
        let spec = SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::DupStorm { p_deliver: 0.9 })
            .max_steps(5_000)
            .seeds([0, 1])
            .threads(4);
        let serial = sweep_family(&family, &spec);
        let parallel = sweep_family_parallel(&family, &spec);
        assert_eq!(serial.len(), parallel.len());
        assert!(parallel.all_complete());
        assert_eq!(serial.runs, parallel.runs);
    }

    #[test]
    fn run_family_member_returns_trace() {
        let family = TightFamily::new(2, ResendPolicy::Once);
        let x = DataSeq::from_indices([1, 0]);
        let trace = run_family_member(
            &family,
            &x,
            Box::new(stp_channel::DupChannel::new()),
            Box::new(stp_channel::EagerScheduler::new()),
            1_000,
        );
        assert_eq!(trace.output(), x);
    }
}
