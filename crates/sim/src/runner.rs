//! Sweeping a protocol family over its claimed sequence set — the
//! workhorse behind the achievability experiments (E1, E3).

use crate::metrics::RunStats;
use crate::world::World;
use stp_channel::{Channel, Scheduler};
use stp_core::data::DataSeq;
use stp_core::event::{Step, Trace};
use stp_protocols::ProtocolFamily;

/// Parameters of a sweep.
#[derive(Debug, Clone)]
pub struct FamilyRunConfig {
    /// Step budget per run.
    pub max_steps: Step,
    /// Adversary seeds to try per sequence.
    pub seeds: Vec<u64>,
}

impl Default for FamilyRunConfig {
    fn default() -> Self {
        FamilyRunConfig {
            max_steps: 10_000,
            seeds: vec![0, 1, 2],
        }
    }
}

/// One run of one family member under one seed.
#[derive(Debug, Clone)]
pub struct MemberRun {
    /// The input sequence of the run.
    pub input: DataSeq,
    /// The adversary seed.
    pub seed: u64,
    /// The run's statistics.
    pub stats: RunStats,
}

/// The aggregate outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-(sequence, seed) results.
    pub runs: Vec<MemberRun>,
    /// Sequences that failed to complete under some seed.
    pub failures: Vec<(DataSeq, u64)>,
}

impl SweepOutcome {
    /// Whether every member completed safely under every seed.
    pub fn all_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of runs executed.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs were executed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Mean messages-per-item over complete runs (`None` if none).
    pub fn mean_sends_per_item(&self) -> Option<f64> {
        let rates: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|r| r.stats.sends_per_item())
            .collect();
        if rates.is_empty() {
            None
        } else {
            Some(rates.iter().sum::<f64>() / rates.len() as f64)
        }
    }

    /// The worst inter-write gap observed across all runs.
    pub fn worst_gap(&self) -> Option<Step> {
        self.runs.iter().filter_map(|r| r.stats.max_gap()).max()
    }
}

/// Runs one family member once and returns the trace.
pub fn run_family_member(
    family: &dyn ProtocolFamily,
    x: &DataSeq,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    max_steps: Step,
) -> Trace {
    let mut world = World::new(
        x.clone(),
        family.sender_for(x),
        family.receiver(),
        channel,
        scheduler,
    );
    world.run_until(max_steps, World::is_complete);
    world.into_trace()
}

/// Sweeps `family` over every sequence it claims, across the configured
/// seeds, with fresh channel/scheduler instances per run.
pub fn sweep_family(
    family: &dyn ProtocolFamily,
    cfg: &FamilyRunConfig,
    make_channel: impl Fn() -> Box<dyn Channel>,
    make_scheduler: impl Fn(u64) -> Box<dyn Scheduler>,
) -> SweepOutcome {
    let mut runs = Vec::new();
    let mut failures = Vec::new();
    for x in family.claimed_family().iter() {
        for &seed in &cfg.seeds {
            let trace = run_family_member(
                family,
                x,
                make_channel(),
                make_scheduler(seed),
                cfg.max_steps,
            );
            let stats = RunStats::of(&trace);
            if !stats.is_complete() {
                failures.push((x.clone(), seed));
            }
            runs.push(MemberRun {
                input: x.clone(),
                seed,
                stats,
            });
        }
    }
    SweepOutcome { runs, failures }
}

/// The multi-threaded variant of [`sweep_family`]: the same work grid,
/// fanned out over `threads` workers through a crossbeam channel. Results
/// are identical to the serial sweep (each run is independent and seeded),
/// and the output order is normalized so the two are comparable directly.
pub fn sweep_family_parallel(
    family: &(dyn ProtocolFamily + Sync),
    cfg: &FamilyRunConfig,
    make_channel: impl Fn() -> Box<dyn Channel> + Sync,
    make_scheduler: impl Fn(u64) -> Box<dyn Scheduler> + Sync,
    threads: usize,
) -> SweepOutcome {
    let threads = threads.max(1);
    let claimed = family.claimed_family();
    let work: Vec<(usize, DataSeq, u64)> = claimed
        .iter()
        .flat_map(|x| cfg.seeds.iter().map(move |&s| (x.clone(), s)))
        .enumerate()
        .map(|(i, (x, s))| (i, x, s))
        .collect();
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<(usize, DataSeq, u64)>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, MemberRun)>();
    for item in work {
        work_tx.send(item).expect("queue open");
    }
    drop(work_tx);
    let max_steps = cfg.max_steps;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let make_channel = &make_channel;
            let make_scheduler = &make_scheduler;
            scope.spawn(move || {
                while let Ok((idx, x, seed)) = work_rx.recv() {
                    let trace = run_family_member(
                        family,
                        &x,
                        make_channel(),
                        make_scheduler(seed),
                        max_steps,
                    );
                    let run = MemberRun {
                        input: x,
                        seed,
                        stats: RunStats::of(&trace),
                    };
                    if res_tx.send((idx, run)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
    });
    let mut indexed: Vec<(usize, MemberRun)> = res_rx.iter().collect();
    indexed.sort_by_key(|(i, _)| *i);
    let runs: Vec<MemberRun> = indexed.into_iter().map(|(_, r)| r).collect();
    let failures = runs
        .iter()
        .filter(|r| !r.stats.is_complete())
        .map(|r| (r.input.clone(), r.seed))
        .collect();
    SweepOutcome { runs, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DelChannel, DropHeavyScheduler, DupChannel, DupStormScheduler};
    use stp_core::alpha::alpha;
    use stp_protocols::{NaiveFamily, ResendPolicy, TightFamily};

    #[test]
    fn tight_dup_sweep_is_fully_complete_under_storms() {
        let family = TightFamily::new(3, ResendPolicy::Once);
        let cfg = FamilyRunConfig {
            max_steps: 5_000,
            seeds: vec![0, 7, 42],
        };
        let outcome = sweep_family(
            &family,
            &cfg,
            || Box::new(DupChannel::new()),
            |seed| Box::new(DupStormScheduler::new(seed, 0.9)),
        );
        assert!(outcome.all_complete(), "failures: {:?}", outcome.failures);
        assert_eq!(outcome.len() as u128, alpha(3).unwrap() * 3);
        assert!(outcome.mean_sends_per_item().unwrap() >= 1.0);
    }

    #[test]
    fn tight_del_sweep_is_fully_complete_under_drops() {
        let family = TightFamily::new(2, ResendPolicy::EveryTick);
        let cfg = FamilyRunConfig {
            max_steps: 20_000,
            seeds: vec![3, 4],
        };
        let outcome = sweep_family(
            &family,
            &cfg,
            || Box::new(DelChannel::new()),
            |seed| Box::new(DropHeavyScheduler::new(seed, 0.3, 0.6)),
        );
        assert!(outcome.all_complete(), "failures: {:?}", outcome.failures);
        assert!(outcome.worst_gap().is_some());
    }

    #[test]
    fn naive_overcapacity_family_fails_some_member() {
        // Theorem 1 in action: the claimed family exceeds α(m), so some
        // sequence must fail even under a *friendly* adversary.
        let family = NaiveFamily::new(2, 2);
        let cfg = FamilyRunConfig {
            max_steps: 2_000,
            seeds: vec![0],
        };
        let outcome = sweep_family(
            &family,
            &cfg,
            || Box::new(DupChannel::new()),
            |seed| Box::new(DupStormScheduler::new(seed, 0.9)),
        );
        assert!(
            !outcome.all_complete(),
            "an over-capacity family cannot complete everywhere"
        );
        // The repetition-containing sequences are among the failures.
        assert!(outcome
            .failures
            .iter()
            .any(|(x, _)| !x.is_repetition_free()));
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let family = TightFamily::new(3, ResendPolicy::Once);
        let cfg = FamilyRunConfig {
            max_steps: 5_000,
            seeds: vec![0, 1],
        };
        let serial = sweep_family(
            &family,
            &cfg,
            || Box::new(DupChannel::new()),
            |seed| Box::new(DupStormScheduler::new(seed, 0.9)),
        );
        let parallel = sweep_family_parallel(
            &family,
            &cfg,
            || Box::new(DupChannel::new()),
            |seed| Box::new(DupStormScheduler::new(seed, 0.9)),
            4,
        );
        assert_eq!(serial.len(), parallel.len());
        assert!(parallel.all_complete());
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(a.input, b.input);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn run_family_member_returns_trace() {
        let family = TightFamily::new(2, ResendPolicy::Once);
        let x = DataSeq::from_indices([1, 0]);
        let trace = run_family_member(
            &family,
            &x,
            Box::new(DupChannel::new()),
            Box::new(stp_channel::EagerScheduler::new()),
            1_000,
        );
        assert_eq!(trace.output(), x);
    }
}
