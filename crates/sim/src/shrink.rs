//! Shrinking failing fault campaigns into minimal, replayable witnesses.
//!
//! When a campaign drives a run into a safety violation (the receiver
//! writes something that is not a prefix of the input) or a liveness
//! stall (the transfer never finishes), the interesting artefact is not
//! the original kitchen-sink plan but the *smallest* plan that still
//! fails. [`shrink_plan`] minimizes a failing [`FaultPlan`] by
//! delta-debugging its clauses to a 1-minimal subset and then shrinking
//! each surviving clause's numeric parameters. The result is packaged by
//! [`Witness`]: the input, the minimal plan, and the exact per-step
//! adversary script extracted from the failing trace — which replays
//! bit-identically through [`ScriptedScheduler`], with no campaign
//! machinery needed, so a bug report is self-contained JSON.

use crate::replay::script_from_trace;
use crate::slo::run_with_plan;
use crate::world::World;
use serde::{Deserialize, Serialize};
use stp_channel::campaign::FaultPlan;
use stp_channel::{Channel, ChannelSpec, SchedulerSpec, ScriptedScheduler, StepDecision};
use stp_core::data::DataSeq;
use stp_core::event::{Step, Trace};
use stp_core::proto::{Receiver, Sender};
use stp_core::require::check_safety;
use stp_protocols::ProtocolFamily;

/// What went wrong in a campaign run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// The receiver's output stopped being a prefix of the input.
    Safety {
        /// Step of the offending write.
        step: Step,
        /// Output position of the offending write.
        position: usize,
    },
    /// The transfer did not complete within the step budget.
    Stall {
        /// Items actually written.
        written: usize,
        /// Items expected.
        expected: usize,
    },
}

impl Violation {
    /// The violation's kind, used to decide whether a shrunk candidate
    /// still exhibits "the same" failure.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Safety { .. } => "safety",
            Violation::Stall { .. } => "stall",
        }
    }
}

/// Classifies a finished run: safety violations take precedence over
/// stalls; a safe, complete run returns `None`.
pub fn classify(trace: &Trace, expected: usize) -> Option<Violation> {
    if let Err(stp_core::error::Error::SafetyViolated { step, position }) = check_safety(trace) {
        return Some(Violation::Safety { step, position });
    }
    let written = trace.output().len();
    if written < expected {
        return Some(Violation::Stall { written, expected });
    }
    None
}

/// A reusable judge: runs a family under a candidate plan and classifies
/// the outcome. Runs are deterministic (channel and inner scheduler are
/// rebuilt from their specs per candidate, the inner scheduler and the
/// campaign both seeded from the plan), so judging is pure.
pub struct CampaignJudge<'a> {
    /// Protocol family under test.
    pub family: &'a dyn ProtocolFamily,
    /// Input sequence.
    pub input: &'a DataSeq,
    /// Channel recipe, rebuilt fresh per candidate run.
    pub channel: ChannelSpec,
    /// Inner-scheduler recipe, rebuilt fresh per candidate run.
    pub inner: SchedulerSpec,
    /// Step budget per candidate run.
    pub max_steps: Step,
}

impl CampaignJudge<'_> {
    /// Runs `plan` to its trace.
    pub fn run(&self, plan: &FaultPlan) -> Trace {
        run_with_plan(
            self.family,
            self.input,
            self.channel.build(),
            self.inner.build(plan.seed),
            plan,
            self.max_steps,
        )
    }

    /// Runs `plan` and classifies the outcome.
    pub fn judge(&self, plan: &FaultPlan) -> Option<Violation> {
        classify(&self.run(plan), self.input.len())
    }
}

fn still_fails(judge: &CampaignJudge<'_>, plan: &FaultPlan, kind: &str) -> Option<Violation> {
    judge.judge(plan).filter(|v| v.kind() == kind)
}

/// Shrinks a clause's numeric parameters while `keep` accepts the
/// candidate plan.
fn shrink_clause_params(
    judge: &CampaignJudge<'_>,
    plan: &mut FaultPlan,
    idx: usize,
    kind: &str,
) -> Option<Violation> {
    use stp_channel::campaign::FaultAction::*;
    let mut best = None;
    // Halve the window toward 1.
    loop {
        let cur = plan.clauses[idx].duration;
        if cur <= 1 {
            break;
        }
        let mut cand = plan.clone();
        cand.clauses[idx].duration = (cur / 2).max(1);
        match still_fails(judge, &cand, kind) {
            Some(v) => {
                *plan = cand;
                best = Some(v);
            }
            None => break,
        }
    }
    // Halve the copy count toward 1.
    while let DeletionBurst { copies: cur } | TargetedStrike { copies: cur } =
        plan.clauses[idx].action
    {
        if cur <= 1 {
            break;
        }
        let mut cand = plan.clone();
        let next = (cur / 2).max(1);
        match &mut cand.clauses[idx].action {
            DeletionBurst { copies } | TargetedStrike { copies } => *copies = next,
            _ => unreachable!(),
        }
        match still_fails(judge, &cand, kind) {
            Some(v) => {
                *plan = cand;
                best = Some(v);
            }
            None => break,
        }
    }
    // Cap an unlimited or generous firing budget at 1.
    if plan.clauses[idx].max_firings != 1 {
        let mut cand = plan.clone();
        cand.clauses[idx].max_firings = 1;
        if let Some(v) = still_fails(judge, &cand, kind) {
            *plan = cand;
            best = Some(v);
        }
    }
    best
}

/// Minimizes a failing plan: repeatedly drops clauses whose removal
/// preserves the violation kind (to a fixpoint, so the result is
/// 1-minimal in its clause set), then shrinks each surviving clause's
/// window, copy count and firing budget. Returns `None` if `plan` does
/// not fail in the first place.
pub fn shrink_plan(judge: &CampaignJudge<'_>, plan: &FaultPlan) -> Option<(FaultPlan, Violation)> {
    let mut violation = judge.judge(plan)?;
    let kind = violation.kind();
    let mut current = plan.clone();
    // Clause-set minimization to a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < current.clauses.len() {
            let mut cand = current.clone();
            cand.clauses.remove(i);
            if let Some(v) = still_fails(judge, &cand, kind) {
                current = cand;
                violation = v;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    // Parameter shrinking per surviving clause.
    for i in 0..current.clauses.len() {
        if let Some(v) = shrink_clause_params(judge, &mut current, i, kind) {
            violation = v;
        }
    }
    Some((current, violation))
}

/// Checks 1-minimality of a plan's clause set: removing any single clause
/// must make the violation kind disappear. Trivially true for empty
/// plans.
pub fn is_one_minimal(judge: &CampaignJudge<'_>, plan: &FaultPlan, kind: &str) -> bool {
    (0..plan.clauses.len()).all(|i| {
        let mut cand = plan.clone();
        cand.clauses.remove(i);
        still_fails(judge, &cand, kind).is_none()
    })
}

/// A self-contained, replayable failure report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// Protocol family name.
    pub protocol: String,
    /// The input sequence of the failing run.
    pub input: DataSeq,
    /// The minimal failing plan (documentation: *why* the adversary acted).
    pub plan: FaultPlan,
    /// The exact per-step adversary script of the failing run
    /// (mechanism: *what* the adversary did) — replayable on its own.
    pub script: Vec<StepDecision>,
    /// Steps the failing run took.
    pub steps: Step,
    /// The violation exhibited.
    pub violation: Violation,
}

impl Witness {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("witness serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Witness, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Re-executes the witness script against fresh protocol and channel
    /// instances, returning the reproduced trace and its classification.
    /// A valid witness reproduces its recorded violation exactly.
    pub fn replay(
        &self,
        sender: Box<dyn Sender>,
        receiver: Box<dyn Receiver>,
        channel: Box<dyn Channel>,
    ) -> (Trace, Option<Violation>) {
        let mut world = World::builder(self.input.clone())
            .sender(sender)
            .receiver(receiver)
            .channel(channel)
            .scheduler(Box::new(ScriptedScheduler::new(self.script.clone())))
            .build()
            .expect("all components supplied");
        world.run(self.steps);
        let trace = world.into_trace();
        let violation = classify(&trace, self.input.len());
        (trace, violation)
    }
}

/// End-to-end shrink: minimizes `plan` under `judge`, re-runs the minimal
/// plan, and packages the failing run as a [`Witness`]. Returns `None` if
/// `plan` does not fail.
pub fn shrink_to_witness(judge: &CampaignJudge<'_>, plan: &FaultPlan) -> Option<Witness> {
    let (minimal, violation) = shrink_plan(judge, plan)?;
    let trace = judge.run(&minimal);
    Some(Witness {
        protocol: judge.family.name().to_string(),
        input: judge.input.clone(),
        plan: minimal,
        script: script_from_trace(&trace),
        steps: trace.steps(),
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::campaign::{Direction, FaultAction, FaultClause, Trigger};
    use stp_channel::DupChannel;
    use stp_protocols::NaiveFamily;

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    /// The deliberately failing setup: the over-capacity naive family on
    /// input ⟨0,1,0,2⟩. A duplication storm towards the sender replays the
    /// stale ack of the first `0` while the *third* item (also `0`) is
    /// outstanding; the sender skips it and transmits `2`, which the
    /// receiver writes at position 2 — output ⟨0,1,2⟩, not a prefix of the
    /// input. A concrete instance of the paper's Theorem-1 impossibility.
    fn failing_plan() -> FaultPlan {
        FaultPlan::new(11)
            .with(
                FaultClause::new(FaultAction::DuplicationStorm, Trigger::AtStep(0))
                    .lasting(400)
                    .direction(Direction::Both),
            )
            // Decoys the shrinker should strip:
            .with(
                FaultClause::new(
                    FaultAction::ReorderFlood,
                    Trigger::EveryK {
                        period: 13,
                        offset: 5,
                    },
                )
                .lasting(3)
                .repeats(0)
                .direction(Direction::ToReceiver),
            )
            .with(FaultClause::new(FaultAction::SilenceWindow, Trigger::AtStep(37)).lasting(2))
    }

    fn judge_parts() -> (NaiveFamily, DataSeq) {
        (NaiveFamily::new(4, 4), seq(&[0, 1, 0, 2]))
    }

    #[test]
    fn storm_campaign_produces_a_real_safety_violation() {
        let (fam, input) = judge_parts();
        let judge = CampaignJudge {
            family: &fam,
            input: &input,
            // An idle inner scheduler: all deliveries come from the
            // campaign, so the plan is the entire adversary.
            channel: ChannelSpec::Dup,
            inner: SchedulerSpec::idle(),
            max_steps: 400,
        };
        let v = judge.judge(&failing_plan()).expect("campaign fails");
        assert_eq!(v.kind(), "safety", "got {v:?}");
        assert!(
            judge
                .judge(&FaultPlan::new(11))
                .map(|v| v.kind().to_string())
                != Some("safety".into()),
            "without the campaign there is no safety violation"
        );
    }

    #[test]
    fn shrinker_strips_decoys_and_stays_one_minimal() {
        let (fam, input) = judge_parts();
        let judge = CampaignJudge {
            family: &fam,
            input: &input,
            // An idle inner scheduler: all deliveries come from the
            // campaign, so the plan is the entire adversary.
            channel: ChannelSpec::Dup,
            inner: SchedulerSpec::idle(),
            max_steps: 400,
        };
        let (minimal, violation) = shrink_plan(&judge, &failing_plan()).expect("fails");
        assert_eq!(violation.kind(), "safety");
        assert_eq!(minimal.clauses.len(), 1, "decoys stripped: {minimal:?}");
        assert!(matches!(
            minimal.clauses[0].action,
            FaultAction::DuplicationStorm
        ));
        assert!(is_one_minimal(&judge, &minimal, "safety"));
        assert_eq!(minimal.clauses[0].max_firings, 1);
    }

    #[test]
    fn witness_replays_bit_identically_and_round_trips_json() {
        let (fam, input) = judge_parts();
        let judge = CampaignJudge {
            family: &fam,
            input: &input,
            // An idle inner scheduler: all deliveries come from the
            // campaign, so the plan is the entire adversary.
            channel: ChannelSpec::Dup,
            inner: SchedulerSpec::idle(),
            max_steps: 400,
        };
        let witness = shrink_to_witness(&judge, &failing_plan()).expect("fails");
        assert_eq!(witness.violation.kind(), "safety");

        // The JSON round-trip is lossless.
        let json = witness.to_json();
        let back = Witness::from_json(&json).expect("parses");
        assert_eq!(back, witness);

        // The script replays to the same violation and the same script —
        // the witness is bit-identical under replay.
        let (trace, violation) = back.replay(
            fam.sender_for(&input),
            fam.receiver(),
            Box::new(DupChannel::new()),
        );
        assert_eq!(violation, Some(witness.violation.clone()));
        assert_eq!(script_from_trace(&trace), witness.script);
        assert_eq!(trace.steps(), witness.steps);
    }

    #[test]
    fn complete_runs_classify_as_none() {
        use stp_protocols::{ResendPolicy, TightFamily};
        let fam = TightFamily::new(4, ResendPolicy::Once);
        let input = seq(&[2, 0, 1]);
        let judge = CampaignJudge {
            family: &fam,
            input: &input,
            channel: ChannelSpec::Dup,
            inner: SchedulerSpec::Eager,
            max_steps: 2_000,
        };
        assert_eq!(judge.judge(&FaultPlan::new(0)), None);
        assert!(shrink_plan(&judge, &FaultPlan::new(0)).is_none());
    }
}
