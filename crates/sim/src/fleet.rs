//! Fleet observability for the session store: per-shard atomic metrics,
//! stop-free snapshots, and a bound-aware stall watchdog.
//!
//! The sharded [`SessionServer`](crate::sessions::SessionServer) steps
//! over a million concurrent STP sessions, and until this module it ran
//! dark: the probe/trace layers observe *single runs*, not the live
//! fleet. Three pieces fix that:
//!
//! * [`ShardMetrics`] — one per shard, all counters and gauges are
//!   relaxed atomics and the two distributions ([`AtomicHistogram`]s of
//!   submit-to-retire latency and per-round step cost) are arrays of
//!   atomic buckets, so the stepping loop updates them without a lock
//!   and readers sample them without stopping the shard. The engine
//!   batches its updates at round granularity (admissions, retirements,
//!   one end-of-round gauge store) — nothing touches the per-step hot
//!   loop, which is what keeps the metered lane inside its ≤ 5% budget.
//! * [`FleetRegistry`] → [`FleetSnapshot`] / [`FleetWatch`] — a
//!   registry is a cheaply clonable handle over every shard's metrics;
//!   `snapshot()` materializes plain (serializable, mergeable)
//!   [`ShardSnapshot`]s, [`FleetStats`] aggregates them, and a watch
//!   tick yields the [`FleetDelta`] between consecutive snapshots, which
//!   is how the `sessions_top` dashboard computes live throughput.
//! * The **stall watchdog** ([`WatchdogSpec`]) — the paper's α(m) bound
//!   gives every protocol family a *certified* expectation for how many
//!   steps a healthy session needs ([`healthy_step_bound`]); a session
//!   whose age exceeds a configured multiple of that bound is flagged as
//!   a [`StallRecord`] carrying its full [`SessionSpec`] (family,
//!   input, channel, adversary, seed), so a flagged session can be
//!   replayed through the witness machinery verbatim.
//!
//! Snapshots are *eventually consistent*: a reader can observe a sample
//! whose bucket increment landed but whose sum has not (or vice versa).
//! Counts are derived from the bucket array itself, so every snapshot is
//! a well-formed [`Histogram`]; transients only nudge the mean.

use crate::metrics::Histogram;
use crate::sessions::SessionSpec;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use stp_core::event::Step;
use stp_protocols::FamilySpec;

/// The NaN-free sentinel every fleet percentile path returns when no
/// sessions have completed yet: latencies are non-negative, so `-1.0`
/// can never be a real quantile, and unlike `NaN` it serializes to valid
/// JSON and compares `==` in tests.
pub const NO_SAMPLES: f64 = -1.0;

// The fleet's two distribution layouts. Latency mirrors the churn
// report's histogram (width-1 buckets: exact round-valued quantiles up
// to the overflow bucket); per-round step cost spans orders of
// magnitude, so it gets exponential edges.
fn latency_bounds() -> Vec<f64> {
    (0..256).map(|i| 1.0 + i as f64).collect()
}

fn round_cost_bounds() -> Vec<f64> {
    let mut edge = 1.0;
    (0..16)
        .map(|_| {
            let e = edge;
            edge *= 2.0;
            e
        })
        .collect()
}

/// A fixed-layout histogram whose buckets are atomic counters, so many
/// threads can [`record`](AtomicHistogram::record) while another thread
/// [`snapshot`](AtomicHistogram::snapshot)s — the concurrent sibling of
/// [`Histogram`], sharing its bucket semantics (upper edges, overflow
/// bucket) so snapshots merge with ordinary histograms.
///
/// Samples are `u64` (the fleet records round counts and step counts);
/// min/max ride `fetch_min`/`fetch_max`. All orderings are relaxed: the
/// histogram is telemetry, not synchronization.
#[derive(Debug)]
pub struct AtomicHistogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// Creates an atomic histogram with the given upper bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing (the
    /// [`Histogram`] layout contract).
    pub fn new(bounds: Vec<f64>) -> AtomicHistogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            bounds,
            counts,
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b <= v as f64);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Materializes a plain [`Histogram`] with the same layout. The
    /// count is derived from the bucket array itself, so the result is
    /// always internally consistent even while writers are racing.
    pub fn snapshot(&self) -> Histogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                self.min.load(Ordering::Relaxed) as f64,
                self.max.load(Ordering::Relaxed) as f64,
            )
        };
        Histogram {
            bounds: self.bounds.clone(),
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed) as f64,
            min,
            max,
        }
    }
}

/// The per-shard metrics registry: every counter and gauge the fleet
/// dashboard shows, updated by the owning
/// [`SessionEngine`](crate::sessions::SessionEngine) at round
/// granularity and read by anyone holding the [`FleetRegistry`].
#[derive(Debug)]
pub struct ShardMetrics {
    shard: u16,
    // Counters (monotone).
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    disconnected: AtomicU64,
    exhausted: AtomicU64,
    recycle_hits: AtomicU64,
    recycle_misses: AtomicU64,
    steps: AtomicU64,
    stalls: AtomicU64,
    // Gauges (stored once per round).
    round: AtomicU64,
    queue_depth: AtomicU64,
    active_slots: AtomicU64,
    oldest_active_age: AtomicU64,
    // Distributions.
    latency: AtomicHistogram,
    round_cost: AtomicHistogram,
}

impl ShardMetrics {
    /// Fresh, zeroed metrics for one shard.
    pub fn new(shard: u16) -> ShardMetrics {
        ShardMetrics {
            shard,
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            disconnected: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            recycle_hits: AtomicU64::new(0),
            recycle_misses: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            round: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            active_slots: AtomicU64::new(0),
            oldest_active_age: AtomicU64::new(0),
            latency: AtomicHistogram::new(latency_bounds()),
            round_cost: AtomicHistogram::new(round_cost_bounds()),
        }
    }

    /// The shard these metrics belong to.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// A session was submitted to this shard.
    pub fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A session was admitted into a slot (`recycled` says whether the
    /// slot had run before — the recycle hit/miss split).
    pub fn note_admitted(&self, recycled: bool) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if recycled {
            self.recycle_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.recycle_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A session completed; `latency_rounds` is its submit-to-retire
    /// latency.
    pub fn note_completed(&self, latency_rounds: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency_rounds);
    }

    /// A session walked away (TTL churn or an explicit disconnect).
    pub fn note_disconnected(&self) {
        self.disconnected.fetch_add(1, Ordering::Relaxed);
    }

    /// A session ran out of step budget.
    pub fn note_exhausted(&self) {
        self.exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// The watchdog flagged a session.
    pub fn note_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// End-of-round sample: the engine's round counter, the queue and
    /// active-roster depths, the age (in rounds) of the oldest active
    /// session, and the protocol steps the round executed.
    pub fn end_round(&self, round: u64, queued: u64, active: u64, oldest_age: u64, steps: u64) {
        self.round.store(round, Ordering::Relaxed);
        self.queue_depth.store(queued, Ordering::Relaxed);
        self.active_slots.store(active, Ordering::Relaxed);
        self.oldest_active_age.store(oldest_age, Ordering::Relaxed);
        self.steps.fetch_add(steps, Ordering::Relaxed);
        self.round_cost.record(steps);
    }

    /// Materializes a point-in-time [`ShardSnapshot`].
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            shard: self.shard,
            round: self.round.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            disconnected: self.disconnected.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            recycle_hits: self.recycle_hits.load(Ordering::Relaxed),
            recycle_misses: self.recycle_misses.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            queued: self.queue_depth.load(Ordering::Relaxed),
            active: self.active_slots.load(Ordering::Relaxed),
            oldest_active_age: self.oldest_active_age.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            round_cost: self.round_cost.snapshot(),
        }
    }
}

/// A point-in-time copy of one shard's metrics — plain data, so it
/// serializes, diffs and merges without touching the live registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// The shard index.
    pub shard: u16,
    /// Engine rounds stepped.
    pub round: u64,
    /// Sessions submitted.
    pub submitted: u64,
    /// Sessions admitted into slots.
    pub admitted: u64,
    /// Sessions that completed.
    pub completed: u64,
    /// Sessions that walked away.
    pub disconnected: u64,
    /// Sessions that ran out of step budget.
    pub exhausted: u64,
    /// Admissions that reused a previously-occupied slot.
    pub recycle_hits: u64,
    /// Admissions that provisioned a virgin slot.
    pub recycle_misses: u64,
    /// Protocol steps executed.
    pub steps: u64,
    /// Sessions the watchdog flagged.
    pub stalls: u64,
    /// Sessions waiting for a slot (gauge).
    pub queued: u64,
    /// Sessions in slots (gauge).
    pub active: u64,
    /// Age in rounds of the oldest active session (gauge; `0` when no
    /// session is active).
    pub oldest_active_age: u64,
    /// Submit-to-retire latency of completed sessions, in rounds.
    pub latency: Histogram,
    /// Protocol steps per engine round.
    pub round_cost: Histogram,
}

impl ShardSnapshot {
    /// p50 submit-to-retire latency in rounds, [`NO_SAMPLES`] when no
    /// session has completed.
    pub fn p50_latency_rounds(&self) -> f64 {
        guarded_quantile(&self.latency, 0.5)
    }

    /// p99 submit-to-retire latency in rounds, [`NO_SAMPLES`] when no
    /// session has completed.
    pub fn p99_latency_rounds(&self) -> f64 {
        guarded_quantile(&self.latency, 0.99)
    }

    /// Flattens into the `{"fleet": …}` telemetry form, tagged as this
    /// shard's line.
    pub fn record(&self, experiment: &str) -> FleetRecord {
        FleetRecord {
            experiment: experiment.to_string(),
            shard: Some(self.shard),
            shards: 1,
            round: self.round,
            submitted: self.submitted,
            admitted: self.admitted,
            completed: self.completed,
            disconnected: self.disconnected,
            exhausted: self.exhausted,
            recycle_hits: self.recycle_hits,
            recycle_misses: self.recycle_misses,
            steps: self.steps,
            stalls: self.stalls,
            queued: self.queued,
            active: self.active,
            oldest_active_age: self.oldest_active_age,
            p50_latency_rounds: self.p50_latency_rounds(),
            p99_latency_rounds: self.p99_latency_rounds(),
        }
    }
}

// The shared empty-distribution guard behind every fleet percentile
// path (the satellite fix: NaN-free, explicit, testable).
fn guarded_quantile(h: &Histogram, q: f64) -> f64 {
    if h.count == 0 {
        NO_SAMPLES
    } else {
        h.quantile(q)
    }
}

/// A point-in-time copy of the whole fleet: one [`ShardSnapshot`] per
/// shard, taken without stopping any of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
}

impl FleetSnapshot {
    /// Aggregates every shard into one [`FleetStats`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is empty (a registry always has ≥ 1
    /// shard).
    pub fn stats(&self) -> FleetStats {
        assert!(!self.shards.is_empty(), "a fleet has at least one shard");
        let mut latency = Histogram::new(latency_bounds());
        let mut round_cost = Histogram::new(round_cost_bounds());
        let mut stats = FleetStats {
            shards: self.shards.len(),
            round: 0,
            submitted: 0,
            admitted: 0,
            completed: 0,
            disconnected: 0,
            exhausted: 0,
            recycle_hits: 0,
            recycle_misses: 0,
            steps: 0,
            stalls: 0,
            queued: 0,
            active: 0,
            oldest_active_age: 0,
            latency: Histogram::new(latency_bounds()),
            round_cost: Histogram::new(round_cost_bounds()),
        };
        for s in &self.shards {
            stats.round = stats.round.max(s.round);
            stats.submitted += s.submitted;
            stats.admitted += s.admitted;
            stats.completed += s.completed;
            stats.disconnected += s.disconnected;
            stats.exhausted += s.exhausted;
            stats.recycle_hits += s.recycle_hits;
            stats.recycle_misses += s.recycle_misses;
            stats.steps += s.steps;
            stats.stalls += s.stalls;
            stats.queued += s.queued;
            stats.active += s.active;
            stats.oldest_active_age = stats.oldest_active_age.max(s.oldest_active_age);
            latency.merge(&s.latency);
            round_cost.merge(&s.round_cost);
        }
        stats.latency = latency;
        stats.round_cost = round_cost;
        stats
    }
}

/// Fleet-wide aggregate of a [`FleetSnapshot`]: summed counters, maxed
/// gauges, merged distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Shards aggregated.
    pub shards: usize,
    /// Engine rounds, max across shards.
    pub round: u64,
    /// Sessions submitted.
    pub submitted: u64,
    /// Sessions admitted into slots.
    pub admitted: u64,
    /// Sessions that completed.
    pub completed: u64,
    /// Sessions that walked away.
    pub disconnected: u64,
    /// Sessions that ran out of step budget.
    pub exhausted: u64,
    /// Admissions that reused a previously-occupied slot.
    pub recycle_hits: u64,
    /// Admissions that provisioned a virgin slot.
    pub recycle_misses: u64,
    /// Protocol steps executed.
    pub steps: u64,
    /// Sessions the watchdog flagged.
    pub stalls: u64,
    /// Sessions waiting for slots, summed.
    pub queued: u64,
    /// Sessions in slots, summed.
    pub active: u64,
    /// Oldest active session's age in rounds, max across shards.
    pub oldest_active_age: u64,
    /// Merged submit-to-retire latency distribution.
    pub latency: Histogram,
    /// Merged per-round step-cost distribution.
    pub round_cost: Histogram,
}

impl FleetStats {
    /// p50 submit-to-retire latency in rounds, [`NO_SAMPLES`] when no
    /// session has completed anywhere in the fleet.
    pub fn p50_latency_rounds(&self) -> f64 {
        guarded_quantile(&self.latency, 0.5)
    }

    /// p99 submit-to-retire latency in rounds, [`NO_SAMPLES`] when no
    /// session has completed anywhere in the fleet — never NaN, never a
    /// phantom `0.0` that reads like a real latency.
    pub fn p99_latency_rounds(&self) -> f64 {
        guarded_quantile(&self.latency, 0.99)
    }

    /// Flattens into the `{"fleet": …}` telemetry form, tagged as the
    /// aggregate line (`shard: null`).
    pub fn record(&self, experiment: &str) -> FleetRecord {
        FleetRecord {
            experiment: experiment.to_string(),
            shard: None,
            shards: self.shards,
            round: self.round,
            submitted: self.submitted,
            admitted: self.admitted,
            completed: self.completed,
            disconnected: self.disconnected,
            exhausted: self.exhausted,
            recycle_hits: self.recycle_hits,
            recycle_misses: self.recycle_misses,
            steps: self.steps,
            stalls: self.stalls,
            queued: self.queued,
            active: self.active,
            oldest_active_age: self.oldest_active_age,
            p50_latency_rounds: self.p50_latency_rounds(),
            p99_latency_rounds: self.p99_latency_rounds(),
        }
    }
}

/// One `{"fleet": …}` telemetry line: a flattened shard snapshot
/// (`shard` set) or fleet aggregate (`shard` absent). Percentile fields
/// carry the [`NO_SAMPLES`] sentinel while nothing has completed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRecord {
    /// Which harness produced this line; empty when untagged.
    #[serde(default)]
    pub experiment: String,
    /// The shard this line describes; `None` for the fleet aggregate.
    #[serde(default)]
    pub shard: Option<u16>,
    /// Shards aggregated (1 for a per-shard line).
    pub shards: usize,
    /// Engine rounds (max across aggregated shards).
    pub round: u64,
    /// Sessions submitted.
    pub submitted: u64,
    /// Sessions admitted into slots.
    pub admitted: u64,
    /// Sessions that completed.
    pub completed: u64,
    /// Sessions that walked away.
    pub disconnected: u64,
    /// Sessions that ran out of step budget.
    pub exhausted: u64,
    /// Admissions that reused a previously-occupied slot.
    pub recycle_hits: u64,
    /// Admissions that provisioned a virgin slot.
    pub recycle_misses: u64,
    /// Protocol steps executed.
    pub steps: u64,
    /// Sessions the watchdog flagged.
    pub stalls: u64,
    /// Sessions waiting for slots.
    pub queued: u64,
    /// Sessions in slots.
    pub active: u64,
    /// Oldest active session's age in rounds.
    pub oldest_active_age: u64,
    /// p50 submit-to-retire latency in rounds ([`NO_SAMPLES`] when no
    /// completions).
    pub p50_latency_rounds: f64,
    /// p99 submit-to-retire latency in rounds ([`NO_SAMPLES`] when no
    /// completions).
    pub p99_latency_rounds: f64,
}

/// The shared handle over every shard's [`ShardMetrics`]. Clones are
/// cheap (`Arc`s), so the registry travels into shard threads while the
/// dashboard keeps its own handle to sample from.
#[derive(Debug, Clone)]
pub struct FleetRegistry {
    shards: Vec<Arc<ShardMetrics>>,
}

impl FleetRegistry {
    /// A registry for `shards` shards, all metrics zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u16) -> FleetRegistry {
        assert!(shards > 0, "a fleet needs at least one shard");
        FleetRegistry {
            shards: (0..shards)
                .map(|s| Arc::new(ShardMetrics::new(s)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The metrics handle of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: u16) -> Arc<ShardMetrics> {
        Arc::clone(&self.shards[shard as usize])
    }

    /// A point-in-time copy of every shard — taken lock-free, without
    /// stopping any stepping loop.
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            shards: self.shards.iter().map(|m| m.snapshot()).collect(),
        }
    }

    /// A delta-tracking view starting from the current state.
    pub fn watch(&self) -> FleetWatch {
        FleetWatch {
            registry: self.clone(),
            last: self.snapshot(),
            last_at: Instant::now(),
        }
    }
}

/// What one shard did between two watch ticks.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardDelta {
    /// The shard index.
    pub shard: u16,
    /// Sessions completed in the window.
    pub completed: u64,
    /// Protocol steps executed in the window.
    pub steps: u64,
    /// Engine rounds stepped in the window.
    pub rounds: u64,
}

/// What the fleet did between two watch ticks: the wall-clock window,
/// per-shard deltas, and the fresh snapshot the delta was computed
/// against (so a dashboard renders gauges and rates from one tick).
#[derive(Debug, Clone)]
pub struct FleetDelta {
    /// Wall-clock seconds since the previous tick.
    pub secs: f64,
    /// Sessions completed fleet-wide in the window.
    pub completed: u64,
    /// Protocol steps executed fleet-wide in the window.
    pub steps: u64,
    /// Per-shard deltas.
    pub per_shard: Vec<ShardDelta>,
    /// The snapshot this delta ends at.
    pub snapshot: FleetSnapshot,
}

impl FleetDelta {
    /// Completed sessions per second over the window (`0.0` for a
    /// zero-width window).
    pub fn sessions_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.completed as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Protocol steps per second over the window.
    pub fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// Tracks consecutive snapshots of a [`FleetRegistry`]; each
/// [`tick`](FleetWatch::tick) yields the [`FleetDelta`] since the last.
#[derive(Debug)]
pub struct FleetWatch {
    registry: FleetRegistry,
    last: FleetSnapshot,
    last_at: Instant,
}

impl FleetWatch {
    /// Takes a fresh snapshot and returns the delta since the previous
    /// tick (or since the watch was created).
    pub fn tick(&mut self) -> FleetDelta {
        let now = Instant::now();
        let snapshot = self.registry.snapshot();
        let per_shard: Vec<ShardDelta> = snapshot
            .shards
            .iter()
            .zip(&self.last.shards)
            .map(|(cur, prev)| ShardDelta {
                shard: cur.shard,
                completed: cur.completed.saturating_sub(prev.completed),
                steps: cur.steps.saturating_sub(prev.steps),
                rounds: cur.round.saturating_sub(prev.round),
            })
            .collect();
        let delta = FleetDelta {
            secs: now.duration_since(self.last_at).as_secs_f64(),
            completed: per_shard.iter().map(|d| d.completed).sum(),
            steps: per_shard.iter().map(|d| d.steps).sum(),
            per_shard,
            snapshot: snapshot.clone(),
        };
        self.last = snapshot;
        self.last_at = now;
        delta
    }
}

/// Stall-watchdog configuration: a session is flagged when its age (in
/// engine rounds since admission) exceeds
/// `max(min_rounds, ⌈multiplier · healthy_step_bound / quantum⌉)` — a
/// configurable multiple of its protocol's *certified* expected cost
/// ([`healthy_step_bound`]), translated from steps to rounds by the
/// engine's quantum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogSpec {
    /// Slack multiplier over the healthy step bound. The default (8×)
    /// keeps clean churn grids at zero false positives: observed p99
    /// latency is ~5 rounds while the smallest default threshold is 16.
    #[serde(default = "default_multiplier")]
    pub multiplier: f64,
    /// Floor on the threshold in rounds, so tiny inputs (whose bound is
    /// a handful of steps) are not flagged on scheduling jitter.
    #[serde(default = "default_min_rounds")]
    pub min_rounds: u64,
}

fn default_multiplier() -> f64 {
    8.0
}

fn default_min_rounds() -> u64 {
    16
}

impl Default for WatchdogSpec {
    fn default() -> Self {
        WatchdogSpec {
            multiplier: default_multiplier(),
            min_rounds: default_min_rounds(),
        }
    }
}

impl WatchdogSpec {
    /// The flagging threshold in engine rounds for a session whose
    /// healthy cost is `expected_steps`, under a `quantum`-step round.
    pub fn threshold_rounds(&self, expected_steps: u64, quantum: u32) -> u64 {
        let rounds = (self.multiplier * expected_steps as f64 / f64::from(quantum.max(1))).ceil();
        (rounds as u64).max(self.min_rounds)
    }
}

/// The certified expectation for how many protocol steps a *healthy*
/// session of this family needs on an input of `input_len` items — the
/// theory-grounded baseline the watchdog multiplies.
///
/// Derivation: the receiver must single out the input among at most
/// `α(m)` claimed sequences ([`stp_core::alpha::alpha`]); the tight
/// protocol's knowledge frontier collapses to the exact input after at
/// most `input_len + 1` *productive* S→R deliveries (one per item plus
/// the end-marker round — the same per-item collapse the
/// [`FrontierProbe`](../../stp_knowledge/frontier/index.html) samples),
/// each acknowledged R→S. On a healthy channel a send becomes
/// deliverable the next step, so one productive exchange costs at most
/// four steps (S send, deliver-to-R, R ack send, deliver-to-S); the
/// constant `+4` absorbs `Init` and the final completion check. ABP and
/// the naive variant pipeline the same per-item exchange, so they share
/// the bound. The self-stabilizing family pays an extra RESET preamble
/// of up to `2·max_len` steps before its indexed-frame exchange, and
/// its end-of-frame round trips cost six steps in the worst interleaving
/// — hence the larger constants.
pub fn healthy_step_bound(family: &FamilySpec, input_len: usize) -> u64 {
    let len = input_len as u64;
    match family {
        FamilySpec::Tight { .. } | FamilySpec::Naive { .. } | FamilySpec::Abp { .. } => {
            4 * (len + 1) + 4
        }
        FamilySpec::Stabilizing { max_len, .. } => 6 * (len + 2) + 2 * u64::from(*max_len),
    }
}

/// One watchdog flag: a session whose age exceeded its threshold. The
/// embedded [`SessionSpec`] (family, input, channel, scheduler, seed,
/// budgets) is complete provenance — `spec.build_world()` replays the
/// exact session through the single-world path and the witness
/// machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallRecord {
    /// Which harness produced this line; empty when untagged.
    #[serde(default)]
    pub experiment: String,
    /// The shard the session is running on.
    pub shard: u16,
    /// The session's per-shard serial ([`SessionId::serial`](crate::sessions::SessionId::serial)).
    pub serial: u64,
    /// The engine round the flag was raised on.
    pub round: u64,
    /// The session's age in rounds since admission when flagged.
    pub age_rounds: u64,
    /// The threshold it exceeded, in rounds.
    pub threshold_rounds: u64,
    /// The healthy step bound the threshold was derived from.
    pub expected_steps: u64,
    /// Protocol steps the session had executed when flagged.
    pub steps: Step,
    /// Full session provenance: replay with
    /// [`SessionSpec::build_world`].
    pub spec: SessionSpec,
}

/// Renders a [`FleetSnapshot`] in the Prometheus text exposition format
/// (version 0.0.4): per-shard counters and gauges labelled
/// `{shard="N"}`, plus the fleet-wide latency distribution as a
/// cumulative `_bucket`/`_sum`/`_count` histogram.
pub fn prometheus_text(snapshot: &FleetSnapshot) -> String {
    use std::fmt::Write as _;
    // One exposition row: metric name, help text, field accessor.
    type MetricRow = (&'static str, &'static str, fn(&ShardSnapshot) -> u64);
    let mut out = String::new();
    let counters: [MetricRow; 9] = [
        (
            "stp_sessions_submitted_total",
            "Sessions submitted to the shard.",
            |s| s.submitted,
        ),
        (
            "stp_sessions_admitted_total",
            "Sessions admitted into slots.",
            |s| s.admitted,
        ),
        (
            "stp_sessions_completed_total",
            "Sessions that completed their transmission.",
            |s| s.completed,
        ),
        (
            "stp_sessions_disconnected_total",
            "Sessions that walked away.",
            |s| s.disconnected,
        ),
        (
            "stp_sessions_exhausted_total",
            "Sessions that ran out of step budget.",
            |s| s.exhausted,
        ),
        (
            "stp_slot_recycle_hits_total",
            "Admissions that reused a previously-occupied slot.",
            |s| s.recycle_hits,
        ),
        (
            "stp_slot_recycle_misses_total",
            "Admissions that provisioned a virgin slot.",
            |s| s.recycle_misses,
        ),
        (
            "stp_protocol_steps_total",
            "Protocol steps executed by the shard.",
            |s| s.steps,
        ),
        (
            "stp_sessions_stalled_total",
            "Sessions flagged by the stall watchdog.",
            |s| s.stalls,
        ),
    ];
    let gauges: [MetricRow; 4] = [
        (
            "stp_engine_round",
            "Engine rounds stepped by the shard.",
            |s| s.round,
        ),
        ("stp_sessions_queued", "Sessions waiting for a slot.", |s| {
            s.queued
        }),
        ("stp_sessions_active", "Sessions in slots.", |s| s.active),
        (
            "stp_oldest_active_age_rounds",
            "Age in rounds of the oldest active session.",
            |s| s.oldest_active_age,
        ),
    ];
    for (name, help, get) in counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for s in &snapshot.shards {
            let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", s.shard, get(s));
        }
    }
    for (name, help, get) in gauges {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for s in &snapshot.shards {
            let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", s.shard, get(s));
        }
    }
    let stats = snapshot.stats();
    let name = "stp_session_latency_rounds";
    let _ = writeln!(
        out,
        "# HELP {name} Submit-to-retire latency of completed sessions, in engine rounds."
    );
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, bound) in stats.latency.bounds.iter().enumerate() {
        cumulative += stats.latency.counts[i];
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", stats.latency.count);
    let _ = writeln!(out, "{name}_sum {}", stats.latency.sum);
    let _ = writeln!(out, "{name}_count {}", stats.latency.count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_protocols::ResendPolicy;

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let atomic = AtomicHistogram::new(vec![1.0, 2.0, 4.0]);
        let mut plain = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0u64, 1, 1, 3, 9] {
            atomic.record(v);
            plain.record(v as f64);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn atomic_histogram_empty_snapshot_is_well_formed() {
        let h = AtomicHistogram::new(vec![1.0, 2.0]).snapshot();
        assert_eq!(h.count, 0);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        // Merges with an ordinary empty histogram of the same layout.
        let mut other = Histogram::new(vec![1.0, 2.0]);
        other.merge(&h);
        assert_eq!(other.count, 0);
    }

    #[test]
    fn atomic_histogram_is_safe_under_concurrent_recording() {
        let h = AtomicHistogram::new((0..32).map(|i| 1.0 + i as f64).collect());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record((t * 7 + i) % 40);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4_000);
        assert_eq!(snap.counts.iter().sum::<u64>(), 4_000);
    }

    #[test]
    fn shard_metrics_round_trip_into_a_snapshot() {
        let m = ShardMetrics::new(3);
        m.note_submitted();
        m.note_submitted();
        m.note_admitted(false);
        m.note_admitted(true);
        m.note_completed(4);
        m.note_disconnected();
        m.note_stall();
        m.end_round(5, 7, 1, 2, 16);
        let s = m.snapshot();
        assert_eq!(s.shard, 3);
        assert_eq!(s.submitted, 2);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.recycle_hits, 1);
        assert_eq!(s.recycle_misses, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.disconnected, 1);
        assert_eq!(s.exhausted, 0);
        assert_eq!(s.stalls, 1);
        assert_eq!(s.round, 5);
        assert_eq!(s.queued, 7);
        assert_eq!(s.active, 1);
        assert_eq!(s.oldest_active_age, 2);
        assert_eq!(s.steps, 16);
        assert_eq!(s.latency.count, 1);
        assert_eq!(s.round_cost.count, 1);
        assert_eq!(s.p50_latency_rounds(), 4.0);
    }

    #[test]
    fn p99_is_the_no_samples_sentinel_with_zero_completed_sessions() {
        // The regression the satellite fix pins: an idle fleet must
        // report an explicit sentinel, not NaN and not a phantom 0.0.
        let registry = FleetRegistry::new(2);
        let stats = registry.snapshot().stats();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.p99_latency_rounds(), NO_SAMPLES);
        assert_eq!(stats.p50_latency_rounds(), NO_SAMPLES);
        assert!(!stats.p99_latency_rounds().is_nan());
        let shard = &registry.snapshot().shards[0];
        assert_eq!(shard.p99_latency_rounds(), NO_SAMPLES);
        // The telemetry form carries the sentinel through serialization.
        let record = stats.record("t");
        let json = serde_json::to_string(&record).unwrap();
        assert!(!json.contains("NaN"), "{json}");
        assert_eq!(record.p99_latency_rounds, NO_SAMPLES);
        // One completion flips both percentiles to real values.
        registry.shard(0).note_completed(3);
        let stats = registry.snapshot().stats();
        assert_eq!(stats.p99_latency_rounds(), 3.0);
    }

    #[test]
    fn fleet_stats_aggregate_sums_maxes_and_merges() {
        let registry = FleetRegistry::new(2);
        registry.shard(0).note_submitted();
        registry.shard(0).note_completed(2);
        registry.shard(0).end_round(4, 1, 1, 9, 8);
        registry.shard(1).note_submitted();
        registry.shard(1).note_submitted();
        registry.shard(1).note_completed(6);
        registry.shard(1).end_round(7, 0, 2, 3, 24);
        let stats = registry.snapshot().stats();
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.round, 7, "rounds max across shards");
        assert_eq!(stats.oldest_active_age, 9, "age maxes across shards");
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.active, 3);
        assert_eq!(stats.steps, 32);
        assert_eq!(stats.latency.count, 2, "latency merges across shards");
        assert_eq!(stats.latency.min, 2.0);
        assert_eq!(stats.latency.max, 6.0);
    }

    #[test]
    fn watch_ticks_yield_deltas_between_snapshots() {
        let registry = FleetRegistry::new(2);
        let mut watch = registry.watch();
        registry.shard(0).note_completed(1);
        registry.shard(0).end_round(1, 0, 0, 0, 10);
        registry.shard(1).end_round(1, 0, 0, 0, 6);
        let d = watch.tick();
        assert_eq!(d.completed, 1);
        assert_eq!(d.steps, 16);
        assert_eq!(d.per_shard[0].completed, 1);
        assert_eq!(d.per_shard[0].rounds, 1);
        assert_eq!(d.per_shard[1].completed, 0);
        assert!(d.secs >= 0.0);
        // The next tick starts from the new baseline.
        let d = watch.tick();
        assert_eq!(d.completed, 0);
        assert_eq!(d.steps, 0);
        assert!(d.sessions_per_sec() >= 0.0);
    }

    #[test]
    fn watchdog_threshold_respects_floor_and_scales_with_bound() {
        let w = WatchdogSpec::default();
        // Tiny bound: the floor wins.
        assert_eq!(w.threshold_rounds(4, 8), w.min_rounds);
        // Large bound: multiplier · steps / quantum, rounded up.
        assert_eq!(w.threshold_rounds(100, 8), 100);
        let tight = WatchdogSpec {
            multiplier: 2.0,
            min_rounds: 1,
        };
        assert_eq!(tight.threshold_rounds(9, 8), 3, "ceil(18/8) = 3");
        // Quantum 0 is clamped rather than dividing by zero.
        assert!(tight.threshold_rounds(9, 0) >= 1);
    }

    #[test]
    fn healthy_step_bound_grows_with_input_and_family() {
        let tight = FamilySpec::Tight {
            d: 3,
            policy: ResendPolicy::Once,
        };
        assert_eq!(healthy_step_bound(&tight, 0), 8);
        assert_eq!(healthy_step_bound(&tight, 3), 20);
        assert!(healthy_step_bound(&tight, 4) > healthy_step_bound(&tight, 3));
        let abp = FamilySpec::Abp {
            domain: 2,
            max_len: 3,
        };
        assert_eq!(healthy_step_bound(&abp, 3), healthy_step_bound(&tight, 3));
        let stab = FamilySpec::Stabilizing { d: 2, max_len: 4 };
        assert!(
            healthy_step_bound(&stab, 3) > healthy_step_bound(&tight, 3),
            "stabilizing pays its RESET preamble"
        );
    }

    #[test]
    fn snapshots_serialize_and_round_trip() {
        let registry = FleetRegistry::new(2);
        registry.shard(0).note_submitted();
        registry.shard(0).note_completed(2);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: FleetSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let stats = snap.stats();
        let json = serde_json::to_string(&stats).unwrap();
        let back: FleetStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn prometheus_text_exposes_counters_gauges_and_the_histogram() {
        let registry = FleetRegistry::new(2);
        registry.shard(0).note_submitted();
        registry.shard(0).note_admitted(false);
        registry.shard(0).note_completed(3);
        registry.shard(1).end_round(2, 5, 1, 4, 16);
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("# TYPE stp_sessions_submitted_total counter"));
        assert!(text.contains("stp_sessions_submitted_total{shard=\"0\"} 1"));
        assert!(text.contains("stp_sessions_submitted_total{shard=\"1\"} 0"));
        assert!(text.contains("# TYPE stp_sessions_queued gauge"));
        assert!(text.contains("stp_sessions_queued{shard=\"1\"} 5"));
        assert!(text.contains("# TYPE stp_session_latency_rounds histogram"));
        assert!(text.contains("stp_session_latency_rounds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("stp_session_latency_rounds_count 1"));
        // Cumulative buckets: every line ≤ the +Inf count, none absent.
        let buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("stp_session_latency_rounds_bucket"))
            .collect();
        assert_eq!(buckets.len(), 257, "256 edges + +Inf");
    }
}
