//! The work-stealing parallel sweep executor: chunked cell deques with
//! neighbor stealing, per-worker pooled worlds, and a deterministic
//! post-join merge.
//!
//! [`SweepEngine::run`](crate::engine::SweepEngine::run) already spreads
//! the grid over threads, but its single shared cursor hands out one cell
//! at a time — under tiny cells the atomic traffic dominates, and a slow
//! cell at the tail leaves every other worker idle. [`StealSweep`] fixes
//! both:
//!
//! * **Chunked deques** — the flattened work list is cut into fixed-size
//!   chunks dealt round-robin across per-worker deques. A worker pops
//!   chunks off its own front; contention only happens when someone runs
//!   dry.
//! * **Neighbor stealing** — an idle worker scans its neighbors in ring
//!   order and steals the back *half* of the first non-empty deque it
//!   finds, so imbalance halves per steal instead of migrating one cell
//!   at a time.
//! * **Per-worker pooled worlds** — each worker lazily builds one
//!   [`World`] per scheduler recipe and [`World::reset`]s it between
//!   cells, exactly the PR 2 pooling contract. Worlds never cross
//!   threads.
//! * **Merge-on-join** — telemetry flushes through batched
//!   [`LocalProgress`](crate::telemetry::LocalProgress) handles and every
//!   result carries its grid index; the join flattens, sorts, and yields
//!   a [`SweepOutcome`] bit-identical to the serial engine regardless of
//!   how the steals interleaved (pinned by `tests/steal_parity.rs`).
//!
//! For benchmarking on oversubscribed or single-core hosts,
//! [`StealSweep::run_isolated`] runs each worker's statically-owned
//! chunks sequentially and reports per-worker busy time, so aggregate
//! throughput can be computed from the critical path rather than
//! wall-clock (the same convention as `bench_sessions`' churn lanes).

use crate::engine::{run_cell, Cell, SweepEngine, SweepSpec};
use crate::prof::PhaseProfiler;
use crate::runner::{MemberRun, SweepOutcome};
use crate::telemetry::ProgressMeter;
use crate::world::World;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Instant;
use stp_core::data::DataSeq;
use stp_protocols::ProtocolFamily;

/// Default cells per chunk. Small enough that a 32-cell parity grid
/// still exercises multi-chunk stealing, large enough that deque locks
/// are off the per-cell fast path.
pub const DEFAULT_CHUNK: usize = 16;

/// A half-open range of indices into the flattened work list. Chunks are
/// the unit of ownership and theft; cells inside a chunk always run in
/// ascending order on whichever worker holds it.
type Chunk = (usize, usize);

/// The work-stealing sweep executor: wraps a [`SweepSpec`] plus an
/// explicit worker count and chunk size.
///
/// The spec's own `threads` field is ignored — the executor's `workers`
/// parameter is authoritative, so one spec can be replayed at 1/2/4/8
/// workers for scaling curves without mutation.
#[derive(Debug, Clone)]
pub struct StealSweep {
    spec: SweepSpec,
    workers: usize,
    chunk: usize,
}

/// A timed [`StealSweep::run_isolated`] result: the merged outcome plus
/// per-worker busy seconds, from which the critical-path throughput is
/// derived.
#[derive(Debug, Clone)]
pub struct StealReport {
    /// The merged sweep outcome, identical to [`StealSweep::run`].
    pub outcome: SweepOutcome,
    /// Busy seconds per worker, indexed by worker id.
    pub worker_busy_secs: Vec<f64>,
    /// Wall-clock seconds for the whole isolated pass (the sum of the
    /// busy times on a single-core host, plus merge overhead).
    pub wall_secs: f64,
}

impl StealReport {
    /// The slowest worker's busy time — the wall-clock a perfectly
    /// parallel host would need for this partition.
    pub fn critical_path_secs(&self) -> f64 {
        self.worker_busy_secs.iter().copied().fold(0.0, f64::max)
    }

    /// Aggregate runs per second over the critical path.
    pub fn runs_per_sec(&self) -> f64 {
        let cp = self.critical_path_secs();
        if cp > 0.0 {
            self.outcome.len() as f64 / cp
        } else {
            0.0
        }
    }
}

impl StealSweep {
    /// Wraps a spec with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero — an executor with no workers cannot
    /// make progress.
    pub fn new(spec: SweepSpec, workers: usize) -> Self {
        assert!(workers > 0, "a steal executor needs at least one worker");
        StealSweep {
            spec,
            workers,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Replaces the chunk size (cells per unit of theft).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunks must hold at least one cell");
        self.chunk = chunk;
        self
    }

    /// The spec this executor runs.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cuts `n` cells into chunk ranges and deals them round-robin:
    /// chunk `c` starts on worker `c % workers`. Round-robin (rather
    /// than contiguous blocks) keeps the initial deal balanced even when
    /// cell cost drifts across the grid.
    fn deal(&self, n: usize) -> Vec<VecDeque<Chunk>> {
        let mut deques: Vec<VecDeque<Chunk>> = (0..self.workers).map(|_| VecDeque::new()).collect();
        let mut start = 0;
        let mut c = 0;
        while start < n {
            let end = (start + self.chunk).min(n);
            deques[c % self.workers].push_back((start, end));
            start = end;
            c += 1;
        }
        deques
    }

    /// Runs the whole grid across the executor's workers with neighbor
    /// stealing. Results are in grid order, bit-identical to
    /// [`SweepEngine::run_serial`].
    pub fn run(&self, family: &(dyn ProtocolFamily + Sync)) -> SweepOutcome {
        self.run_inner(family, None, None)
    }

    /// [`StealSweep::run`] with optional live progress. Workers report
    /// through batched [`LocalProgress`](crate::telemetry::LocalProgress)
    /// handles, so the shared meter is touched once per batch rather than
    /// once per cell.
    pub fn run_observed(
        &self,
        family: &(dyn ProtocolFamily + Sync),
        meter: Option<&ProgressMeter>,
    ) -> SweepOutcome {
        self.run_inner(family, meter, None)
    }

    /// [`StealSweep::run`] with a phase profiler attached: each worker
    /// samples every [`period`](PhaseProfiler::period)-th of *its own*
    /// cells, so attribution coverage is independent of the worker count
    /// (pinned ≥ 95% by `tests/prof_parity.rs`). Profiling never changes
    /// the results.
    pub fn run_profiled(
        &self,
        family: &(dyn ProtocolFamily + Sync),
        prof: &PhaseProfiler,
    ) -> SweepOutcome {
        self.run_inner(family, None, Some(prof))
    }

    fn run_inner(
        &self,
        family: &(dyn ProtocolFamily + Sync),
        meter: Option<&ProgressMeter>,
        prof: Option<&PhaseProfiler>,
    ) -> SweepOutcome {
        let claimed = family.claimed_family();
        let work = SweepEngine::new(self.spec.clone()).work_list(claimed.seqs());
        if let Some(m) = meter {
            m.begin(work.len());
        }
        let deques: Vec<Mutex<VecDeque<Chunk>>> =
            self.deal(work.len()).into_iter().map(Mutex::new).collect();
        let spec = &self.spec;
        let work = &work;
        let deques = &deques;
        let seqs = claimed.seqs();
        let workers = self.workers;
        let buckets: Vec<Vec<(usize, MemberRun)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut local = meter.map(|m| {
                            m.worker_started();
                            m.local()
                        });
                        let mut worlds: Vec<Option<World>> =
                            (0..spec.schedulers.len()).map(|_| None).collect();
                        let mut out = Vec::new();
                        let mut tick: u64 = 0;
                        while let Some((start, end)) = next_chunk(deques, w) {
                            for (i, &cell) in work.iter().enumerate().take(end).skip(start) {
                                run_indexed_cell(
                                    &mut worlds,
                                    family,
                                    spec,
                                    seqs,
                                    cell,
                                    i,
                                    prof,
                                    &mut tick,
                                    &mut out,
                                );
                                if let Some(l) = local.as_mut() {
                                    l.add(1);
                                }
                            }
                        }
                        drop(local); // flush the tail batch
                        if let Some(m) = meter {
                            m.worker_finished();
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("steal worker panicked"))
                .collect()
        });
        let outcome = merge(buckets);
        if let Some(m) = meter {
            m.finish();
        }
        outcome
    }

    /// Runs every worker's statically-dealt chunks sequentially on the
    /// calling thread — no stealing, no real threads — timing each
    /// worker's busy loop. The merged outcome is still bit-identical to
    /// [`StealSweep::run`], and [`StealReport::runs_per_sec`] measures
    /// the partition's critical path: what `workers` real cores would
    /// achieve, judged honestly from a single core.
    pub fn run_isolated(&self, family: &dyn ProtocolFamily) -> StealReport {
        let wall = Instant::now();
        let claimed = family.claimed_family();
        let work = SweepEngine::new(self.spec.clone()).work_list(claimed.seqs());
        let deques = self.deal(work.len());
        let mut buckets = Vec::with_capacity(self.workers);
        let mut busy = Vec::with_capacity(self.workers);
        for deque in deques {
            let t = Instant::now();
            let mut worlds: Vec<Option<World>> =
                (0..self.spec.schedulers.len()).map(|_| None).collect();
            let mut out = Vec::new();
            let mut tick: u64 = 0;
            for (start, end) in deque {
                for (i, &cell) in work.iter().enumerate().take(end).skip(start) {
                    run_indexed_cell(
                        &mut worlds,
                        family,
                        &self.spec,
                        claimed.seqs(),
                        cell,
                        i,
                        None,
                        &mut tick,
                        &mut out,
                    );
                }
            }
            busy.push(t.elapsed().as_secs_f64());
            buckets.push(out);
        }
        StealReport {
            outcome: merge(buckets),
            worker_busy_secs: busy,
            wall_secs: wall.elapsed().as_secs_f64(),
        }
    }
}

/// Pops the next chunk for worker `w`: own deque first (front), then
/// neighbors in ring order, stealing the back half of the first
/// non-empty deque found. Returns `None` when every deque is empty —
/// chunks are never re-queued after the transfer, so an empty full scan
/// means the grid is drained (a chunk mid-theft is already owned by its
/// thief and will be executed there).
fn next_chunk(deques: &[Mutex<VecDeque<Chunk>>], w: usize) -> Option<Chunk> {
    if let Some(chunk) = deques[w].lock().pop_front() {
        return Some(chunk);
    }
    let n = deques.len();
    for step in 1..n {
        let victim = (w + step) % n;
        let mut stolen = {
            let mut v = deques[victim].lock();
            let len = v.len();
            if len == 0 {
                continue;
            }
            // Take the back half (rounded up), leaving the front — the
            // part the victim is about to work on — in place.
            v.split_off(len - len.div_ceil(2))
        };
        let first = stolen.pop_front().expect("stole at least one chunk");
        if !stolen.is_empty() {
            deques[w].lock().append(&mut stolen);
        }
        return Some(first);
    }
    None
}

/// Runs one grid cell on the worker's pooled worlds, tagging the result
/// with its grid index and advancing the worker-local profiler tick.
#[allow(clippy::too_many_arguments)]
fn run_indexed_cell(
    worlds: &mut [Option<World>],
    family: &dyn ProtocolFamily,
    spec: &SweepSpec,
    seqs: &[DataSeq],
    cell: Cell,
    index: usize,
    prof: Option<&PhaseProfiler>,
    tick: &mut u64,
    out: &mut Vec<(usize, MemberRun)>,
) {
    let cell_prof = prof.filter(|p| {
        *tick += 1;
        p.sample(*tick)
    });
    let (sched, xi, seed) = cell;
    out.push((
        index,
        run_cell(worlds, family, spec, sched, &seqs[xi], seed, cell_prof),
    ));
}

/// Flattens per-worker result buckets and restores grid order. The sort
/// key is the grid index, so the merged outcome is independent of how
/// chunks migrated between workers.
fn merge(buckets: Vec<Vec<(usize, MemberRun)>>) -> SweepOutcome {
    let mut indexed: Vec<(usize, MemberRun)> = buckets.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    SweepOutcome::from_runs(indexed.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{ChannelSpec, SchedulerSpec};
    use stp_protocols::{ResendPolicy, TightFamily};

    fn storm_spec() -> SweepSpec {
        SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::DupStorm { p_deliver: 0.9 })
            .max_steps(5_000)
            .seeds(0..6)
            .trace_mode(stp_core::event::TraceMode::Off)
            .probe(true)
    }

    #[test]
    fn deal_covers_the_grid_without_overlap() {
        let sweep = StealSweep::new(storm_spec(), 3).chunk(4);
        let deques = sweep.deal(29);
        let mut seen = [false; 29];
        for d in &deques {
            for &(s, e) in d {
                assert!(s < e && e <= 29);
                for slot in &mut seen[s..e] {
                    assert!(!*slot, "cell dealt twice");
                    *slot = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b), "cell never dealt");
    }

    #[test]
    fn stealing_drains_a_lopsided_deal() {
        // All chunks on worker 0; workers 1..3 must steal to get work.
        let deques: Vec<Mutex<VecDeque<Chunk>>> = vec![
            Mutex::new((0..8).map(|c| (c * 4, c * 4 + 4)).collect()),
            Mutex::new(VecDeque::new()),
            Mutex::new(VecDeque::new()),
        ];
        let mut got = [0usize; 3];
        let mut total = 0;
        // Round-robin the pops across workers to interleave thefts.
        let mut stuck = 0;
        while stuck < 3 {
            let w = total % 3;
            if next_chunk(&deques, w).is_some() {
                got[w] += 1;
                stuck = 0;
            } else {
                stuck += 1;
            }
            total += 1;
        }
        assert_eq!(got.iter().sum::<usize>(), 8, "every chunk popped once");
        assert!(got[1] + got[2] > 0, "thieves never got work");
    }

    #[test]
    fn isolated_report_matches_threaded_run() {
        let family = TightFamily::new(3, ResendPolicy::Once);
        let sweep = StealSweep::new(storm_spec(), 4).chunk(2);
        let threaded = sweep.run(&family);
        let report = sweep.run_isolated(&family);
        assert_eq!(threaded.runs, report.outcome.runs);
        assert_eq!(report.worker_busy_secs.len(), 4);
        assert!(report.runs_per_sec() > 0.0);
        assert!(report.critical_path_secs() <= report.wall_secs);
    }

    #[test]
    fn more_workers_than_chunks_still_completes() {
        let family = TightFamily::new(2, ResendPolicy::Once);
        let sweep = StealSweep::new(storm_spec(), 8).chunk(64);
        let outcome = sweep.run(&family);
        let serial = SweepEngine::new(storm_spec()).run_serial(&family);
        assert_eq!(outcome.runs, serial.runs);
    }
}
