//! JSONL telemetry export and live sweep progress.
//!
//! Two independent facilities:
//!
//! * **Export** — [`TelemetryWriter`] serializes per-run records
//!   ([`RunRecord`]), per-message lifecycle spans ([`SpanRecord`]),
//!   knowledge-frontier samples ([`FrontierRecord`]) and sweep-wide
//!   [`SweepReport`]s as JSON Lines through a pluggable [`Sink`] (file,
//!   stdout, in-memory). Each line is one self-describing object —
//!   `{"run": …}`, `{"span": …}`, `{"frontier": …}` or `{"report": …}` —
//!   so a consumer can dispatch without a schema registry. The writer is
//!   opt-in via the `STP_TELEMETRY` environment variable
//!   ([`TelemetryWriter::from_env`]), which keeps the experiment
//!   binaries' stdout byte-identical when telemetry is off.
//! * **Progress** — [`ProgressMeter`] is a thread-safe runs-done /
//!   runs-total counter with a throttled reporting callback (default:
//!   one line to *stderr* per interval) that the sweep engine and the
//!   SLO harness drive while a grid is in flight.

use crate::fleet::{FleetRecord, StallRecord};
use crate::metrics::{RunStats, SweepReport};
use crate::prof::ProfRecord;
use crate::runner::{MemberRun, SweepOutcome};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use stp_core::data::DataSeq;
use stp_core::event::{ProcessId, Step};

/// Where telemetry lines go. Implementations are line-oriented: one call,
/// one complete JSON document, no partial writes observable by a reader
/// of the finished stream.
pub trait Sink: Send {
    /// Appends one line (the trailing newline is the sink's job).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn write_line(&mut self, line: &str) -> io::Result<()>;

    /// Flushes buffered lines to the backing store.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn flush(&mut self) -> io::Result<()>;
}

/// A buffered append-mode file sink. Append (rather than truncate) lets
/// several experiment binaries share one telemetry file in sequence, as
/// `run_all` does.
#[derive(Debug)]
pub struct FileSink {
    writer: BufWriter<File>,
}

impl FileSink {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileSink {
            writer: BufWriter::new(file),
        })
    }
}

impl Sink for FileSink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Writes lines to standard output (for piping into `jq` and friends).
#[derive(Debug, Default)]
pub struct StdoutSink;

impl Sink for StdoutSink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        let mut out = io::stdout().lock();
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        io::stdout().lock().flush()
    }
}

/// Collects lines in memory — the test double, and a convenient buffer
/// when a harness wants to post-process its own telemetry.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    lines: std::sync::Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A clone of every line written so far. The handle is shared: clone
    /// the sink before boxing it into a writer, then read lines back here.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

impl Sink for MemorySink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.lines.lock().push(line.to_string());
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// One run of one grid cell, flattened for export: what `MemberRun`
/// knows minus the trace, plus an experiment tag so lines from different
/// harnesses can share a file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Which harness produced this line (e.g. `"e1"`); empty when untagged.
    #[serde(default)]
    pub experiment: String,
    /// The input sequence of the run.
    pub input: DataSeq,
    /// The adversary seed.
    pub seed: u64,
    /// Index into the sweep's scheduler list.
    pub scheduler: usize,
    /// The run's statistics.
    pub stats: RunStats,
}

impl RunRecord {
    /// Flattens a [`MemberRun`] under an experiment tag.
    pub fn of(experiment: &str, run: &MemberRun) -> RunRecord {
        RunRecord {
            experiment: experiment.to_string(),
            input: run.input.clone(),
            seed: run.seed,
            scheduler: run.scheduler,
            stats: run.stats.clone(),
        }
    }
}

/// The wire form of a per-run line: `{"run": {…}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunLine {
    /// The record.
    pub run: RunRecord,
}

/// The wire form of an aggregate line: `{"report": {…}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportLine {
    /// The sweep-wide aggregation.
    pub report: SweepReport,
}

/// A one-line digest of a whole experiment harness — the form every
/// E-bin emits even when it has no sweep to export (impossibility
/// certificates, exact-universe analyses, witness shrinking).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSummary {
    /// Which harness produced this line (e.g. `"e4"`).
    pub experiment: String,
    /// Result rows the harness produced.
    pub rows: usize,
    /// Whether the harness's headline claim held on every row.
    pub ok: bool,
}

/// The wire form of a digest line: `{"summary": {…}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryLine {
    /// The digest.
    pub summary: ExperimentSummary,
}

/// The wire form of one per-message lifecycle span — the flattened
/// `MsgSpan` a `TraceProbe` reconstructs, tagged with its run context so
/// span lines from many runs can share a file. Step fields mirror the
/// span: `delivered_at` holds every delivery (duplicate fan-out ⇒ more
/// than one), `dropped_at`/`expired_at` the terminal loss if any, and
/// `coalesced_into` the origin span a duplicate re-send merged into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Which harness produced this line; empty when untagged.
    #[serde(default)]
    pub experiment: String,
    /// The adversary seed of the run.
    pub seed: u64,
    /// The send's `MsgId` (dense from 0 in send order within the run).
    pub id: u64,
    /// The processor the message was addressed to.
    pub to: ProcessId,
    /// Raw alphabet index of the message value.
    pub msg: u16,
    /// The step the send happened at.
    pub sent_at: Step,
    /// On duplicating channels: the earlier span this send merged into.
    #[serde(default)]
    pub coalesced_into: Option<u64>,
    /// Every step a copy of this span was delivered.
    #[serde(default)]
    pub delivered_at: Vec<Step>,
    /// The step the adversary deleted the copy, if it was.
    #[serde(default)]
    pub dropped_at: Option<Step>,
    /// The step the channel expired the copy, if it did.
    #[serde(default)]
    pub expired_at: Option<Step>,
    /// The resolved fate, as its display form (`"delivered"`, `"dropped"`,
    /// `"expired"`, `"in-flight"`, `"coalesced"`).
    pub fate: String,
}

/// The wire form of a span line: `{"span": {…}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanLine {
    /// The span.
    pub span: SpanRecord,
}

/// One knowledge-frontier sample: how much each side knows at a step.
/// The receiver's knowledge is the number of candidate continuations
/// compatible with what it has seen (`candidates`, the α-style count);
/// the sender's is how many items it knows to be acknowledged
/// (`s_ack_depth`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierRecord {
    /// Which harness produced this line; empty when untagged.
    #[serde(default)]
    pub experiment: String,
    /// The adversary seed of the run.
    pub seed: u64,
    /// The step the sample was taken at.
    pub step: Step,
    /// Items the receiver has safely written (its learned prefix).
    pub r_written: usize,
    /// Candidate sequences still compatible with the receiver's knowledge
    /// (`u128`: the α-style counts overflow `u64` near `m = 20`).
    pub candidates: u128,
    /// Items the sender knows the receiver has learned.
    pub s_ack_depth: usize,
}

/// The wire form of a frontier line: `{"frontier": {…}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierLine {
    /// The sample.
    pub frontier: FrontierRecord,
}

/// One stabilization probe, flattened for export: a corruption strike at
/// one write index and how the run recovered from it (or didn't). The
/// optional fields mirror [`StabilizationProbe`](crate::slo::StabilizationProbe):
/// `stabilized_at` absent means the run diverged — its write tail never
/// became a clean in-order input suffix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilizationRecord {
    /// Which harness produced this line (e.g. `"e12"`); empty when untagged.
    #[serde(default)]
    pub experiment: String,
    /// The protocol family name (e.g. `"stabilizing"`).
    pub protocol: String,
    /// The channel tag of the run (e.g. `"del"`).
    pub channel: String,
    /// The corruption kind of the strike (e.g. `"state-scramble"`).
    pub kind: String,
    /// The campaign seed.
    pub seed: u64,
    /// The write index the strike was triggered on.
    pub index: usize,
    /// The step of the last corruption event.
    pub fault_end: Step,
    /// How many corruption events the campaign landed.
    pub corruption_events: usize,
    /// The stabilization point, when the run reconverged.
    #[serde(default)]
    pub stabilized_at: Option<Step>,
    /// `stabilized_at − fault_end`, when the run reconverged.
    #[serde(default)]
    pub steps_to_stabilize: Option<Step>,
}

/// The wire form of a stabilization line: `{"stabilization": {…}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilizationLine {
    /// The probe record.
    pub stabilization: StabilizationRecord,
}

/// One churn-workload benchmark result, flattened for export: what a
/// [`ChurnReport`](crate::sessions::ChurnReport) measured, as the
/// `{"sessions": …}` telemetry line the bench gate consumes.
///
/// `busy_secs` is the parallel critical path — the busiest shard's
/// single-threaded stepping time — and `sessions_per_sec` is computed
/// against it, so the lane measures sharding quality independently of
/// how many cores the benchmark host has. `wall_secs` is the honest
/// wall clock of the same run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionsRecord {
    /// Which harness produced this line; empty when untagged.
    #[serde(default)]
    pub experiment: String,
    /// Shards the workload ran on.
    pub shards: usize,
    /// Sessions submitted.
    pub submitted: u64,
    /// Sessions that completed their transmission.
    pub completed: u64,
    /// Sessions that ran out of step budget.
    pub exhausted: u64,
    /// Sessions that walked away (TTL churn).
    pub disconnected: u64,
    /// Protocol steps executed across every session.
    pub total_steps: u64,
    /// Engine rounds (max across shards).
    pub rounds: u64,
    /// Wall-clock seconds of the run.
    pub wall_secs: f64,
    /// Critical-path seconds: the busiest shard's stepping time.
    pub busy_secs: f64,
    /// Completed sessions per critical-path second.
    pub sessions_per_sec: f64,
    /// p99 submit-to-retire latency of completed sessions, in rounds.
    pub p99_latency_rounds: f64,
}

/// The wire form of a churn-bench line: `{"sessions": {…}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionsLine {
    /// The record.
    pub sessions: SessionsRecord,
}

/// The wire form of a conformance-ledger line: `{"verdict": {…}}` — one
/// grid cell of the certificate gate, carrying the cell's expected and
/// observed verdicts plus the independent checker's judgement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictLine {
    /// The ledger record.
    pub verdict: stp_core::schema::ConformanceVerdict,
}

/// The wire form of a fleet-snapshot line: `{"fleet": {…}}` — one
/// per-shard or aggregate sample of the session-server metrics registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetLine {
    /// The record.
    pub fleet: FleetRecord,
}

/// The wire form of a stall-watchdog line: `{"stall": {…}}` — one
/// flagged session with full replay provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallLine {
    /// The record.
    pub stall: StallRecord,
}

/// The wire form of a profiler line: `{"prof": {…}}` — one per-phase
/// cost-attribution report from the phase-scoped profiler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfLine {
    /// The record.
    pub prof: ProfRecord,
}

/// A parsed telemetry line — what [`TelemetryLine::parse`] dispatches to.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryLine {
    /// A per-run record.
    Run(RunRecord),
    /// A sweep-wide report (boxed: it carries four histograms and would
    /// otherwise dwarf the other variants).
    Report(Box<SweepReport>),
    /// An experiment digest.
    Summary(ExperimentSummary),
    /// A per-message lifecycle span.
    Span(SpanRecord),
    /// A knowledge-frontier sample.
    Frontier(FrontierRecord),
    /// A conformance-ledger verdict.
    Verdict(stp_core::schema::ConformanceVerdict),
    /// A stabilization probe under state corruption.
    Stabilization(StabilizationRecord),
    /// A churn-workload benchmark result.
    Sessions(SessionsRecord),
    /// A fleet-metrics snapshot sample (per-shard or aggregate).
    Fleet(FleetRecord),
    /// A stall-watchdog flag with replay provenance.
    Stall(StallRecord),
    /// A phase-scoped profiler report.
    Prof(ProfRecord),
}

impl TelemetryLine {
    /// Parses one JSONL line, dispatching on its single top-level key.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error when the line is none of the
    /// `{"run": …}` / `{"span": …}` / `{"frontier": …}` / `{"summary": …}`
    /// / `{"verdict": …}` / `{"stabilization": …}` / `{"sessions": …}` /
    /// `{"fleet": …}` / `{"stall": …}` / `{"prof": …}` / `{"report": …}`
    /// documents.
    pub fn parse(line: &str) -> Result<TelemetryLine, serde_json::Error> {
        if let Ok(l) = serde_json::from_str::<RunLine>(line) {
            return Ok(TelemetryLine::Run(l.run));
        }
        if let Ok(l) = serde_json::from_str::<VerdictLine>(line) {
            return Ok(TelemetryLine::Verdict(l.verdict));
        }
        if let Ok(l) = serde_json::from_str::<StabilizationLine>(line) {
            return Ok(TelemetryLine::Stabilization(l.stabilization));
        }
        if let Ok(l) = serde_json::from_str::<SessionsLine>(line) {
            return Ok(TelemetryLine::Sessions(l.sessions));
        }
        if let Ok(l) = serde_json::from_str::<FleetLine>(line) {
            return Ok(TelemetryLine::Fleet(l.fleet));
        }
        if let Ok(l) = serde_json::from_str::<StallLine>(line) {
            return Ok(TelemetryLine::Stall(l.stall));
        }
        if let Ok(l) = serde_json::from_str::<ProfLine>(line) {
            return Ok(TelemetryLine::Prof(l.prof));
        }
        if let Ok(l) = serde_json::from_str::<SpanLine>(line) {
            return Ok(TelemetryLine::Span(l.span));
        }
        if let Ok(l) = serde_json::from_str::<FrontierLine>(line) {
            return Ok(TelemetryLine::Frontier(l.frontier));
        }
        if let Ok(l) = serde_json::from_str::<SummaryLine>(line) {
            return Ok(TelemetryLine::Summary(l.summary));
        }
        serde_json::from_str::<ReportLine>(line).map(|l| TelemetryLine::Report(Box::new(l.report)))
    }
}

/// The environment variable that switches telemetry export on:
/// unset/empty = off, `-` = stdout, anything else = append to that file.
pub const TELEMETRY_ENV: &str = "STP_TELEMETRY";

/// Serializes runs and reports as JSON Lines into a [`Sink`].
pub struct TelemetryWriter {
    sink: Box<dyn Sink>,
}

impl fmt::Debug for TelemetryWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryWriter").finish_non_exhaustive()
    }
}

impl TelemetryWriter {
    /// Wraps a sink.
    pub fn new(sink: Box<dyn Sink>) -> TelemetryWriter {
        TelemetryWriter { sink }
    }

    /// Builds a writer from [`TELEMETRY_ENV`], or `None` when the
    /// variable is unset or empty (the default: no telemetry, stdout
    /// untouched).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the named file cannot be opened.
    pub fn from_env() -> io::Result<Option<TelemetryWriter>> {
        match std::env::var(TELEMETRY_ENV) {
            Ok(v) if v == "-" => Ok(Some(TelemetryWriter::new(Box::new(StdoutSink)))),
            Ok(v) if !v.is_empty() => Ok(Some(TelemetryWriter::new(Box::new(FileSink::open(v)?)))),
            _ => Ok(None),
        }
    }

    /// Emits one per-run line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_run(&mut self, record: &RunRecord) -> io::Result<()> {
        let line = serde_json::to_string(&RunLine {
            run: record.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one aggregate line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_report(&mut self, report: &SweepReport) -> io::Result<()> {
        let line = serde_json::to_string(&ReportLine {
            report: report.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one experiment digest line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_summary(&mut self, summary: &ExperimentSummary) -> io::Result<()> {
        let line = serde_json::to_string(&SummaryLine {
            summary: summary.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one message-lifecycle span line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_span(&mut self, span: &SpanRecord) -> io::Result<()> {
        let line =
            serde_json::to_string(&SpanLine { span: span.clone() }).map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one conformance-ledger verdict line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_verdict(
        &mut self,
        verdict: &stp_core::schema::ConformanceVerdict,
    ) -> io::Result<()> {
        let line = serde_json::to_string(&VerdictLine {
            verdict: verdict.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one stabilization-probe line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_stabilization(&mut self, record: &StabilizationRecord) -> io::Result<()> {
        let line = serde_json::to_string(&StabilizationLine {
            stabilization: record.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one churn-bench line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_sessions(&mut self, record: &SessionsRecord) -> io::Result<()> {
        let line = serde_json::to_string(&SessionsLine {
            sessions: record.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one fleet-metrics snapshot line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_fleet(&mut self, record: &FleetRecord) -> io::Result<()> {
        let line = serde_json::to_string(&FleetLine {
            fleet: record.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one stall-watchdog line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_stall(&mut self, record: &StallRecord) -> io::Result<()> {
        let line = serde_json::to_string(&StallLine {
            stall: record.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one profiler cost-attribution line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_prof(&mut self, record: &ProfRecord) -> io::Result<()> {
        let line = serde_json::to_string(&ProfLine {
            prof: record.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Emits one knowledge-frontier sample line.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn emit_frontier(&mut self, frontier: &FrontierRecord) -> io::Result<()> {
        let line = serde_json::to_string(&FrontierLine {
            frontier: frontier.clone(),
        })
        .map_err(io::Error::other)?;
        self.sink.write_line(&line)
    }

    /// Exports a whole sweep under an experiment tag: one line per run,
    /// then the aggregate report, then a flush.
    ///
    /// # Errors
    ///
    /// Propagates serialization or sink I/O errors.
    pub fn export_outcome(&mut self, experiment: &str, outcome: &SweepOutcome) -> io::Result<()> {
        for run in &outcome.runs {
            self.emit_run(&RunRecord::of(experiment, run))?;
        }
        self.emit_report(&outcome.report)?;
        self.flush()
    }

    /// Flushes the sink.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

/// A point-in-time view of sweep progress, handed to the meter's
/// reporting callback.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProgressSnapshot {
    /// Runs finished so far.
    pub done: usize,
    /// Runs in the grid.
    pub total: usize,
    /// Worker threads currently alive.
    pub workers_alive: usize,
    /// Seconds since the sweep began.
    pub elapsed_secs: f64,
    /// Observed throughput, runs per second (`0.0` until time has passed).
    pub runs_per_sec: f64,
    /// Estimated seconds to completion (`0.0` when done or unknowable).
    pub eta_secs: f64,
}

impl fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * self.done as f64 / self.total as f64
        };
        write!(
            f,
            "sweep {}/{} ({pct:.1}%) · {:.0} runs/s · ETA {:.1}s · {} workers",
            self.done, self.total, self.runs_per_sec, self.eta_secs, self.workers_alive
        )
    }
}

/// A thread-safe progress counter with a throttled reporting callback.
///
/// Workers call [`ProgressMeter::worker_started`] /
/// [`ProgressMeter::worker_finished`] around their lifetime and
/// [`ProgressMeter::record_done`] per finished run; the meter invokes the
/// callback at most once per interval (plus once at
/// [`ProgressMeter::finish`]), so per-run overhead is an atomic increment
/// and a clock read.
pub struct ProgressMeter {
    total: AtomicUsize,
    done: AtomicUsize,
    workers: AtomicUsize,
    interval: Duration,
    clock: Mutex<MeterClock>,
    // Single-reporter guard: the callback runs under this lock, so two
    // shards can never emit interleaved partial lines. Throttled callers
    // that lose the race skip — their counts are already in the atomics.
    report_lock: Mutex<()>,
    callback: Box<dyn Fn(&ProgressSnapshot) + Send + Sync>,
}

#[derive(Debug)]
struct MeterClock {
    started: Instant,
    last_report: Option<Instant>,
    // Runs done as of the last report, so the throttled line can show the
    // *recent* throughput rather than the lifetime average.
    last_done: usize,
}

impl fmt::Debug for ProgressMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressMeter")
            .field("done", &self.done.load(Ordering::Relaxed))
            .field("total", &self.total.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ProgressMeter {
    /// A meter that invokes `callback` at most once per `interval`.
    pub fn new(
        interval: Duration,
        callback: impl Fn(&ProgressSnapshot) + Send + Sync + 'static,
    ) -> ProgressMeter {
        ProgressMeter {
            total: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            workers: AtomicUsize::new(0),
            interval,
            clock: Mutex::new(MeterClock {
                started: Instant::now(),
                last_report: None,
                last_done: 0,
            }),
            report_lock: Mutex::new(()),
            callback: Box::new(callback),
        }
    }

    /// A meter that prints one line per interval to *stderr* (stdout is
    /// reserved for experiment tables and telemetry).
    pub fn stderr(interval: Duration) -> ProgressMeter {
        ProgressMeter::new(interval, |snap| eprintln!("{snap}"))
    }

    /// Arms the meter for a grid of `total` runs, zeroing the counters
    /// and restarting the clock. Call once before handing the meter to
    /// workers; a meter can be re-armed for a subsequent sweep.
    pub fn begin(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        let mut clock = self.clock.lock();
        clock.started = Instant::now();
        clock.last_report = None;
        clock.last_done = 0;
    }

    /// A worker thread came up.
    pub fn worker_started(&self) {
        self.workers.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker thread exited.
    pub fn worker_finished(&self) {
        self.workers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records `n` finished runs and reports if the interval elapsed.
    pub fn record_done(&self, n: usize) {
        self.done.fetch_add(n, Ordering::Relaxed);
        self.maybe_report(false);
    }

    /// A per-worker batching handle: increments accumulate locally and
    /// merge into the shared counter every 64 additions and when the
    /// handle drops (merge-on-join). A sharded stepping loop holds one
    /// handle per shard thread, so the hot path pays no atomics at all
    /// between flushes.
    pub fn local(&self) -> LocalProgress<'_> {
        self.local_every(64)
    }

    /// [`ProgressMeter::local`] with an explicit flush batch size.
    ///
    /// # Panics
    ///
    /// Panics if `flush_every` is zero.
    pub fn local_every(&self, flush_every: usize) -> LocalProgress<'_> {
        assert!(flush_every > 0, "a batch must flush eventually");
        LocalProgress {
            meter: self,
            pending: 0,
            flush_every,
        }
    }

    /// Forces a final report (e.g. after the merge).
    pub fn finish(&self) {
        self.maybe_report(true);
    }

    /// The current progress, computed from the atomics and the clock.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed = self.clock.lock().started.elapsed();
        self.snapshot_at(elapsed)
    }

    fn snapshot_at(&self, elapsed: Duration) -> ProgressSnapshot {
        let done = self.done.load(Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        let elapsed_secs = elapsed.as_secs_f64();
        let runs_per_sec = if elapsed_secs > 0.0 {
            done as f64 / elapsed_secs
        } else {
            0.0
        };
        let remaining = total.saturating_sub(done);
        let eta_secs = if remaining == 0 || runs_per_sec <= 0.0 {
            0.0
        } else {
            remaining as f64 / runs_per_sec
        };
        ProgressSnapshot {
            done,
            total,
            workers_alive: self.workers.load(Ordering::Relaxed),
            elapsed_secs,
            runs_per_sec,
            eta_secs,
        }
    }

    fn maybe_report(&self, force: bool) {
        // One reporter at a time: a forced report waits its turn, a
        // throttled one skips if another thread is already reporting.
        let _reporting = if force {
            self.report_lock.lock()
        } else {
            match self.report_lock.try_lock() {
                Some(guard) => guard,
                None => return,
            }
        };
        // The critical section is two clock reads; workers contend here
        // only once per finished run.
        let mut clock = self.clock.lock();
        let due = match clock.last_report {
            None => true,
            Some(at) => at.elapsed() >= self.interval,
        };
        if force || due {
            let done = self.done.load(Ordering::Relaxed);
            // Throughput over the window since the previous report —
            // tracks ramp-up and tail-off better than the lifetime
            // average. The first report (no previous window) and a
            // zero-width window (forced report right after a throttled
            // one) fall back to the cumulative rate, which `snapshot_at`
            // guards against zero elapsed time itself.
            let window_rate = clock.last_report.and_then(|at| {
                let width = at.elapsed().as_secs_f64();
                let delta = done.saturating_sub(clock.last_done);
                (width > 0.0).then(|| delta as f64 / width)
            });
            clock.last_report = Some(Instant::now());
            clock.last_done = done;
            let elapsed = clock.started.elapsed();
            drop(clock);
            let mut snap = self.snapshot_at(elapsed);
            if let Some(rate) = window_rate {
                snap.runs_per_sec = rate;
                let remaining = snap.total.saturating_sub(snap.done);
                snap.eta_secs = if remaining == 0 || rate <= 0.0 {
                    0.0
                } else {
                    remaining as f64 / rate
                };
            }
            (self.callback)(&snap);
        }
    }
}

/// A per-worker batching view of a [`ProgressMeter`] — see
/// [`ProgressMeter::local`]. Dropping the handle flushes whatever is
/// pending, so joining a worker merges its tail automatically.
pub struct LocalProgress<'a> {
    meter: &'a ProgressMeter,
    pending: usize,
    flush_every: usize,
}

impl fmt::Debug for LocalProgress<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalProgress")
            .field("pending", &self.pending)
            .field("flush_every", &self.flush_every)
            .finish_non_exhaustive()
    }
}

impl LocalProgress<'_> {
    /// Records `n` finished items locally, flushing to the shared meter
    /// when the batch threshold is reached.
    pub fn add(&mut self, n: usize) {
        self.pending += n;
        if self.pending >= self.flush_every {
            self.flush();
        }
    }

    /// Merges pending items into the shared meter now.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.meter.record_done(self.pending);
            self.pending = 0;
        }
    }
}

impl Drop for LocalProgress<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as TestCounter;
    use std::sync::Arc;
    use stp_core::event::Step;

    fn stats(steps: Step, written: usize) -> RunStats {
        RunStats {
            steps,
            sends_s: written * 2,
            sends_r: written,
            deliveries_r: written,
            deliveries_s: written,
            drops: 1,
            written,
            input_len: written,
            safe: true,
            write_steps: (1..=written as Step).collect(),
        }
    }

    fn member(seed: u64) -> MemberRun {
        MemberRun {
            input: DataSeq::from_indices([1, 0]),
            seed,
            scheduler: 0,
            stats: stats(10, 2),
            trace: None,
        }
    }

    #[test]
    fn run_lines_round_trip() {
        let rec = RunRecord::of("e1", &member(3));
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_run(&rec).unwrap();
        w.flush().unwrap();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        match TelemetryLine::parse(&lines[0]).unwrap() {
            TelemetryLine::Run(back) => assert_eq!(back, rec),
            other => panic!("expected a run line, got {other:?}"),
        }
    }

    #[test]
    fn report_lines_round_trip() {
        let mut report = SweepReport::new();
        report.observe(&stats(10, 2));
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_report(&report).unwrap();
        match TelemetryLine::parse(&sink.lines()[0]).unwrap() {
            TelemetryLine::Report(back) => assert_eq!(*back, report),
            other => panic!("expected a report line, got {other:?}"),
        }
    }

    #[test]
    fn export_outcome_writes_runs_then_report() {
        let outcome = SweepOutcome::from_runs(vec![member(0), member(1)]);
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.export_outcome("e9", &outcome).unwrap();
        let lines = sink.lines();
        assert_eq!(lines.len(), 3);
        let parsed: Vec<TelemetryLine> = lines
            .iter()
            .map(|l| TelemetryLine::parse(l).unwrap())
            .collect();
        assert!(matches!(&parsed[0], TelemetryLine::Run(r) if r.seed == 0 && r.experiment == "e9"));
        assert!(matches!(&parsed[1], TelemetryLine::Run(r) if r.seed == 1));
        match &parsed[2] {
            TelemetryLine::Report(r) => assert_eq!(**r, outcome.report),
            other => panic!("expected the aggregate report, got {other:?}"),
        }
    }

    #[test]
    fn summary_lines_round_trip() {
        let summary = ExperimentSummary {
            experiment: "e4".to_string(),
            rows: 4,
            ok: true,
        };
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_summary(&summary).unwrap();
        match TelemetryLine::parse(&sink.lines()[0]).unwrap() {
            TelemetryLine::Summary(back) => assert_eq!(back, summary),
            other => panic!("expected a summary line, got {other:?}"),
        }
    }

    #[test]
    fn span_lines_round_trip() {
        let rec = SpanRecord {
            experiment: "e1".to_string(),
            seed: 7,
            id: 3,
            to: ProcessId::Receiver,
            msg: 2,
            sent_at: 10,
            coalesced_into: Some(1),
            delivered_at: vec![12, 19],
            dropped_at: None,
            expired_at: None,
            fate: "coalesced".to_string(),
        };
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_span(&rec).unwrap();
        let line = &sink.lines()[0];
        assert!(line.contains("\"span\""), "{line}");
        match TelemetryLine::parse(line).unwrap() {
            TelemetryLine::Span(back) => assert_eq!(back, rec),
            other => panic!("expected a span line, got {other:?}"),
        }
    }

    #[test]
    fn frontier_lines_round_trip_with_u128_candidates() {
        let rec = FrontierRecord {
            experiment: "e1".to_string(),
            seed: 7,
            step: 42,
            r_written: 1,
            // Larger than any u64: exercises the exact-decimal number path.
            candidates: u128::from(u64::MAX) + 17,
            s_ack_depth: 1,
        };
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_frontier(&rec).unwrap();
        let line = &sink.lines()[0];
        assert!(line.contains("\"frontier\""), "{line}");
        match TelemetryLine::parse(line).unwrap() {
            TelemetryLine::Frontier(back) => assert_eq!(back, rec),
            other => panic!("expected a frontier line, got {other:?}"),
        }
    }

    #[test]
    fn verdict_lines_round_trip() {
        use stp_core::schema::{ConformanceVerdict, Verdict, CERT_SCHEMA_VERSION};
        let rec = ConformanceVerdict {
            schema_version: CERT_SCHEMA_VERSION,
            m: 2,
            family: "tight".to_string(),
            channel: "del".to_string(),
            expected: Verdict::Achieved,
            verdict: Verdict::Achieved,
            cert_kind: "recovery".to_string(),
            cert_file: "m2-tight-del.json".to_string(),
            checker: "accepted".to_string(),
            ok: true,
        };
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_verdict(&rec).unwrap();
        let line = &sink.lines()[0];
        assert!(line.contains("\"verdict\""), "{line}");
        match TelemetryLine::parse(line).unwrap() {
            TelemetryLine::Verdict(back) => assert_eq!(back, rec),
            other => panic!("expected a verdict line, got {other:?}"),
        }
    }

    #[test]
    fn stabilization_lines_round_trip() {
        let rec = StabilizationRecord {
            experiment: "e12".to_string(),
            protocol: "stabilizing".to_string(),
            channel: "del".to_string(),
            kind: "state-scramble".to_string(),
            seed: 23,
            index: 1,
            fault_end: 10,
            corruption_events: 1,
            stabilized_at: Some(12),
            steps_to_stabilize: Some(2),
        };
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_stabilization(&rec).unwrap();
        let line = &sink.lines()[0];
        assert!(line.contains("\"stabilization\""), "{line}");
        match TelemetryLine::parse(line).unwrap() {
            TelemetryLine::Stabilization(back) => assert_eq!(back, rec),
            other => panic!("expected a stabilization line, got {other:?}"),
        }
        // A divergent probe (no stabilization point) round-trips too.
        let divergent = StabilizationRecord {
            stabilized_at: None,
            steps_to_stabilize: None,
            ..rec
        };
        w.emit_stabilization(&divergent).unwrap();
        match TelemetryLine::parse(&sink.lines()[1]).unwrap() {
            TelemetryLine::Stabilization(back) => assert_eq!(back, divergent),
            other => panic!("expected a stabilization line, got {other:?}"),
        }
    }

    #[test]
    fn sessions_lines_round_trip() {
        let rec = SessionsRecord {
            experiment: "bench_sessions".to_string(),
            shards: 4,
            submitted: 1_000_000,
            completed: 880_000,
            exhausted: 20_000,
            disconnected: 100_000,
            total_steps: 123_456_789,
            rounds: 70_000,
            wall_secs: 12.5,
            busy_secs: 3.2,
            sessions_per_sec: 275_000.0,
            p99_latency_rounds: 9.0,
        };
        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_sessions(&rec).unwrap();
        let line = &sink.lines()[0];
        assert!(line.contains("\"sessions\""), "{line}");
        match TelemetryLine::parse(line).unwrap() {
            TelemetryLine::Sessions(back) => assert_eq!(back, rec),
            other => panic!("expected a sessions line, got {other:?}"),
        }
    }

    #[test]
    fn prof_lines_round_trip() {
        let prof = crate::prof::PhaseProfiler::new(1);
        prof.time(crate::prof::Phase::SenderStep, || std::hint::black_box(7));
        let rec = prof.report("bench_sweep", "e1_grid");

        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        w.emit_prof(&rec).unwrap();
        let line = &sink.lines()[0];
        assert!(line.contains("\"prof\""), "{line}");
        match TelemetryLine::parse(line).unwrap() {
            TelemetryLine::Prof(back) => assert_eq!(back, rec),
            other => panic!("expected a prof line, got {other:?}"),
        }
    }

    #[test]
    fn fleet_and_stall_lines_round_trip() {
        let registry = crate::fleet::FleetRegistry::new(2);
        registry.shard(0).note_submitted();
        registry.shard(0).note_admitted(false);
        registry.shard(0).note_completed(3);
        let snap = registry.snapshot();

        let sink = MemorySink::new();
        let mut w = TelemetryWriter::new(Box::new(sink.clone()));
        for shard in &snap.shards {
            w.emit_fleet(&shard.record("sessions_top")).unwrap();
        }
        w.emit_fleet(&snap.stats().record("sessions_top")).unwrap();

        let stall = StallRecord {
            experiment: "sessions_top".to_string(),
            shard: 1,
            serial: 42,
            round: 99,
            age_rounds: 40,
            threshold_rounds: 16,
            expected_steps: 20,
            steps: 310,
            spec: crate::sessions::SessionSpec {
                family: stp_protocols::FamilySpec::Tight {
                    d: 3,
                    policy: stp_protocols::ResendPolicy::Once,
                },
                input: DataSeq::from_indices([1, 2, 0]),
                channel: stp_channel::ChannelSpec::Dup,
                scheduler: stp_channel::SchedulerSpec::Random { p_deliver: 0.0 },
                seed: 7,
                max_steps: 5_000,
                ttl_rounds: None,
            },
        };
        w.emit_stall(&stall).unwrap();

        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        match TelemetryLine::parse(&lines[0]).unwrap() {
            TelemetryLine::Fleet(back) => {
                assert_eq!(back.shard, Some(0));
                assert_eq!(back.submitted, 1);
                assert_eq!(back.p50_latency_rounds, 3.0);
            }
            other => panic!("expected a fleet line, got {other:?}"),
        }
        match TelemetryLine::parse(&lines[2]).unwrap() {
            TelemetryLine::Fleet(back) => {
                assert_eq!(back.shard, None, "aggregate line");
                assert_eq!(back.shards, 2);
            }
            other => panic!("expected a fleet line, got {other:?}"),
        }
        match TelemetryLine::parse(&lines[3]).unwrap() {
            TelemetryLine::Stall(back) => assert_eq!(back, stall),
            other => panic!("expected a stall line, got {other:?}"),
        }
    }

    #[test]
    fn local_progress_batches_and_flushes_on_drop() {
        let meter = ProgressMeter::new(Duration::from_secs(3600), |_| {});
        meter.begin(100);
        {
            let mut local = meter.local_every(10);
            local.add(4);
            assert_eq!(meter.snapshot().done, 0, "below the batch threshold");
            local.add(6);
            assert_eq!(meter.snapshot().done, 10, "threshold reached, flushed");
            local.add(3);
            assert_eq!(meter.snapshot().done, 10, "tail still pending");
        } // drop flushes the tail (merge-on-join)
        assert_eq!(meter.snapshot().done, 13);
    }

    #[test]
    fn concurrent_forced_reports_never_interleave() {
        // Each callback appends an open marker, sleeps, then a close
        // marker under the meter's report lock; interleaving would break
        // the strict open/close alternation.
        let events = Arc::new(Mutex::new(Vec::new()));
        let seen = events.clone();
        let meter = Arc::new(ProgressMeter::new(Duration::from_secs(0), move |_| {
            seen.lock().push("open");
            std::thread::sleep(Duration::from_millis(2));
            seen.lock().push("close");
        }));
        meter.begin(64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let meter = Arc::clone(&meter);
                scope.spawn(move || {
                    for _ in 0..4 {
                        meter.record_done(1);
                        meter.finish();
                    }
                });
            }
        });
        let events = events.lock();
        assert!(!events.is_empty());
        for pair in events.chunks(2) {
            assert_eq!(pair, ["open", "close"], "reports interleaved: {events:?}");
        }
    }

    #[test]
    fn garbage_lines_fail_to_parse() {
        assert!(TelemetryLine::parse("{\"neither\": 1}").is_err());
        assert!(TelemetryLine::parse("not json").is_err());
    }

    #[test]
    fn file_sink_appends_across_writers() {
        let dir = std::env::temp_dir().join(format!("stp-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.jsonl");
        let _ = std::fs::remove_file(&path);
        for seed in 0..2 {
            let mut w = TelemetryWriter::new(Box::new(FileSink::open(&path).unwrap()));
            w.emit_run(&RunRecord::of("e1", &member(seed))).unwrap();
            w.flush().unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2, "append mode accumulates");
        for line in body.lines() {
            TelemetryLine::parse(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn progress_meter_counts_and_estimates() {
        let reports = Arc::new(TestCounter::new(0));
        let seen = reports.clone();
        let meter = ProgressMeter::new(Duration::from_secs(3600), move |_| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        meter.begin(10);
        meter.worker_started();
        meter.record_done(4); // first report is always due
        assert_eq!(reports.load(Ordering::Relaxed), 1);
        meter.record_done(1); // throttled: interval not elapsed
        assert_eq!(reports.load(Ordering::Relaxed), 1);
        let snap = meter.snapshot();
        assert_eq!(snap.done, 5);
        assert_eq!(snap.total, 10);
        assert_eq!(snap.workers_alive, 1);
        meter.worker_finished();
        meter.finish(); // forced
        assert_eq!(reports.load(Ordering::Relaxed), 2);
        assert_eq!(meter.snapshot().workers_alive, 0);
        // Re-arming zeroes the counters.
        meter.begin(3);
        assert_eq!(meter.snapshot().done, 0);
    }

    #[test]
    fn progress_reports_stay_finite_from_the_first_tick() {
        let snaps = Arc::new(Mutex::new(Vec::new()));
        let seen = snaps.clone();
        let meter = ProgressMeter::new(Duration::from_secs(0), move |s| {
            seen.lock().push(s.clone());
        });
        meter.begin(8);
        // First tick: no previous report window, elapsed possibly ~0.
        meter.record_done(1);
        std::thread::sleep(Duration::from_millis(5));
        // Second tick: windowed rate over the 5ms window.
        meter.record_done(7);
        meter.finish();
        let snaps = snaps.lock();
        assert!(snaps.len() >= 2);
        for s in snaps.iter() {
            assert!(s.runs_per_sec.is_finite(), "{s:?}");
            assert!(s.runs_per_sec >= 0.0, "{s:?}");
            assert!(s.eta_secs.is_finite(), "{s:?}");
            assert!(s.eta_secs >= 0.0, "{s:?}");
        }
        let last = snaps.last().unwrap();
        assert_eq!(last.done, 8);
        assert_eq!(last.eta_secs, 0.0, "nothing remains");
    }

    #[test]
    fn snapshot_display_is_human_readable() {
        let snap = ProgressSnapshot {
            done: 3,
            total: 12,
            workers_alive: 4,
            elapsed_secs: 1.5,
            runs_per_sec: 2.0,
            eta_secs: 4.5,
        };
        let s = snap.to_string();
        assert!(s.contains("3/12"), "{s}");
        assert!(s.contains("25.0%"), "{s}");
        assert!(s.contains("4 workers"), "{s}");
    }
}
