//! The massively-multi-session engine: a data-oriented session store
//! fronted by a sharded submit/poll API.
//!
//! One [`World`] owns one sender/receiver pair; sweeps
//! iterate worlds one at a time. This module is the scaling step the
//! ROADMAP's "millions of users opening sessions, transmitting, and
//! disconnecting under churn" workload needs: a [`SessionEngine`] holds
//! *columns* (struct-of-arrays) of sender state, receiver state, channel
//! queues and per-session adversary RNG — the same columnar layout
//! [`crate::trace`] uses for spans — and steps every active session a
//! quantum of protocol steps per *round* in one tight, allocation-free
//! loop. The loop is the [`TraceMode::Off`](stp_core::event::TraceMode)
//! semantics of [`World::step`](crate::World::step) with every
//! event-construction and probe branch deleted outright, so a session's
//! [`RunStats`] are bit-identical to a pooled single-world run of the
//! same [`SessionSpec`] (the `sessions_parity` suite proves this over the
//! full seed × channel × family grid).
//!
//! Slots are recycled under churn through the spec-driven provisioning
//! trio — [`FamilySpec::provision`], [`ChannelSpec::provision`],
//! [`SchedulerSpec::provision`] — which generalizes the pooled-world
//! reset machinery from the sweep engine: a retiring session's slot goes
//! onto its *recipe's* free list, and a later admission with the same
//! recipe resets the boxed machines in place instead of re-boxing them.
//!
//! [`SessionServer`] shards the store: `submit` routes round-robin,
//! `poll`/`disconnect` route by the shard bits of the [`SessionId`], and
//! each shard steps independently under its own lock. [`ChurnSpec`] is
//! the seeded open/transmit/disconnect workload generator the
//! `bench_sessions` lanes run; session `k`'s spec is derived purely from
//! `(workload seed, k)`, so the set of sessions — and each session's
//! stats — is independent of the shard count, which
//! [`ChurnReport::digest`] checks.

use crate::engine::SweepSpec;
use crate::fleet::{
    healthy_step_bound, FleetRegistry, FleetSnapshot, FleetWatch, ShardMetrics, StallRecord,
    WatchdogSpec,
};
use crate::metrics::{Histogram, RunStats};
use crate::prof::{delivery_phase, expiry_phase, NoObs, Phase, PhaseProfiler, ProfObs, StepObs};
use crate::telemetry::{ProgressMeter, SessionsRecord};
use crate::world::World;
use parking_lot::Mutex;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use stp_channel::{Channel, ChannelSpec, Scheduler, SchedulerSpec};
use stp_core::alphabet::{RMsg, SMsg};
use stp_core::data::DataSeq;
use stp_core::event::{CorruptionKind, Step, TraceMode};
use stp_core::proto::{Receiver, ReceiverEvent, Sender, SenderEvent};
use stp_protocols::FamilySpec;

/// Everything needed to run one STP session: the protocol family, the
/// input to transmit, the channel model, the adversary, its seed, and the
/// session's budgets. The serde form travels next to [`SweepSpec`] /
/// [`ChannelSpec`] / [`SchedulerSpec`] as one spec surface; the legacy
/// sweep path expands into it via [`SweepSpec::session_specs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The protocol family recipe.
    pub family: FamilySpec,
    /// The input sequence to transmit.
    pub input: DataSeq,
    /// The channel recipe.
    pub channel: ChannelSpec,
    /// The adversary recipe.
    pub scheduler: SchedulerSpec,
    /// The adversary seed.
    pub seed: u64,
    /// Step budget: the session retires as [`SessionFate::Exhausted`]
    /// when it runs this many steps without completing.
    pub max_steps: Step,
    /// Churn: the user walks away this many rounds after admission
    /// (retiring the session as [`SessionFate::Disconnected`]); `None`
    /// stays until completion or exhaustion.
    #[serde(default)]
    pub ttl_rounds: Option<u64>,
}

impl SessionSpec {
    /// Bridges to the legacy single-world path: builds a [`World`] (trace
    /// off) that runs exactly this session. The parity suite holds the
    /// session store to this world's behaviour, bit for bit.
    pub fn build_world(&self) -> World {
        let family = self.family.build();
        World::builder(self.input.clone())
            .sender(family.sender_for(&self.input))
            .receiver(family.receiver())
            .channel(self.channel.build())
            .scheduler(self.scheduler.build(self.seed))
            .mode(TraceMode::Off)
            .build()
            .expect("all components supplied")
    }
}

impl SweepSpec {
    /// Expands the sweep grid into per-session specs in the engine's
    /// (scheduler-major, then sequence, then seed) order — the bridge
    /// that lets the session server consume the same spec surface as
    /// [`SweepEngine`](crate::engine::SweepEngine).
    pub fn session_specs(&self, family: &FamilySpec) -> Vec<SessionSpec> {
        let claimed = family.build().claimed_family();
        let mut specs =
            Vec::with_capacity(self.schedulers.len() * claimed.len() * self.seeds.len());
        for scheduler in &self.schedulers {
            for input in claimed.iter() {
                for &seed in &self.seeds {
                    specs.push(SessionSpec {
                        family: family.clone(),
                        input: input.clone(),
                        channel: self.channel.clone(),
                        scheduler: scheduler.clone(),
                        seed,
                        max_steps: self.max_steps,
                        ttl_rounds: None,
                    });
                }
            }
        }
        specs
    }
}

/// A session's identity: 16 shard bits over 48 serial bits, so ids route
/// straight back to the owning shard without a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionId(u64);

impl SessionId {
    const SERIAL_BITS: u32 = 48;

    /// Packs a shard index and a per-shard serial.
    ///
    /// # Panics
    ///
    /// Panics if `serial` needs more than 48 bits.
    pub fn new(shard: u16, serial: u64) -> SessionId {
        assert!(serial < 1 << Self::SERIAL_BITS, "serial overflows 48 bits");
        SessionId((u64::from(shard) << Self::SERIAL_BITS) | serial)
    }

    /// The owning shard.
    pub fn shard(self) -> u16 {
        (self.0 >> Self::SERIAL_BITS) as u16
    }

    /// The per-shard serial.
    pub fn serial(self) -> u64 {
        self.0 & ((1 << Self::SERIAL_BITS) - 1)
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.shard(), self.serial())
    }
}

/// How a session left the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionFate {
    /// The sender finished and the whole input was written.
    Completed,
    /// The step budget ran out first.
    Exhausted,
    /// The user disconnected (TTL churn or an explicit
    /// [`SessionServer::disconnect`]).
    Disconnected,
}

/// The terminal record of one session, handed out (exactly once) by
/// [`SessionServer::drain_completed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// The session's identity.
    pub id: SessionId,
    /// How it retired.
    pub fate: SessionFate,
    /// The run's statistics — identical to what a single [`World`] run of
    /// the same [`SessionSpec`] reports at the same stopping point.
    pub stats: RunStats,
    /// The engine round the session was submitted on.
    pub submitted_round: u64,
    /// The engine round it retired on.
    pub retired_round: u64,
}

impl SessionOutcome {
    /// Submit-to-retire latency in engine rounds (includes queueing).
    pub fn latency_rounds(&self) -> u64 {
        self.retired_round.saturating_sub(self.submitted_round)
    }
}

/// What [`SessionServer::poll`] reports for an id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionStatus {
    /// Never submitted here, or already drained.
    Unknown,
    /// Waiting for a slot.
    Queued,
    /// In a slot, mid-run.
    Running {
        /// Protocol steps executed so far.
        steps: Step,
    },
    /// Retired; the outcome stays pollable until drained.
    Done {
        /// The terminal record.
        outcome: Box<SessionOutcome>,
    },
}

// Where an id currently lives inside one shard.
enum SlotState {
    Queued { submitted: u64 },
    Running { slot: u32 },
    Done { at: usize },
}

// An interned (family, channel, scheduler) triple plus the free slots
// that last ran it — the unit of reset-in-place recycling.
struct Recipe {
    family: FamilySpec,
    channel: ChannelSpec,
    scheduler: SchedulerSpec,
    free: Vec<u32>,
}

const NO_RECIPE: u32 = u32::MAX;

// A submitted session waiting for a slot. The recipe triple is interned
// at submit time, so admission — the profiled hot phase — moves a dense
// struct and a recipe id instead of re-comparing (or even carrying)
// three component specs per session.
struct QueuedSession {
    serial: u64,
    submitted: u64,
    rid: u32,
    input: DataSeq,
    seed: u64,
    max_steps: Step,
    ttl_rounds: Option<u64>,
}

// The serial index maps *sequential* per-shard serials to slot states;
// SipHash's DoS resistance buys nothing against keys this engine mints
// itself and its per-insert cost showed up squarely in the admission
// phase profile. Fibonacci multiplicative hashing scrambles sequential
// keys across buckets in one multiply.
#[derive(Default)]
struct SerialHasher(u64);

impl Hasher for SerialHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-u64 keys (none today): FNV-1a fallback.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SerialMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<SerialHasher>>;

/// One shard of the session store: fixed-capacity slot columns, a recipe
/// table, an admission queue, and a completion buffer.
///
/// The store is data-oriented: every per-session quantity lives in its
/// own column (`Vec`), indexed by slot. The hot stepping loop walks the
/// dense `active` roster and touches only the columns it needs; boxed
/// protocol machines, channels and schedulers are *columns of slots* that
/// provisioning reuses in place whenever the incoming session's recipe
/// matches what the slot last ran. Per-session randomized adversary state
/// (the "per-session RNG") lives inside the scheduler column, reseeded
/// per admission.
pub struct SessionEngine {
    shard: u16,
    capacity: usize,
    quantum: u32,
    round: u64,
    recipes: Vec<Recipe>,
    // Slot columns (struct-of-arrays), all `capacity` long.
    senders: Vec<Option<Box<dyn Sender>>>,
    receivers: Vec<Option<Box<dyn Receiver>>>,
    channels: Vec<Option<Box<dyn Channel>>>,
    schedulers: Vec<Option<Box<dyn Scheduler>>>,
    slot_recipe: Vec<u32>,
    inputs: Vec<DataSeq>,
    serials: Vec<u64>,
    steps: Vec<Step>,
    written: Vec<usize>,
    safe: Vec<bool>,
    sends_s: Vec<usize>,
    sends_r: Vec<usize>,
    deliveries_r: Vec<usize>,
    deliveries_s: Vec<usize>,
    drops: Vec<usize>,
    write_steps: Vec<Vec<Step>>,
    deadline: Vec<Step>,
    expires: Vec<u64>,
    submitted: Vec<u64>,
    admitted_round: Vec<u64>,
    seeds: Vec<u64>,
    // The round at which the slot's session gets flagged as stalled;
    // `u64::MAX` means disarmed (no watchdog, or already flagged), so
    // the per-round check is one compare.
    stall_at: Vec<u64>,
    // Rosters: dense active list (swap-remove retire), never-used slots,
    // admissions waiting for capacity.
    active: Vec<u32>,
    virgin: Vec<u32>,
    queue: VecDeque<QueuedSession>,
    index: SerialMap<SlotState>,
    completed: Vec<SessionOutcome>,
    next_serial: u64,
    recycled: u64,
    // Shared expiry scratch, reused across every slot in the shard.
    scratch_r: Vec<SMsg>,
    scratch_s: Vec<RMsg>,
    // Fleet observability: both default off and cost nothing until
    // attached/armed.
    metrics: Option<Arc<ShardMetrics>>,
    watchdog: Option<WatchdogSpec>,
    stalls: Vec<StallRecord>,
    // Phase profiler: off by default; when attached, every
    // `prof.period()`-th slot quantum becomes a profiled window. The
    // unprofiled path is untouched (see `step_slot_once`).
    prof: Option<Arc<PhaseProfiler>>,
    prof_tick: u64,
}

impl std::fmt::Debug for SessionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionEngine")
            .field("shard", &self.shard)
            .field("capacity", &self.capacity)
            .field("round", &self.round)
            .field("active", &self.active.len())
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl SessionEngine {
    /// An empty shard with `capacity` slots, stepping each active session
    /// up to `quantum` protocol steps per round.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `quantum` is zero.
    pub fn new(shard: u16, capacity: usize, quantum: u32) -> SessionEngine {
        assert!(capacity > 0, "a shard needs at least one slot");
        assert!(quantum > 0, "a round must step at least once");
        let none_senders = (0..capacity).map(|_| None).collect();
        let none_receivers = (0..capacity).map(|_| None).collect();
        let none_channels = (0..capacity).map(|_| None).collect();
        let none_schedulers = (0..capacity).map(|_| None).collect();
        SessionEngine {
            shard,
            capacity,
            quantum,
            round: 0,
            recipes: Vec::new(),
            senders: none_senders,
            receivers: none_receivers,
            channels: none_channels,
            schedulers: none_schedulers,
            slot_recipe: vec![NO_RECIPE; capacity],
            inputs: vec![DataSeq::from_indices([]); capacity],
            serials: vec![0; capacity],
            steps: vec![0; capacity],
            written: vec![0; capacity],
            safe: vec![true; capacity],
            sends_s: vec![0; capacity],
            sends_r: vec![0; capacity],
            deliveries_r: vec![0; capacity],
            deliveries_s: vec![0; capacity],
            drops: vec![0; capacity],
            write_steps: vec![Vec::new(); capacity],
            deadline: vec![0; capacity],
            expires: vec![u64::MAX; capacity],
            submitted: vec![0; capacity],
            admitted_round: vec![0; capacity],
            seeds: vec![0; capacity],
            stall_at: vec![u64::MAX; capacity],
            active: Vec::with_capacity(capacity),
            virgin: (0..capacity as u32).rev().collect(),
            queue: VecDeque::new(),
            index: SerialMap::default(),
            completed: Vec::new(),
            next_serial: 0,
            recycled: 0,
            scratch_r: Vec::new(),
            scratch_s: Vec::new(),
            metrics: None,
            watchdog: None,
            stalls: Vec::new(),
            prof: None,
            prof_tick: 0,
        }
    }

    /// Attaches a fleet metrics handle: from here on the engine reports
    /// admissions, retirements and end-of-round gauges into it. Updates
    /// happen at round granularity, never inside the per-step hot loop.
    pub fn attach_metrics(&mut self, metrics: Arc<ShardMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Attaches a phase profiler: every `prof.period()`-th slot quantum
    /// from here on runs as a profiled window attributing time to
    /// [`Phase`]s, and admission/retirement get coarse windows of their
    /// own. Profiling is observation-only — session outcomes and the
    /// churn digest are bit-identical with or without it (the
    /// `prof_parity` suite enforces this).
    pub fn attach_profiler(&mut self, prof: Arc<PhaseProfiler>) {
        self.prof = Some(prof);
    }

    /// Arms the stall watchdog: sessions admitted from here on are
    /// flagged (once each, as [`StallRecord`]s) when their age exceeds
    /// the spec's multiple of their family's [`healthy_step_bound`].
    pub fn arm_watchdog(&mut self, spec: WatchdogSpec) {
        self.watchdog = Some(spec);
    }

    /// Hands out every stall flagged since the last drain, exactly once.
    pub fn drain_stalls(&mut self) -> Vec<StallRecord> {
        std::mem::take(&mut self.stalls)
    }

    /// The shard index baked into every [`SessionId`] this engine mints.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Slots in this shard.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rounds stepped so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sessions currently in slots.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Sessions waiting for a slot.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Retired sessions not yet drained.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Admissions that reused a previously-occupied slot (as opposed to a
    /// virgin one) — the recycling the churn bench exercises.
    pub fn slots_recycled(&self) -> u64 {
        self.recycled
    }

    /// No session is active or waiting.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.queue.is_empty()
    }

    /// Accepts a session; it is admitted into a slot at the start of the
    /// next [`SessionEngine::step_round`] with free capacity. Returns the
    /// per-shard serial ([`SessionId::serial`]).
    pub fn submit(&mut self, spec: SessionSpec) -> u64 {
        let serial = self.next_serial;
        self.next_serial += 1;
        if let Some(m) = &self.metrics {
            m.note_submitted();
        }
        self.index.insert(
            serial,
            SlotState::Queued {
                submitted: self.round,
            },
        );
        // Intern the recipe triple now: every later admission keys the
        // slot search and provisioning off the id alone, never
        // re-comparing (or reconstructing) the component specs.
        let rid = self.intern(&spec) as u32;
        self.queue.push_back(QueuedSession {
            serial,
            submitted: self.round,
            rid,
            input: spec.input,
            seed: spec.seed,
            max_steps: spec.max_steps,
            ttl_rounds: spec.ttl_rounds,
        });
        serial
    }

    /// Where the session with this serial stands.
    pub fn poll(&self, serial: u64) -> SessionStatus {
        match self.index.get(&serial) {
            None => SessionStatus::Unknown,
            Some(SlotState::Queued { .. }) => SessionStatus::Queued,
            Some(&SlotState::Running { slot }) => SessionStatus::Running {
                steps: self.steps[slot as usize],
            },
            Some(&SlotState::Done { at }) => SessionStatus::Done {
                outcome: Box::new(self.completed[at].clone()),
            },
        }
    }

    /// Disconnects the session: a queued one retires without running, an
    /// active one retires at its current state, both as
    /// [`SessionFate::Disconnected`]. Returns `false` for ids that are
    /// done, drained, or unknown.
    pub fn disconnect(&mut self, serial: u64) -> bool {
        match self.index.get(&serial) {
            Some(&SlotState::Running { slot }) => {
                let pos = self
                    .active
                    .iter()
                    .position(|&s| s == slot)
                    .expect("running slot is on the active roster");
                self.retire(pos, SessionFate::Disconnected);
                true
            }
            Some(&SlotState::Queued { submitted }) => {
                let at = self
                    .queue
                    .iter()
                    .position(|q| q.serial == serial)
                    .expect("queued serial is in the queue");
                let q = self.queue.remove(at).expect("position came from the queue");
                let outcome = SessionOutcome {
                    id: SessionId::new(self.shard, serial),
                    fate: SessionFate::Disconnected,
                    stats: RunStats {
                        steps: 0,
                        sends_s: 0,
                        sends_r: 0,
                        deliveries_r: 0,
                        deliveries_s: 0,
                        drops: 0,
                        written: 0,
                        input_len: q.input.len(),
                        safe: true,
                        write_steps: Vec::new(),
                    },
                    submitted_round: submitted,
                    retired_round: self.round,
                };
                self.index.insert(
                    serial,
                    SlotState::Done {
                        at: self.completed.len(),
                    },
                );
                self.completed.push(outcome);
                if let Some(m) = &self.metrics {
                    m.note_disconnected();
                }
                true
            }
            _ => false,
        }
    }

    /// Hands out every outcome retired since the last drain, exactly
    /// once; drained ids poll as [`SessionStatus::Unknown`] afterwards.
    pub fn drain_completed(&mut self) -> Vec<SessionOutcome> {
        let drained = std::mem::take(&mut self.completed);
        for outcome in &drained {
            self.index.remove(&outcome.id.serial());
        }
        drained
    }

    /// One engine round: admit from the queue into free slots, then step
    /// every active session up to the quantum, retiring completions,
    /// exhaustions and TTL disconnects along the way.
    pub fn step_round(&mut self) {
        // Clone the profiler handle out so timed closures below can
        // borrow `self` mutably; one Arc clone per round, nothing per
        // slot beyond a predictable branch.
        let prof = self.prof.clone();
        let prof = prof.as_deref();
        match prof {
            Some(p) if !self.queue.is_empty() && self.active.len() < self.capacity => {
                // Admission windows are sampled at the same 1-in-period
                // rate as the step-quantum and retire windows, so phase
                // shares stay comparable. (Timing every admission round
                // against 1-in-period step samples overcounted admission
                // by the sampling period — the profile that motivated
                // the fast path read 77% where the true share was ~3%.)
                self.prof_tick += 1;
                if p.sample(self.prof_tick) {
                    p.time(Phase::Admission, || self.admit_from_queue());
                } else {
                    self.admit_from_queue();
                }
            }
            _ => self.admit_from_queue(),
        }
        let mut round_steps: u64 = 0;
        let mut i = 0;
        while i < self.active.len() {
            let slot = self.active[i] as usize;
            if self.round >= self.expires[slot] {
                self.retire(i, SessionFate::Disconnected);
                continue;
            }
            if self.round >= self.stall_at[slot] {
                self.flag_stall(slot);
            }
            let before = self.steps[slot];
            let (fate, sampled) = match prof {
                Some(p) => {
                    self.prof_tick += 1;
                    if p.sample(self.prof_tick) {
                        (self.step_slot_profiled(slot, p), true)
                    } else {
                        (self.step_slot(slot), false)
                    }
                }
                None => (self.step_slot(slot), false),
            };
            round_steps += self.steps[slot] - before;
            match fate {
                Some(fate) => match prof {
                    // Retirement cost is only visible for the sampled
                    // quantum's session — same sampling rate as the
                    // step windows, so shares stay comparable.
                    Some(p) if sampled => p.time(Phase::Retire, || self.retire(i, fate)),
                    _ => self.retire(i, fate),
                },
                None => i += 1,
            }
        }
        self.round += 1;
        if let Some(m) = &self.metrics {
            // O(active) once per round, metered lanes only: the age of
            // the oldest session still in a slot.
            let oldest = self
                .active
                .iter()
                .map(|&s| self.admitted_round[s as usize])
                .min();
            let age = oldest.map_or(0, |o| self.round.saturating_sub(o));
            m.end_round(
                self.round,
                self.queue.len() as u64,
                self.active.len() as u64,
                age,
                round_steps,
            );
        }
    }

    fn admit_from_queue(&mut self) {
        // Batch admission: the free-slot budget is computed once and the
        // loop pops exactly that many entries — each admission is a
        // dense-struct move plus a recipe-id-keyed slot reset.
        let mut budget = self.capacity - self.active.len();
        while budget > 0 {
            let Some(q) = self.queue.pop_front() else {
                break;
            };
            self.admit(q);
            budget -= 1;
        }
    }

    /// Rounds until [`SessionEngine::is_idle`], stopping after
    /// `max_rounds`; reports whether idle was reached.
    pub fn run_until_idle(&mut self, max_rounds: u64) -> bool {
        for _ in 0..max_rounds {
            if self.is_idle() {
                return true;
            }
            self.step_round();
        }
        self.is_idle()
    }

    fn intern(&mut self, spec: &SessionSpec) -> usize {
        if let Some(i) = self.recipes.iter().position(|r| {
            r.family == spec.family && r.channel == spec.channel && r.scheduler == spec.scheduler
        }) {
            return i;
        }
        self.recipes.push(Recipe {
            family: spec.family.clone(),
            channel: spec.channel.clone(),
            scheduler: spec.scheduler.clone(),
            free: Vec::new(),
        });
        self.recipes.len() - 1
    }

    fn admit(&mut self, q: QueuedSession) {
        debug_assert!(self.active.len() < self.capacity);
        let QueuedSession {
            serial,
            submitted,
            rid,
            input,
            seed,
            max_steps,
            ttl_rounds,
        } = q;
        // Prefer a slot that last ran this exact recipe (reset in place),
        // then a virgin slot, then cannibalize any other free slot.
        let slot = self.recipes[rid as usize]
            .free
            .pop()
            .or_else(|| self.virgin.pop())
            .or_else(|| self.recipes.iter_mut().find_map(|r| r.free.pop()))
            .expect("active < capacity implies a free slot exists");
        let slot = slot as usize;

        let prev = self.slot_recipe[slot];
        if prev != NO_RECIPE {
            self.recycled += 1;
        }
        if let Some(m) = &self.metrics {
            m.note_admitted(prev != NO_RECIPE);
        }
        if prev == rid {
            // Recipe-keyed fast path (the recipe's own free list hit, the
            // overwhelmingly common case under steady churn): interned
            // equality already proves the slot's machines were built from
            // this exact triple, so reset them in place without the three
            // spec comparisons `provision` would repeat per admission.
            // Behaviourally identical to the provision path by the reset
            // contract — `sessions_parity` pins this bit-for-bit.
            self.senders[slot]
                .as_mut()
                .expect("recycled slot has a sender")
                .reset(&input);
            self.receivers[slot]
                .as_mut()
                .expect("recycled slot has a receiver")
                .reset();
            self.channels[slot]
                .as_mut()
                .expect("recycled slot has a channel")
                .reset();
            self.schedulers[slot]
                .as_mut()
                .expect("recycled slot has a scheduler")
                .reset(seed);
        } else {
            let (prev_family, prev_channel, prev_scheduler) = if prev == NO_RECIPE {
                (None, None, None)
            } else {
                let r = &self.recipes[prev as usize];
                (Some(&r.family), Some(&r.channel), Some(&r.scheduler))
            };
            self.recipes[rid as usize].family.provision(
                prev_family,
                &input,
                &mut self.senders[slot],
                &mut self.receivers[slot],
            );
            self.recipes[rid as usize]
                .channel
                .provision(&mut self.channels[slot], prev_channel);
            self.recipes[rid as usize].scheduler.provision(
                &mut self.schedulers[slot],
                prev_scheduler,
                seed,
            );
        }

        self.slot_recipe[slot] = rid;
        self.seeds[slot] = seed;
        self.admitted_round[slot] = self.round;
        self.stall_at[slot] = match &self.watchdog {
            Some(w) => self.round.saturating_add(w.threshold_rounds(
                healthy_step_bound(&self.recipes[rid as usize].family, input.len()),
                self.quantum,
            )),
            None => u64::MAX,
        };
        self.inputs[slot] = input;
        self.serials[slot] = serial;
        self.steps[slot] = 0;
        self.written[slot] = 0;
        self.safe[slot] = true;
        self.sends_s[slot] = 0;
        self.sends_r[slot] = 0;
        self.deliveries_r[slot] = 0;
        self.deliveries_s[slot] = 0;
        self.drops[slot] = 0;
        self.write_steps[slot].clear();
        self.deadline[slot] = max_steps;
        self.expires[slot] = ttl_rounds.map_or(u64::MAX, |ttl| self.round.saturating_add(ttl));
        self.submitted[slot] = submitted;
        self.active.push(slot as u32);
        self.index
            .insert(serial, SlotState::Running { slot: slot as u32 });
    }

    fn retire(&mut self, pos: usize, fate: SessionFate) {
        let slot = self.active.swap_remove(pos) as usize;
        let serial = self.serials[slot];
        self.stall_at[slot] = u64::MAX;
        if let Some(m) = &self.metrics {
            match fate {
                SessionFate::Completed => {
                    m.note_completed(self.round.saturating_sub(self.submitted[slot]));
                }
                SessionFate::Exhausted => m.note_exhausted(),
                SessionFate::Disconnected => m.note_disconnected(),
            }
        }
        let outcome = SessionOutcome {
            id: SessionId::new(self.shard, serial),
            fate,
            stats: RunStats {
                steps: self.steps[slot],
                sends_s: self.sends_s[slot],
                sends_r: self.sends_r[slot],
                deliveries_r: self.deliveries_r[slot],
                deliveries_s: self.deliveries_s[slot],
                drops: self.drops[slot],
                written: self.written[slot],
                input_len: self.inputs[slot].len(),
                safe: self.safe[slot],
                write_steps: self.write_steps[slot].clone(),
            },
            submitted_round: self.submitted[slot],
            retired_round: self.round,
        };
        self.recipes[self.slot_recipe[slot] as usize]
            .free
            .push(slot as u32);
        self.index.insert(
            serial,
            SlotState::Done {
                at: self.completed.len(),
            },
        );
        self.completed.push(outcome);
    }

    // Flags the session in `slot` as stalled, exactly once per
    // admission: reconstructs its full SessionSpec from the recipe table
    // and the slot columns (complete replay provenance), buffers the
    // StallRecord for `drain_stalls`, and disarms the slot's threshold.
    // The session keeps running — the watchdog observes, it does not
    // kill.
    fn flag_stall(&mut self, slot: usize) {
        self.stall_at[slot] = u64::MAX;
        let r = &self.recipes[self.slot_recipe[slot] as usize];
        let expected = healthy_step_bound(&r.family, self.inputs[slot].len());
        let threshold = self
            .watchdog
            .as_ref()
            .map_or(0, |w| w.threshold_rounds(expected, self.quantum));
        let spec = SessionSpec {
            family: r.family.clone(),
            input: self.inputs[slot].clone(),
            channel: r.channel.clone(),
            scheduler: r.scheduler.clone(),
            seed: self.seeds[slot],
            max_steps: self.deadline[slot],
            ttl_rounds: (self.expires[slot] != u64::MAX)
                .then(|| self.expires[slot] - self.admitted_round[slot]),
        };
        self.stalls.push(StallRecord {
            experiment: String::new(),
            shard: self.shard,
            serial: self.serials[slot],
            round: self.round,
            age_rounds: self.round.saturating_sub(self.admitted_round[slot]),
            threshold_rounds: threshold,
            expected_steps: expected,
            steps: self.steps[slot],
            spec,
        });
        if let Some(m) = &self.metrics {
            m.note_stall();
        }
    }

    // Same stopping rule as `World::run_until(max_steps, is_complete)`:
    // completion is checked before each step, the budget caps the count.
    fn slot_fate(&self, slot: usize) -> Option<SessionFate> {
        let sender = self.senders[slot].as_ref().expect("active slot has sender");
        if sender.is_done() && self.written[slot] >= self.inputs[slot].len() {
            return Some(SessionFate::Completed);
        }
        if self.steps[slot] >= self.deadline[slot] {
            return Some(SessionFate::Exhausted);
        }
        None
    }

    fn step_slot(&mut self, slot: usize) -> Option<SessionFate> {
        for _ in 0..self.quantum {
            if let Some(fate) = self.slot_fate(slot) {
                return Some(fate);
            }
            self.step_slot_once(slot);
        }
        self.slot_fate(slot)
    }

    // `step_slot` as one profiled window: the same quantum loop, with
    // each protocol step marking phase boundaries into `obs`. Stopping
    // rule and stepping are byte-for-byte the unprofiled logic — the
    // prof_parity suite holds the digests equal.
    fn step_slot_profiled(&mut self, slot: usize, prof: &PhaseProfiler) -> Option<SessionFate> {
        let recipe = &self.recipes[self.slot_recipe[slot] as usize];
        let deliver = delivery_phase(&recipe.channel);
        let expire = expiry_phase(&recipe.channel);
        let mut obs = ProfObs::begin();
        let fate = 'quantum: {
            for _ in 0..self.quantum {
                if let Some(fate) = self.slot_fate(slot) {
                    break 'quantum Some(fate);
                }
                self.step_slot_once_impl(slot, &mut obs, deliver, expire);
            }
            self.slot_fate(slot)
        };
        obs.finish(prof);
        fate
    }

    // One protocol step — `World::step` under `TraceMode::Off` with the
    // event construction, probe fan-out and provenance branches removed.
    // Any behavioural divergence from the world loop is a bug the parity
    // suite exists to catch.
    fn step_slot_once(&mut self, slot: usize) {
        // Phases are irrelevant under `NoObs` (marks compile away), so
        // the unprofiled hot path is unchanged.
        self.step_slot_once_impl(
            slot,
            &mut NoObs,
            Phase::DeliverPerfect,
            Phase::ExpirePerfect,
        );
    }

    fn step_slot_once_impl<O: StepObs>(
        &mut self,
        slot: usize,
        obs: &mut O,
        deliver: Phase,
        expire: Phase,
    ) {
        obs.mark(Phase::SchedulerDecide);
        let t = self.steps[slot];
        let sender = self.senders[slot].as_mut().expect("active slot has sender");
        let receiver = self.receivers[slot]
            .as_mut()
            .expect("active slot has receiver");
        let channel = self.channels[slot]
            .as_mut()
            .expect("active slot has channel");
        let scheduler = self.schedulers[slot]
            .as_mut()
            .expect("active slot has scheduler");

        scheduler.note_progress(t, self.written[slot]);
        let decision = scheduler.decide(t, &**channel);

        // Adversarial deletions first (they model in-transit loss).
        obs.mark(deliver);
        for i in 0..decision.delete_to_r.len() {
            if channel.delete_to_r(decision.delete_to_r[i]).is_ok() {
                self.drops[slot] += 1;
            }
        }
        for i in 0..decision.delete_to_s.len() {
            if channel.delete_to_s(decision.delete_to_s[i]).is_ok() {
                self.drops[slot] += 1;
            }
        }

        // Transient corruption strikes land between loss and delivery.
        for cmd in &decision.corruptions {
            match cmd.kind {
                CorruptionKind::ScrambleSender => {
                    sender.scramble(cmd.draw);
                }
                CorruptionKind::ScrambleReceiver => {
                    receiver.scramble(cmd.draw);
                }
                CorruptionKind::DesyncSender => {
                    sender.desync(cmd.draw);
                }
                CorruptionKind::DesyncReceiver => {
                    receiver.desync(cmd.draw);
                }
                CorruptionKind::InjectToR => {
                    let size = sender.alphabet().size();
                    if size != 0 {
                        channel.send_s(SMsg((cmd.draw % u64::from(size)) as u16));
                    }
                }
                CorruptionKind::InjectToS => {
                    let size = receiver.alphabet().size();
                    if size != 0 {
                        channel.send_r(RMsg((cmd.draw % u64::from(size)) as u16));
                    }
                }
            }
        }

        // Deliveries (against the post-deletion state; infeasible choices
        // are ignored).
        let delivered_to_s = decision
            .deliver_to_s
            .filter(|m| channel.deliver_to_s(*m).is_ok());
        if delivered_to_s.is_some() {
            self.deliveries_s[slot] += 1;
        }
        let delivered_to_r = decision
            .deliver_to_r
            .filter(|m| channel.deliver_to_r(*m).is_ok());
        if delivered_to_r.is_some() {
            self.deliveries_r[slot] += 1;
        }

        // Processor steps.
        obs.mark(Phase::SenderStep);
        let s_event = if t == 0 {
            SenderEvent::Init
        } else {
            match delivered_to_s {
                Some(m) => SenderEvent::Deliver(m),
                None => SenderEvent::Tick,
            }
        };
        let r_event = if t == 0 {
            ReceiverEvent::Init
        } else {
            match delivered_to_r {
                Some(m) => ReceiverEvent::Deliver(m),
                None => ReceiverEvent::Tick,
            }
        };
        let s_out = sender.on_event(s_event);
        obs.mark(Phase::ReceiverStep);
        let r_out = receiver.on_event(r_event);

        // Apply outputs after deliveries: sends become deliverable next
        // step at the earliest.
        for item in r_out.write {
            self.safe[slot] &= self.inputs[slot].get(self.written[slot]) == Some(item);
            self.write_steps[slot].push(t);
            self.written[slot] += 1;
        }
        obs.mark(deliver);
        for m in s_out.send {
            channel.send_s(m);
            self.sends_s[slot] += 1;
        }
        for m in r_out.send {
            channel.send_r(m);
            self.sends_r[slot] += 1;
        }

        // Channel clock, then the expiry drain: channel-destroyed copies
        // count as drops exactly like adversarial loss.
        obs.mark(expire);
        channel.tick();
        channel.take_expirations(&mut self.scratch_r, &mut self.scratch_s);
        self.drops[slot] += self.scratch_r.len() + self.scratch_s.len();
        self.scratch_r.clear();
        self.scratch_s.clear();

        obs.mark(Phase::Bookkeeping);
        self.steps[slot] = t + 1;
    }
}

/// Shape of a [`SessionServer`]: how many shards, how many slots each,
/// and the per-round step quantum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Independent shards (each its own [`SessionEngine`] and lock).
    #[serde(default = "default_shards")]
    pub shards: u16,
    /// Slots per shard.
    #[serde(default = "default_capacity")]
    pub capacity_per_shard: usize,
    /// Protocol steps per session per round.
    #[serde(default = "default_quantum")]
    pub quantum: u32,
    /// Stall watchdog; `None` (the default) runs without one.
    #[serde(default)]
    pub watchdog: Option<WatchdogSpec>,
}

fn default_shards() -> u16 {
    1
}

fn default_capacity() -> usize {
    1024
}

fn default_quantum() -> u32 {
    8
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec {
            shards: default_shards(),
            capacity_per_shard: default_capacity(),
            quantum: default_quantum(),
            watchdog: None,
        }
    }
}

/// The sharded submit/poll front of the session store.
///
/// `submit` routes round-robin across shards; `poll` and `disconnect`
/// route by the id's shard bits. Shards step in lockstep under
/// [`SessionServer::step_rounds`] / [`SessionServer::run_until_idle`];
/// each shard is an independently locked [`SessionEngine`], so callers on
/// different shards never contend.
#[derive(Debug)]
pub struct SessionServer {
    engines: Vec<Mutex<SessionEngine>>,
    router: AtomicUsize,
    fleet: Option<FleetRegistry>,
}

impl SessionServer {
    /// Builds the server: `spec.shards` empty engines (no fleet
    /// registry; see [`SessionServer::with_fleet`]). A `spec.watchdog`
    /// arms every shard's stall watchdog either way.
    ///
    /// # Panics
    ///
    /// Panics if the spec names zero shards, slots, or quantum.
    pub fn new(spec: &ServerSpec) -> SessionServer {
        assert!(spec.shards > 0, "a server needs at least one shard");
        let engines = (0..spec.shards)
            .map(|s| {
                let mut engine = SessionEngine::new(s, spec.capacity_per_shard, spec.quantum);
                if let Some(w) = spec.watchdog {
                    engine.arm_watchdog(w);
                }
                Mutex::new(engine)
            })
            .collect();
        SessionServer {
            engines,
            router: AtomicUsize::new(0),
            fleet: None,
        }
    }

    /// Builds the server with a [`FleetRegistry`] attached: every shard
    /// reports into its own [`ShardMetrics`], and
    /// [`SessionServer::snapshot`] / [`SessionServer::watch`] observe
    /// the fleet live.
    pub fn with_fleet(spec: &ServerSpec) -> SessionServer {
        let mut server = SessionServer::new(spec);
        let fleet = FleetRegistry::new(spec.shards);
        for (s, engine) in server.engines.iter_mut().enumerate() {
            engine.get_mut().attach_metrics(fleet.shard(s as u16));
        }
        server.fleet = Some(fleet);
        server
    }

    /// The fleet registry, when built via [`SessionServer::with_fleet`].
    pub fn fleet(&self) -> Option<&FleetRegistry> {
        self.fleet.as_ref()
    }

    /// A point-in-time [`FleetSnapshot`] of every shard's metrics, taken
    /// without stopping (or locking) any shard; `None` unless built via
    /// [`SessionServer::with_fleet`].
    pub fn snapshot(&self) -> Option<FleetSnapshot> {
        self.fleet.as_ref().map(FleetRegistry::snapshot)
    }

    /// A delta-tracking [`FleetWatch`] over the fleet; `None` unless
    /// built via [`SessionServer::with_fleet`].
    pub fn watch(&self) -> Option<FleetWatch> {
        self.fleet.as_ref().map(FleetRegistry::watch)
    }

    /// Drains every shard's watchdog flags, exactly once, shard-major.
    pub fn drain_stalls(&self) -> Vec<StallRecord> {
        let mut out = Vec::new();
        for engine in &self.engines {
            out.append(&mut engine.lock().drain_stalls());
        }
        out
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// Accepts a session on the next shard in round-robin order.
    pub fn submit(&self, spec: SessionSpec) -> SessionId {
        let shard = self.router.fetch_add(1, Ordering::Relaxed) % self.engines.len();
        self.submit_to(shard as u16, spec)
    }

    /// Accepts a session on a specific shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn submit_to(&self, shard: u16, spec: SessionSpec) -> SessionId {
        let serial = self.engines[shard as usize].lock().submit(spec);
        SessionId::new(shard, serial)
    }

    /// Where the session stands. Ids from another server (shard out of
    /// range) report [`SessionStatus::Unknown`].
    pub fn poll(&self, id: SessionId) -> SessionStatus {
        match self.engines.get(id.shard() as usize) {
            Some(engine) => engine.lock().poll(id.serial()),
            None => SessionStatus::Unknown,
        }
    }

    /// Disconnects the session; see [`SessionEngine::disconnect`].
    pub fn disconnect(&self, id: SessionId) -> bool {
        match self.engines.get(id.shard() as usize) {
            Some(engine) => engine.lock().disconnect(id.serial()),
            None => false,
        }
    }

    /// Steps every shard `rounds` rounds, in lockstep.
    pub fn step_rounds(&self, rounds: u64) {
        for _ in 0..rounds {
            for engine in &self.engines {
                engine.lock().step_round();
            }
        }
    }

    /// Rounds (lockstep across shards) until every shard is idle,
    /// stopping after `max_rounds`; reports whether idle was reached.
    pub fn run_until_idle(&self, max_rounds: u64) -> bool {
        for _ in 0..max_rounds {
            if self.engines.iter().all(|e| e.lock().is_idle()) {
                return true;
            }
            for engine in &self.engines {
                engine.lock().step_round();
            }
        }
        self.engines.iter().all(|e| e.lock().is_idle())
    }

    /// Sessions currently in slots, across all shards.
    pub fn active_sessions(&self) -> usize {
        self.engines.iter().map(|e| e.lock().active_len()).sum()
    }

    /// Sessions waiting for slots, across all shards.
    pub fn queued_sessions(&self) -> usize {
        self.engines.iter().map(|e| e.lock().queued_len()).sum()
    }

    /// Drains every shard's outcomes; each outcome is handed out exactly
    /// once, shard-major.
    pub fn drain_completed(&self) -> Vec<SessionOutcome> {
        let mut out = Vec::new();
        for engine in &self.engines {
            out.append(&mut engine.lock().drain_completed());
        }
        out
    }
}

/// One entry in a churn workload's session mix: the recipe a slice of the
/// synthetic users runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTemplate {
    /// The protocol family recipe.
    pub family: FamilySpec,
    /// The channel recipe.
    pub channel: ChannelSpec,
    /// The adversary recipe.
    pub scheduler: SchedulerSpec,
}

/// A seeded open/transmit/disconnect workload: `sessions` users arrive
/// `arrivals_per_round` per round (round-robin over shards), each running
/// a [`SessionTemplate`] from the mix on an input drawn from the
/// template's claimed family, and a `disconnect_rate` fraction walk away
/// `disconnect_after` rounds after admission.
///
/// Session `k`'s spec is a pure function of `(seed, k)`, so the workload
/// — and every per-session outcome — is identical at any shard count;
/// [`ChurnReport::digest`] is the order-insensitive check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Total sessions the workload opens.
    pub sessions: u64,
    /// Arrival rate: sessions `k` with `k / arrivals_per_round == r`
    /// arrive on round `r`.
    pub arrivals_per_round: u64,
    /// Server shape the workload runs on.
    #[serde(default)]
    pub server: ServerSpec,
    /// Per-session step budget.
    pub max_steps: Step,
    /// Workload seed: drives per-session input choice, adversary seed and
    /// walk-away draws.
    pub seed: u64,
    /// Fraction of sessions that disconnect early, in `[0, 1]`.
    #[serde(default)]
    pub disconnect_rate: f64,
    /// Rounds after admission an early-disconnecting session walks away.
    #[serde(default = "default_disconnect_after")]
    pub disconnect_after: u64,
    /// The session mix; session `k` runs template `k % mix.len()`.
    pub mix: Vec<SessionTemplate>,
}

fn default_disconnect_after() -> u64 {
    1
}

impl ChurnSpec {
    /// The per-template input pools (each template's claimed family),
    /// computed once per run.
    ///
    /// # Panics
    ///
    /// Panics if a template's family claims no sequences.
    pub fn claimed_inputs(&self) -> Vec<Vec<DataSeq>> {
        self.mix
            .iter()
            .map(|t| {
                let seqs = t.family.build().claimed_family().seqs().to_vec();
                assert!(!seqs.is_empty(), "template family claims no sequences");
                seqs
            })
            .collect()
    }

    /// Session `k`'s spec — a pure function of `(self.seed, k)` and the
    /// mix, independent of shard count and arrival interleaving.
    pub fn session_at(&self, k: u64, claimed: &[Vec<DataSeq>]) -> SessionSpec {
        let t = (k % self.mix.len() as u64) as usize;
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ (k + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let pool = &claimed[t];
        let input = pool[rng.gen_range(0..pool.len())].clone();
        let seed = rng.next_u64();
        let ttl = (self.disconnect_rate > 0.0 && rng.gen_bool(self.disconnect_rate))
            .then_some(self.disconnect_after);
        let template = &self.mix[t];
        SessionSpec {
            family: template.family.clone(),
            input,
            channel: template.channel.clone(),
            scheduler: template.scheduler.clone(),
            seed,
            max_steps: self.max_steps,
            ttl_rounds: ttl,
        }
    }
}

/// What a churn run measured, merged across shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Shards the workload ran on.
    pub shards: usize,
    /// Sessions submitted.
    pub submitted: u64,
    /// Sessions that completed their transmission.
    pub completed: u64,
    /// Sessions that ran out of step budget.
    pub exhausted: u64,
    /// Sessions that walked away.
    pub disconnected: u64,
    /// Protocol steps executed across every session.
    pub total_steps: u64,
    /// Engine rounds, max across shards.
    pub rounds: u64,
    /// Submit-to-retire latency of *completed* sessions, in rounds.
    pub latency_rounds: Histogram,
    /// Order-insensitive digest over per-session `(fate, stats)` — equal
    /// digests at different shard counts certify the sharding changed
    /// scheduling only, not any session's outcome.
    pub digest: u64,
    /// Wall-clock seconds for the whole run (threads included).
    pub wall_secs: f64,
    /// Per-shard busy seconds — the time each shard's engine spent
    /// stepping its own sessions. On a machine with a core per shard,
    /// wall time converges to the maximum of these (the critical path).
    pub shard_busy_secs: Vec<f64>,
    /// Sessions the stall watchdog flagged (empty unless
    /// `server.watchdog` was set), with full replay provenance.
    #[serde(default)]
    pub stalls: Vec<StallRecord>,
}

impl ChurnReport {
    /// The parallel critical path: the busiest shard's seconds. This is
    /// what aggregate throughput is computed against, so the number
    /// measures sharding quality (balance + per-shard speed) rather than
    /// how many cores the benchmark host happens to have.
    pub fn critical_path_secs(&self) -> f64 {
        self.shard_busy_secs.iter().copied().fold(0.0, f64::max)
    }

    /// Completed sessions per critical-path second.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.critical_path_secs();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// p99 submit-to-retire latency of completed sessions, in rounds.
    pub fn p99_latency_rounds(&self) -> f64 {
        self.latency_rounds.quantile(0.99)
    }

    /// Flattens for the `{"sessions": …}` telemetry line.
    pub fn record(&self, experiment: &str) -> SessionsRecord {
        SessionsRecord {
            experiment: experiment.to_string(),
            shards: self.shards,
            submitted: self.submitted,
            completed: self.completed,
            exhausted: self.exhausted,
            disconnected: self.disconnected,
            total_steps: self.total_steps,
            rounds: self.rounds,
            wall_secs: self.wall_secs,
            busy_secs: self.critical_path_secs(),
            sessions_per_sec: self.sessions_per_sec(),
            p99_latency_rounds: self.p99_latency_rounds(),
        }
    }
}

// Per-shard fold of drained outcomes.
struct ShardOutcome {
    submitted: u64,
    completed: u64,
    exhausted: u64,
    disconnected: u64,
    total_steps: u64,
    rounds: u64,
    latency: Histogram,
    digest: u64,
    busy_secs: f64,
    stalls: Vec<StallRecord>,
}

fn latency_histogram() -> Histogram {
    // Width-1 buckets: exact quantiles for round-valued latencies up to
    // the overflow bucket.
    Histogram::linear(1.0, 1.0, 256)
}

fn outcome_digest(outcome: &SessionOutcome) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (outcome.fate == SessionFate::Completed).hash(&mut h);
    (outcome.fate == SessionFate::Disconnected).hash(&mut h);
    outcome.stats.steps.hash(&mut h);
    outcome.stats.sends_s.hash(&mut h);
    outcome.stats.sends_r.hash(&mut h);
    outcome.stats.deliveries_r.hash(&mut h);
    outcome.stats.deliveries_s.hash(&mut h);
    outcome.stats.drops.hash(&mut h);
    outcome.stats.written.hash(&mut h);
    outcome.stats.input_len.hash(&mut h);
    outcome.stats.safe.hash(&mut h);
    outcome.stats.write_steps.hash(&mut h);
    h.finish()
}

fn run_shard(
    spec: &ChurnSpec,
    shard: u16,
    claimed: &[Vec<DataSeq>],
    meter: Option<&ProgressMeter>,
    metrics: Option<Arc<ShardMetrics>>,
    prof: Option<&Arc<PhaseProfiler>>,
) -> ShardOutcome {
    let shards = u64::from(spec.server.shards.max(1));
    let arrivals = spec.arrivals_per_round.max(1);
    let mut engine = SessionEngine::new(shard, spec.server.capacity_per_shard, spec.server.quantum);
    if let Some(m) = metrics {
        engine.attach_metrics(m);
    }
    if let Some(p) = prof {
        engine.attach_profiler(Arc::clone(p));
    }
    if let Some(w) = spec.server.watchdog {
        engine.arm_watchdog(w);
    }
    let mut progress = meter.map(ProgressMeter::local);
    let mut out = ShardOutcome {
        submitted: 0,
        completed: 0,
        exhausted: 0,
        disconnected: 0,
        total_steps: 0,
        rounds: 0,
        latency: latency_histogram(),
        digest: 0,
        busy_secs: 0.0,
        stalls: Vec::new(),
    };
    let started = Instant::now();
    // Shard `s` owns sessions `k ≡ s (mod shards)`; session `k` arrives
    // on round `k / arrivals` regardless of shard count.
    let mut k = u64::from(shard);
    while k < spec.sessions || !engine.is_idle() {
        while k < spec.sessions && k / arrivals <= engine.round() {
            engine.submit(spec.session_at(k, claimed));
            out.submitted += 1;
            k += shards;
        }
        engine.step_round();
        for outcome in engine.drain_completed() {
            match outcome.fate {
                SessionFate::Completed => {
                    out.completed += 1;
                    out.latency.record(outcome.latency_rounds() as f64);
                }
                SessionFate::Exhausted => out.exhausted += 1,
                SessionFate::Disconnected => out.disconnected += 1,
            }
            out.total_steps += outcome.stats.steps;
            out.digest = out.digest.wrapping_add(outcome_digest(&outcome));
            if let Some(p) = progress.as_mut() {
                p.add(1);
            }
        }
    }
    out.rounds = engine.round();
    out.busy_secs = started.elapsed().as_secs_f64();
    out.stalls = engine.drain_stalls();
    out
}

fn fold_shards(spec: &ChurnSpec, outs: Vec<ShardOutcome>, wall_secs: f64) -> ChurnReport {
    let mut report = ChurnReport {
        shards: outs.len(),
        submitted: 0,
        completed: 0,
        exhausted: 0,
        disconnected: 0,
        total_steps: 0,
        rounds: 0,
        latency_rounds: latency_histogram(),
        digest: 0,
        wall_secs,
        shard_busy_secs: Vec::with_capacity(outs.len()),
        stalls: Vec::new(),
    };
    for mut out in outs {
        report.submitted += out.submitted;
        report.completed += out.completed;
        report.exhausted += out.exhausted;
        report.disconnected += out.disconnected;
        report.total_steps += out.total_steps;
        report.rounds = report.rounds.max(out.rounds);
        report.latency_rounds.merge(&out.latency);
        report.digest = report.digest.wrapping_add(out.digest);
        report.shard_busy_secs.push(out.busy_secs);
        report.stalls.append(&mut out.stalls);
    }
    debug_assert_eq!(report.submitted, spec.sessions);
    report
}

fn churn(
    spec: &ChurnSpec,
    meter: Option<&ProgressMeter>,
    isolated: bool,
    fleet: Option<&FleetRegistry>,
    prof: Option<&Arc<PhaseProfiler>>,
) -> ChurnReport {
    assert!(!spec.mix.is_empty(), "a churn workload needs a session mix");
    assert!(
        (0.0..=1.0).contains(&spec.disconnect_rate),
        "disconnect_rate out of range"
    );
    let claimed = spec.claimed_inputs();
    let shards = spec.server.shards.max(1);
    if let Some(f) = fleet {
        assert_eq!(
            f.shard_count(),
            usize::from(shards),
            "fleet registry shard count must match the workload's"
        );
    }
    if let Some(m) = meter {
        m.begin(spec.sessions as usize);
    }
    let wall = Instant::now();
    let outs: Vec<ShardOutcome> = if isolated || shards == 1 {
        (0..shards)
            .map(|s| run_shard(spec, s, &claimed, meter, fleet.map(|f| f.shard(s)), prof))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let claimed = &claimed;
                    let metrics = fleet.map(|f| f.shard(s));
                    scope.spawn(move || {
                        if let Some(m) = meter {
                            m.worker_started();
                        }
                        let out = run_shard(spec, s, claimed, meter, metrics, prof);
                        if let Some(m) = meter {
                            m.worker_finished();
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    };
    let wall_secs = wall.elapsed().as_secs_f64();
    if let Some(m) = meter {
        m.finish();
    }
    fold_shards(spec, outs, wall_secs)
}

/// Runs the churn workload with one thread per shard (live progress via
/// the meter's merge-on-join counters). Per-session outcomes — and the
/// report's digest — are identical to [`run_churn_isolated`]; only the
/// timing fields differ.
pub fn run_churn(spec: &ChurnSpec, meter: Option<&ProgressMeter>) -> ChurnReport {
    churn(spec, meter, false, None, None)
}

/// Runs the churn workload stepping each shard *in isolation*,
/// sequentially, so [`ChurnReport::shard_busy_secs`] is each shard's
/// exact single-threaded cost with no core contention. This is the bench
/// timing mode: on a host with a core per shard, wall time converges to
/// the critical path these numbers bound.
pub fn run_churn_isolated(spec: &ChurnSpec, meter: Option<&ProgressMeter>) -> ChurnReport {
    churn(spec, meter, true, None, None)
}

/// [`run_churn`] with each shard reporting into its slice of `fleet` —
/// the metered lane. Another thread holding a clone of the registry can
/// sample [`FleetRegistry::snapshot`] / [`FleetRegistry::watch`] while
/// the workload runs; per-session outcomes and the report's digest are
/// identical to the unmetered lanes.
///
/// # Panics
///
/// Panics if the registry's shard count differs from
/// `spec.server.shards`.
pub fn run_churn_fleet(
    spec: &ChurnSpec,
    meter: Option<&ProgressMeter>,
    fleet: &FleetRegistry,
) -> ChurnReport {
    churn(spec, meter, false, Some(fleet), None)
}

/// [`run_churn_isolated`] with fleet metrics attached — the metered
/// bench lane the `METERED_BUDGET` overhead gate compares against its
/// unmetered sibling.
///
/// # Panics
///
/// Panics if the registry's shard count differs from
/// `spec.server.shards`.
pub fn run_churn_fleet_isolated(
    spec: &ChurnSpec,
    meter: Option<&ProgressMeter>,
    fleet: &FleetRegistry,
) -> ChurnReport {
    churn(spec, meter, true, Some(fleet), None)
}

/// [`run_churn`] with every shard engine sharing `prof`: each
/// `prof.period()`-th slot quantum becomes a profiled window, so the
/// per-phase cost table covers the whole fleet. Per-session outcomes and
/// the report's digest are identical to the unprofiled lanes — the
/// profiler only observes.
pub fn run_churn_profiled(
    spec: &ChurnSpec,
    meter: Option<&ProgressMeter>,
    prof: &Arc<PhaseProfiler>,
) -> ChurnReport {
    churn(spec, meter, false, None, Some(prof))
}

/// [`run_churn_isolated`] with phase profiling attached — the profiled
/// bench lane the `PROF_BUDGET` overhead gate compares against its
/// unprofiled sibling.
pub fn run_churn_profiled_isolated(
    spec: &ChurnSpec,
    meter: Option<&ProgressMeter>,
    prof: &Arc<PhaseProfiler>,
) -> ChurnReport {
    churn(spec, meter, true, None, Some(prof))
}

/// [`run_churn_fleet`] with phase profiling attached as well — the
/// fully-instrumented lane `sessions_top` runs so its Prometheus
/// exposition can include per-phase cost alongside the fleet gauges.
///
/// # Panics
///
/// Panics if the registry's shard count differs from
/// `spec.server.shards`.
pub fn run_churn_fleet_profiled(
    spec: &ChurnSpec,
    meter: Option<&ProgressMeter>,
    fleet: &FleetRegistry,
    prof: &Arc<PhaseProfiler>,
) -> ChurnReport {
    churn(spec, meter, false, Some(fleet), Some(prof))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_protocols::ResendPolicy;

    fn tight_spec(input: &[u16], seed: u64) -> SessionSpec {
        SessionSpec {
            family: FamilySpec::Tight {
                d: 3,
                policy: ResendPolicy::Once,
            },
            input: DataSeq::from_indices(input.iter().copied()),
            channel: ChannelSpec::Dup,
            scheduler: SchedulerSpec::DupStorm { p_deliver: 0.9 },
            seed,
            max_steps: 5_000,
            ttl_rounds: None,
        }
    }

    fn churn_mix() -> Vec<SessionTemplate> {
        vec![
            SessionTemplate {
                family: FamilySpec::Tight {
                    d: 3,
                    policy: ResendPolicy::Once,
                },
                channel: ChannelSpec::Dup,
                scheduler: SchedulerSpec::DupStorm { p_deliver: 0.9 },
            },
            SessionTemplate {
                family: FamilySpec::Abp {
                    domain: 2,
                    max_len: 3,
                },
                channel: ChannelSpec::LossyFifo,
                scheduler: SchedulerSpec::Random { p_deliver: 0.8 },
            },
        ]
    }

    fn small_churn(sessions: u64, shards: u16) -> ChurnSpec {
        ChurnSpec {
            sessions,
            arrivals_per_round: 16,
            server: ServerSpec {
                shards,
                capacity_per_shard: 32,
                quantum: 8,
                watchdog: None,
            },
            max_steps: 2_000,
            seed: 42,
            disconnect_rate: 0.1,
            disconnect_after: 2,
            mix: churn_mix(),
        }
    }

    #[test]
    fn session_id_round_trips_shard_and_serial() {
        let id = SessionId::new(7, 123_456);
        assert_eq!(id.shard(), 7);
        assert_eq!(id.serial(), 123_456);
        assert_eq!(id.to_string(), "7:123456");
        let top = SessionId::new(u16::MAX, (1 << 48) - 1);
        assert_eq!(top.shard(), u16::MAX);
        assert_eq!(top.serial(), (1 << 48) - 1);
    }

    #[test]
    fn submit_poll_drain_lifecycle() {
        let server = SessionServer::new(&ServerSpec {
            shards: 1,
            capacity_per_shard: 8,
            quantum: 8,
            watchdog: None,
        });
        let id = server.submit(tight_spec(&[1, 2, 0], 7));
        assert_eq!(server.poll(id), SessionStatus::Queued);
        server.step_rounds(1);
        match server.poll(id) {
            SessionStatus::Running { steps } => assert!(steps > 0),
            SessionStatus::Done { .. } => {} // fast completion is fine
            other => panic!("expected running or done, got {other:?}"),
        }
        assert!(server.run_until_idle(10_000));
        let outcome = match server.poll(id) {
            SessionStatus::Done { outcome } => outcome,
            other => panic!("expected done, got {other:?}"),
        };
        assert_eq!(outcome.fate, SessionFate::Completed);
        assert!(outcome.stats.safe);
        assert_eq!(outcome.stats.written, 3);
        let drained = server.drain_completed();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0], *outcome);
        // Exactly-once: drained ids are forgotten.
        assert_eq!(server.poll(id), SessionStatus::Unknown);
        assert!(server.drain_completed().is_empty());
    }

    #[test]
    fn stats_match_a_single_world_run() {
        for seed in 0..16 {
            let spec = tight_spec(&[2, 0, 1], seed);
            let mut world = spec.build_world();
            world.run_until(spec.max_steps, World::is_complete);

            let mut engine = SessionEngine::new(0, 4, 8);
            let serial = engine.submit(spec);
            assert!(engine.run_until_idle(10_000));
            let SessionStatus::Done { outcome } = engine.poll(serial) else {
                panic!("session must have retired");
            };
            assert_eq!(outcome.stats, world.stats(), "seed={seed}");
        }
    }

    #[test]
    fn slot_recycling_replays_bit_identically() {
        // Two laps of the same five sessions through a 2-slot shard: the
        // second lap reuses slots (reset in place) and must reproduce the
        // first lap's stats exactly.
        let specs: Vec<SessionSpec> = (0..5).map(|s| tight_spec(&[1, 2, 0], s)).collect();
        let mut engine = SessionEngine::new(0, 2, 8);
        let lap = |engine: &mut SessionEngine| -> Vec<RunStats> {
            let serials: Vec<u64> = specs.iter().map(|s| engine.submit(s.clone())).collect();
            assert!(engine.run_until_idle(10_000));
            let stats = serials
                .iter()
                .map(|&s| match engine.poll(s) {
                    SessionStatus::Done { outcome } => outcome.stats.clone(),
                    other => panic!("expected done, got {other:?}"),
                })
                .collect();
            engine.drain_completed();
            stats
        };
        let first = lap(&mut engine);
        assert!(engine.slots_recycled() > 0, "2 slots, 5 sessions: recycles");
        let second = lap(&mut engine);
        assert_eq!(first, second);
    }

    #[test]
    fn cross_recipe_recycling_rebuilds_slots() {
        // Alternate two recipes through a 1-slot shard: every admission
        // after the first recycles the slot, half across recipes.
        let mut engine = SessionEngine::new(0, 1, 8);
        let abp = SessionSpec {
            family: FamilySpec::Abp {
                domain: 2,
                max_len: 3,
            },
            input: DataSeq::from_indices([1, 0]),
            channel: ChannelSpec::LossyFifo,
            scheduler: SchedulerSpec::Random { p_deliver: 0.8 },
            seed: 3,
            max_steps: 2_000,
            ttl_rounds: None,
        };
        let tight = tight_spec(&[2, 1], 3);
        for round in 0..3 {
            for spec in [&abp, &tight] {
                let mut solo = SessionEngine::new(0, 1, 8);
                let fresh_serial = solo.submit(spec.clone());
                assert!(solo.run_until_idle(10_000));
                let SessionStatus::Done { outcome: fresh } = solo.poll(fresh_serial) else {
                    panic!("fresh run must retire");
                };
                let serial = engine.submit(spec.clone());
                assert!(engine.run_until_idle(10_000));
                let SessionStatus::Done { outcome } = engine.poll(serial) else {
                    panic!("recycled run must retire");
                };
                assert_eq!(outcome.stats, fresh.stats, "round={round}");
                engine.drain_completed();
            }
        }
        assert!(engine.slots_recycled() >= 5);
    }

    #[test]
    fn backpressure_queues_and_eventually_completes() {
        let server = SessionServer::new(&ServerSpec {
            shards: 1,
            capacity_per_shard: 1,
            quantum: 8,
            watchdog: None,
        });
        let ids: Vec<SessionId> = (0..3)
            .map(|s| server.submit(tight_spec(&[1, 0], s)))
            .collect();
        assert_eq!(server.queued_sessions(), 3);
        assert!(server.run_until_idle(100_000));
        for id in ids {
            match server.poll(id) {
                SessionStatus::Done { outcome } => {
                    assert_eq!(outcome.fate, SessionFate::Completed);
                }
                other => panic!("expected done, got {other:?}"),
            }
        }
    }

    #[test]
    fn disconnect_running_and_queued_sessions() {
        let server = SessionServer::new(&ServerSpec {
            shards: 1,
            capacity_per_shard: 1,
            quantum: 1,
            watchdog: None,
        });
        // Starved adversary: the session would never finish on its own.
        let mut starved = tight_spec(&[1, 0], 0);
        starved.scheduler = SchedulerSpec::Random { p_deliver: 0.0 };
        let running = server.submit(starved.clone());
        let queued = server.submit(starved);
        server.step_rounds(3);
        assert!(matches!(
            server.poll(running),
            SessionStatus::Running { .. }
        ));
        assert_eq!(server.poll(queued), SessionStatus::Queued);

        assert!(server.disconnect(running));
        assert!(server.disconnect(queued));
        let drained = server.drain_completed();
        assert_eq!(drained.len(), 2);
        assert!(drained
            .iter()
            .all(|o| o.fate == SessionFate::Disconnected && o.stats.safe));
        let with_steps = drained.iter().find(|o| o.id == running).unwrap();
        assert!(with_steps.stats.steps > 0, "ran before disconnecting");
        let without = drained.iter().find(|o| o.id == queued).unwrap();
        assert_eq!(without.stats.steps, 0, "never admitted");
        // A second disconnect is a no-op.
        assert!(!server.disconnect(running));
    }

    #[test]
    fn ttl_churn_disconnects_after_the_configured_rounds() {
        let mut spec = tight_spec(&[1, 0], 0);
        spec.scheduler = SchedulerSpec::Random { p_deliver: 0.0 };
        spec.ttl_rounds = Some(3);
        let mut engine = SessionEngine::new(0, 4, 2);
        let serial = engine.submit(spec);
        assert!(engine.run_until_idle(100));
        let SessionStatus::Done { outcome } = engine.poll(serial) else {
            panic!("ttl must retire the session");
        };
        assert_eq!(outcome.fate, SessionFate::Disconnected);
        // Admitted on round 0, expired at round 3: three 2-step rounds.
        assert_eq!(outcome.stats.steps, 6);
    }

    #[test]
    fn exhaustion_caps_steps_at_the_budget() {
        let mut spec = tight_spec(&[1, 0], 0);
        spec.scheduler = SchedulerSpec::Random { p_deliver: 0.0 };
        spec.max_steps = 10;
        let mut engine = SessionEngine::new(0, 4, 8);
        let serial = engine.submit(spec);
        assert!(engine.run_until_idle(100));
        let SessionStatus::Done { outcome } = engine.poll(serial) else {
            panic!("budget must retire the session");
        };
        assert_eq!(outcome.fate, SessionFate::Exhausted);
        assert_eq!(outcome.stats.steps, 10);
    }

    #[test]
    fn empty_input_completes_like_a_world_run() {
        // A fresh sender only learns it is done at Init, so both the
        // world loop and the session store charge the empty input one
        // step — parity is the contract, not zero.
        let spec = tight_spec(&[], 0);
        let mut world = spec.build_world();
        world.run_until(spec.max_steps, World::is_complete);

        let mut engine = SessionEngine::new(0, 4, 8);
        let serial = engine.submit(spec);
        assert!(engine.run_until_idle(10));
        let SessionStatus::Done { outcome } = engine.poll(serial) else {
            panic!("empty input must complete");
        };
        assert_eq!(outcome.fate, SessionFate::Completed);
        assert_eq!(outcome.stats, world.stats());
        assert_eq!(outcome.stats.steps, 1);
    }

    #[test]
    fn churn_outcomes_are_shard_count_invariant() {
        let base = run_churn(&small_churn(400, 1), None);
        assert_eq!(base.submitted, 400);
        assert_eq!(
            base.completed + base.exhausted + base.disconnected,
            base.submitted
        );
        assert!(base.completed > 0);
        assert!(base.disconnected > 0, "10% walk-away rate must show up");
        for shards in [2u16, 4] {
            let sharded = run_churn(&small_churn(400, shards), None);
            assert_eq!(sharded.completed, base.completed, "shards={shards}");
            assert_eq!(sharded.exhausted, base.exhausted, "shards={shards}");
            assert_eq!(sharded.disconnected, base.disconnected, "shards={shards}");
            assert_eq!(sharded.total_steps, base.total_steps, "shards={shards}");
            assert_eq!(sharded.digest, base.digest, "shards={shards}");
        }
    }

    #[test]
    fn churn_threaded_and_isolated_agree() {
        let spec = small_churn(300, 3);
        let threaded = run_churn(&spec, None);
        let isolated = run_churn_isolated(&spec, None);
        assert_eq!(threaded.digest, isolated.digest);
        assert_eq!(threaded.completed, isolated.completed);
        assert_eq!(threaded.latency_rounds, isolated.latency_rounds);
        assert_eq!(isolated.shard_busy_secs.len(), 3);
        assert!(isolated.critical_path_secs() > 0.0);
        assert!(isolated.sessions_per_sec() > 0.0);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let a = run_churn(&small_churn(200, 2), None);
        let b = run_churn(&small_churn(200, 2), None);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.completed, b.completed);
        let mut other = small_churn(200, 2);
        other.seed = 43;
        let c = run_churn(&other, None);
        assert_ne!(a.digest, c.digest, "seed must matter");
    }

    #[test]
    fn churn_report_flattens_to_a_sessions_record() {
        let report = run_churn_isolated(&small_churn(120, 2), None);
        let record = report.record("bench_sessions");
        assert_eq!(record.shards, 2);
        assert_eq!(record.completed, report.completed);
        assert!(record.sessions_per_sec > 0.0);
        assert!(record.p99_latency_rounds >= 1.0);
    }

    #[test]
    fn sweep_spec_expands_to_session_specs_in_grid_order() {
        let sweep = SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::DupStorm { p_deliver: 0.9 })
            .seeds([0, 1]);
        let family = FamilySpec::Tight {
            d: 2,
            policy: ResendPolicy::Once,
        };
        let specs = sweep.session_specs(&family);
        let claimed = family.build().claimed_family();
        assert_eq!(specs.len(), claimed.len() * 2);
        assert_eq!(specs[0].input, claimed.seqs()[0]);
        assert_eq!(specs[0].seed, 0);
        assert_eq!(specs[1].seed, 1);
        assert_eq!(specs[2].input, claimed.seqs()[1]);
        assert!(specs.iter().all(|s| s.channel == ChannelSpec::Dup));
    }

    #[test]
    fn watchdog_flags_a_starved_session_with_replay_provenance() {
        // A session the adversary starves outright: it can never
        // complete, so its age crosses the (deliberately tight)
        // threshold and the watchdog must flag it — once — while
        // letting it keep running.
        let mut starved = tight_spec(&[1, 2, 0], 7);
        starved.scheduler = SchedulerSpec::Random { p_deliver: 0.0 };
        starved.max_steps = 5_000;
        let mut engine = SessionEngine::new(3, 4, 8);
        engine.arm_watchdog(WatchdogSpec {
            multiplier: 1.0,
            min_rounds: 2,
        });
        let serial = engine.submit(starved.clone());
        for _ in 0..20 {
            engine.step_round();
        }
        let stalls = engine.drain_stalls();
        assert_eq!(stalls.len(), 1, "flagged exactly once");
        let stall = &stalls[0];
        assert_eq!(stall.shard, 3);
        assert_eq!(stall.serial, serial);
        assert_eq!(stall.spec, starved, "full provenance round-trips");
        assert!(stall.age_rounds >= stall.threshold_rounds);
        assert_eq!(stall.expected_steps, healthy_step_bound(&starved.family, 3));
        assert!(stall.steps > 0, "it was running when flagged");
        // Drains are exactly-once; the session was not killed.
        assert!(engine.drain_stalls().is_empty());
        assert!(matches!(engine.poll(serial), SessionStatus::Running { .. }));
        // The provenance replays through the single-world path and
        // reproduces the stall: the session never completes.
        let mut world = stall.spec.build_world();
        world.run_until(1_000, World::is_complete);
        assert!(!world.is_complete(), "replayed session is indeed stuck");
    }

    #[test]
    fn watchdog_stays_silent_on_a_clean_churn_grid() {
        // Zero false positives: 32 seeded churn workloads under the
        // default watchdog, none of which starve anyone. Every stall —
        // and every exhaustion, which would signal the workload itself
        // leaves too little budget — must be absent.
        for seed in 0..32u64 {
            let mut spec = small_churn(100, 2);
            spec.seed = seed;
            spec.server.watchdog = Some(WatchdogSpec::default());
            let report = run_churn(&spec, None);
            assert_eq!(report.exhausted, 0, "seed={seed}: clean workload");
            assert!(
                report.stalls.is_empty(),
                "seed={seed}: false positive {:?}",
                report.stalls[0]
            );
        }
    }

    #[test]
    fn metered_churn_is_outcome_identical_and_fleet_counts_reconcile() {
        let spec = small_churn(300, 2);
        let unmetered = run_churn(&spec, None);
        let fleet = FleetRegistry::new(2);
        let metered = run_churn_fleet(&spec, None, &fleet);
        assert_eq!(metered.digest, unmetered.digest);
        assert_eq!(metered.completed, unmetered.completed);
        assert_eq!(metered.latency_rounds, unmetered.latency_rounds);
        let stats = fleet.snapshot().stats();
        assert_eq!(stats.submitted, metered.submitted);
        assert_eq!(stats.completed, metered.completed);
        assert_eq!(stats.disconnected, metered.disconnected);
        assert_eq!(stats.exhausted, metered.exhausted);
        assert_eq!(stats.steps, metered.total_steps);
        assert_eq!(stats.round, metered.rounds);
        assert_eq!(stats.admitted, stats.recycle_hits + stats.recycle_misses);
        // Same samples, same bucket layout: the fleet's merged latency
        // distribution is the report's, exactly.
        assert_eq!(stats.latency, metered.latency_rounds);
        assert!(stats.p99_latency_rounds() >= 1.0);
    }

    #[test]
    fn server_with_fleet_snapshots_without_stopping() {
        let server = SessionServer::with_fleet(&ServerSpec {
            shards: 2,
            capacity_per_shard: 8,
            quantum: 8,
            watchdog: Some(WatchdogSpec::default()),
        });
        assert!(server.fleet().is_some());
        let mut watch = server.watch().expect("fleet is attached");
        let ids: Vec<SessionId> = (0..6)
            .map(|s| server.submit(tight_spec(&[1, 0], s)))
            .collect();
        assert!(server.run_until_idle(10_000));
        let snap = server.snapshot().expect("fleet is attached");
        let stats = snap.stats();
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.active, 0);
        // Six completions: a real percentile, not the empty sentinel.
        assert!(stats.p99_latency_rounds() >= 0.0);
        let delta = watch.tick();
        assert_eq!(delta.completed, 6);
        assert!(server.drain_stalls().is_empty(), "healthy fleet");
        for id in ids {
            assert!(matches!(server.poll(id), SessionStatus::Done { .. }));
        }
    }

    #[test]
    fn session_and_churn_specs_round_trip_json() {
        let spec = tight_spec(&[1, 2, 0], 9);
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<SessionSpec>(&json).unwrap(), spec);

        let churn = small_churn(100, 4);
        let json = serde_json::to_string(&churn).unwrap();
        assert_eq!(serde_json::from_str::<ChurnSpec>(&json).unwrap(), churn);

        // `server` and `ttl_rounds` are defaulted, so a minimal spec parses.
        let minimal = r#"{"sessions":10,"arrivals_per_round":2,"max_steps":100,"seed":1,
            "mix":[{"family":{"Tight":{"d":2,"policy":"Once"}},
                    "channel":"Dup","scheduler":"Eager"}]}"#;
        let parsed: ChurnSpec = serde_json::from_str(minimal).unwrap();
        assert_eq!(parsed.server, ServerSpec::default());
        assert_eq!(parsed.disconnect_rate, 0.0);
    }
}
