//! One-stop imports for driving simulations and sweeps.
//!
//! ```
//! use stp_sim::prelude::*;
//!
//! let spec = SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::DupStorm { p_deliver: 0.9 })
//!     .max_steps(2_000)
//!     .seeds([0])
//!     .trace_mode(TraceMode::Off);
//! let outcome = SweepEngine::new(spec)
//!     .run_serial(&stp_protocols::TightFamily::new(2, stp_protocols::ResendPolicy::Once));
//! assert!(outcome.all_complete());
//! ```

pub use crate::engine::{SweepEngine, SweepSpec};
pub use crate::fleet::{
    healthy_step_bound, prometheus_text, FleetDelta, FleetRecord, FleetRegistry, FleetSnapshot,
    FleetStats, FleetWatch, ShardMetrics, ShardSnapshot, StallRecord, WatchdogSpec, NO_SAMPLES,
};
pub use crate::metrics::{Histogram, MetricsProbe, RunStats, SweepReport};
pub use crate::runner::{
    run_family_member, sweep_family, sweep_family_parallel, sweep_family_parallel_observed,
    MemberRun, SweepOutcome,
};
pub use crate::sessions::{
    run_churn, run_churn_fleet, run_churn_fleet_isolated, run_churn_isolated, ChurnReport,
    ChurnSpec, ServerSpec, SessionEngine, SessionFate, SessionId, SessionOutcome, SessionServer,
    SessionSpec, SessionStatus, SessionTemplate,
};
pub use crate::shrink::{shrink_plan, shrink_to_witness, CampaignJudge, Violation, Witness};
pub use crate::slo::{
    probe_recovery, recovery_envelope, recovery_envelope_observed, RecoveryEnvelope, RecoveryProbe,
    SloConfig,
};
pub use crate::steal::{StealReport, StealSweep, DEFAULT_CHUNK};
pub use crate::telemetry::{
    ExperimentSummary, FrontierRecord, LocalProgress, MemorySink, ProgressMeter, ProgressSnapshot,
    RunRecord, SessionsRecord, Sink, SpanRecord, TelemetryLine, TelemetryWriter,
};
pub use crate::trace::{
    chrome_trace_json, write_chrome_trace, CounterTrack, LifecycleCounts, MsgFate, MsgSpan,
    TraceProbe,
};
pub use crate::world::{World, WorldBuilder};
pub use stp_channel::campaign::{
    CampaignScheduler, Direction, FaultAction, FaultClause, FaultPlan, Trigger,
};
pub use stp_channel::{ChannelSpec, SchedulerSpec};
pub use stp_core::event::TraceMode;
pub use stp_protocols::FamilySpec;
