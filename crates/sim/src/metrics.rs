//! Run statistics extracted from traces — the raw material of the
//! protocol-cost experiment (E7).

use serde::{Deserialize, Serialize};
use stp_core::event::{Event, Step, Trace};
use stp_core::require::check_safety;

/// Aggregate statistics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Global steps executed.
    pub steps: Step,
    /// Messages sent by `S` (with multiplicity).
    pub sends_s: usize,
    /// Messages sent by `R`.
    pub sends_r: usize,
    /// Deliveries to `R`.
    pub deliveries_r: usize,
    /// Deliveries to `S`.
    pub deliveries_s: usize,
    /// Copies destroyed by the adversary (both directions).
    pub drops: usize,
    /// Items written by `R`.
    pub written: usize,
    /// Items on the input tape.
    pub input_len: usize,
    /// Whether safety held throughout.
    pub safe: bool,
    /// Step at which each output item was written.
    pub write_steps: Vec<Step>,
}

impl RunStats {
    /// Computes the statistics of `trace`.
    pub fn of(trace: &Trace) -> RunStats {
        let drops = trace
            .events()
            .iter()
            .filter(|e| matches!(e.event, Event::ChannelDrop { .. }))
            .count();
        RunStats {
            steps: trace.steps(),
            sends_s: trace.sends_by_s(),
            sends_r: trace.sends_by_r(),
            deliveries_r: trace.deliveries_to_r(),
            deliveries_s: trace.deliveries_to_s(),
            drops,
            written: trace.output().len(),
            input_len: trace.input().len(),
            safe: check_safety(trace).is_ok(),
            write_steps: trace.write_steps(),
        }
    }

    /// Whether the run delivered the whole input safely.
    pub fn is_complete(&self) -> bool {
        self.safe && self.written >= self.input_len
    }

    /// Total messages sent by both processors.
    pub fn total_sends(&self) -> usize {
        self.sends_s + self.sends_r
    }

    /// Messages sent per delivered item — the paper-era cost metric
    /// ("optimizing the number of messages"). `None` when nothing was
    /// written.
    pub fn sends_per_item(&self) -> Option<f64> {
        if self.written == 0 {
            None
        } else {
            Some(self.total_sends() as f64 / self.written as f64)
        }
    }

    /// Steps between consecutive writes (first entry is the step of the
    /// first write): the per-item learning latency profile.
    pub fn inter_write_gaps(&self) -> Vec<Step> {
        let mut gaps = Vec::with_capacity(self.write_steps.len());
        let mut prev = 0;
        for &s in &self.write_steps {
            gaps.push(s - prev);
            prev = s;
        }
        gaps
    }

    /// The largest inter-write gap, a proxy for the protocol's worst-case
    /// per-item latency in this run.
    pub fn max_gap(&self) -> Option<Step> {
        self.inter_write_gaps().into_iter().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_core::alphabet::{RMsg, SMsg};
    use stp_core::data::{DataItem, DataSeq};
    use stp_core::event::ProcessId;

    fn sample() -> Trace {
        let mut t = Trace::new(DataSeq::from_indices([1, 0]));
        t.record(0, Event::SendS { msg: SMsg(1) });
        t.record(1, Event::DeliverToR { msg: SMsg(1) });
        t.record(
            1,
            Event::Write {
                item: DataItem(1),
                pos: 0,
            },
        );
        t.record(1, Event::SendR { msg: RMsg(1) });
        t.record(
            2,
            Event::ChannelDrop {
                to: ProcessId::Sender,
                msg: 0,
            },
        );
        t.record(3, Event::SendS { msg: SMsg(0) });
        t.record(5, Event::DeliverToR { msg: SMsg(0) });
        t.record(
            5,
            Event::Write {
                item: DataItem(0),
                pos: 1,
            },
        );
        t.set_steps(6);
        t
    }

    #[test]
    fn counts_are_extracted() {
        let s = RunStats::of(&sample());
        assert_eq!(s.steps, 6);
        assert_eq!(s.sends_s, 2);
        assert_eq!(s.sends_r, 1);
        assert_eq!(s.deliveries_r, 2);
        assert_eq!(s.deliveries_s, 0);
        assert_eq!(s.drops, 1);
        assert_eq!(s.written, 2);
        assert!(s.safe);
        assert!(s.is_complete());
    }

    #[test]
    fn cost_metrics() {
        let s = RunStats::of(&sample());
        assert_eq!(s.total_sends(), 3);
        assert_eq!(s.sends_per_item(), Some(1.5));
        assert_eq!(s.write_steps, vec![1, 5]);
        assert_eq!(s.inter_write_gaps(), vec![1, 4]);
        assert_eq!(s.max_gap(), Some(4));
    }

    #[test]
    fn empty_run_has_no_rate() {
        let t = Trace::new(DataSeq::from_indices([1]));
        let s = RunStats::of(&t);
        assert_eq!(s.sends_per_item(), None);
        assert_eq!(s.max_gap(), None);
        assert!(!s.is_complete());
    }

    #[test]
    fn unsafe_runs_are_flagged() {
        let mut t = Trace::new(DataSeq::from_indices([1]));
        t.record(
            0,
            Event::Write {
                item: DataItem(0),
                pos: 0,
            },
        );
        let s = RunStats::of(&t);
        assert!(!s.safe);
        assert!(!s.is_complete());
    }
}
