//! Run statistics — trace-derived or streamed — and their sweep-wide
//! aggregation.
//!
//! Three layers, cheapest first:
//!
//! * [`MetricsProbe`] computes a [`RunStats`] *online* from the event
//!   stream (attach it to a `World`); no trace needs to exist, and under
//!   `TraceMode::Off` it is the only way to get per-run statistics.
//! * [`RunStats::of`] derives the same statistics from a materialized
//!   `Trace` in a single pass — the two agree field-for-field on any run.
//! * [`SweepReport`] folds many `RunStats` into sweep-wide distributions
//!   ([`Histogram`]s of steps-to-complete, sends per item, drops, and
//!   per-item write latency), the raw material of the protocol-cost
//!   experiments.

use serde::{Deserialize, Serialize};
use stp_core::data::DataSeq;
use stp_core::event::{Event, Probe, Step, Trace};

/// Aggregate statistics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Global steps executed.
    pub steps: Step,
    /// Messages sent by `S` (with multiplicity).
    pub sends_s: usize,
    /// Messages sent by `R`.
    pub sends_r: usize,
    /// Deliveries to `R`.
    pub deliveries_r: usize,
    /// Deliveries to `S`.
    pub deliveries_s: usize,
    /// Copies destroyed in transit: adversarial deletions (`ChannelDrop`)
    /// plus channel-initiated TTL expiries (`ChannelExpire`), so drop
    /// counts are comparable between deleting and timed channels.
    pub drops: usize,
    /// Items written by `R`.
    pub written: usize,
    /// Items on the input tape.
    pub input_len: usize,
    /// Whether safety held throughout.
    pub safe: bool,
    /// Step at which each output item was written.
    pub write_steps: Vec<Step>,
}

impl RunStats {
    /// Computes the statistics of `trace` in a single pass over its
    /// events.
    ///
    /// Safety is evaluated online with the same rule as
    /// [`check_safety`](stp_core::require::check_safety): writes must land
    /// at consecutive positions `0, 1, 2, …` and each written item must
    /// equal the input item at its position. Once violated, `safe` stays
    /// `false`.
    pub fn of(trace: &Trace) -> RunStats {
        let input = trace.input();
        let mut s = RunStats {
            steps: trace.steps(),
            sends_s: 0,
            sends_r: 0,
            deliveries_r: 0,
            deliveries_s: 0,
            drops: 0,
            written: 0,
            input_len: input.len(),
            safe: true,
            write_steps: Vec::new(),
        };
        for e in trace.events() {
            match e.event {
                Event::SendS { .. } => s.sends_s += 1,
                Event::SendR { .. } => s.sends_r += 1,
                Event::DeliverToR { .. } => s.deliveries_r += 1,
                Event::DeliverToS { .. } => s.deliveries_s += 1,
                Event::ChannelDrop { .. } | Event::ChannelExpire { .. } => s.drops += 1,
                Event::Write { item, pos } => {
                    s.safe &= pos == s.written && input.get(pos) == Some(item);
                    s.write_steps.push(e.step);
                    s.written += 1;
                }
                // Corruption strikes are adversary bookkeeping, not
                // message traffic — nothing to count here.
                Event::Read { .. } | Event::Corruption { .. } => {}
            }
        }
        s
    }

    /// Whether the run delivered the whole input safely.
    pub fn is_complete(&self) -> bool {
        self.safe && self.written >= self.input_len
    }

    /// Total messages sent by both processors.
    pub fn total_sends(&self) -> usize {
        self.sends_s + self.sends_r
    }

    /// Messages sent per delivered item — the paper-era cost metric
    /// ("optimizing the number of messages"). `None` when nothing was
    /// written.
    pub fn sends_per_item(&self) -> Option<f64> {
        if self.written == 0 {
            None
        } else {
            Some(self.total_sends() as f64 / self.written as f64)
        }
    }

    /// Steps between consecutive writes (first entry is the step of the
    /// first write): the per-item learning latency profile.
    pub fn inter_write_gaps(&self) -> Vec<Step> {
        let mut gaps = Vec::with_capacity(self.write_steps.len());
        let mut prev = 0;
        for &s in &self.write_steps {
            gaps.push(s - prev);
            prev = s;
        }
        gaps
    }

    /// The largest inter-write gap, a proxy for the protocol's worst-case
    /// per-item latency in this run.
    pub fn max_gap(&self) -> Option<Step> {
        self.inter_write_gaps().into_iter().max()
    }
}

/// A [`Probe`] that computes [`RunStats`] online from the event stream —
/// no trace, and no allocation per event (the write-step buffer grows
/// amortized and keeps its capacity across pooled resets).
///
/// Attach one via `WorldBuilder::probe`; after the run, recover it with
/// `World::probe_of::<MetricsProbe>()` and call [`MetricsProbe::stats`].
/// The result is field-for-field identical to [`RunStats::of`] on a
/// `TraceMode::Full` trace of the same run.
#[derive(Debug, Clone)]
pub struct MetricsProbe {
    input: DataSeq,
    steps: Step,
    sends_s: usize,
    sends_r: usize,
    deliveries_r: usize,
    deliveries_s: usize,
    drops: usize,
    written: usize,
    safe: bool,
    write_steps: Vec<Step>,
}

impl MetricsProbe {
    /// Creates a probe with empty counters (equivalent to the state after
    /// `on_run_start` with an empty input).
    pub fn new() -> Self {
        MetricsProbe {
            input: DataSeq::new(),
            steps: 0,
            sends_s: 0,
            sends_r: 0,
            deliveries_r: 0,
            deliveries_s: 0,
            drops: 0,
            written: 0,
            safe: true,
            write_steps: Vec::new(),
        }
    }

    /// The statistics accumulated since the last `on_run_start`.
    pub fn stats(&self) -> RunStats {
        RunStats {
            steps: self.steps,
            sends_s: self.sends_s,
            sends_r: self.sends_r,
            deliveries_r: self.deliveries_r,
            deliveries_s: self.deliveries_s,
            drops: self.drops,
            written: self.written,
            input_len: self.input.len(),
            safe: self.safe,
            write_steps: self.write_steps.clone(),
        }
    }
}

impl Default for MetricsProbe {
    fn default() -> Self {
        MetricsProbe::new()
    }
}

impl Probe for MetricsProbe {
    fn on_run_start(&mut self, input: &DataSeq) {
        // Clone the input only when it actually changed — pooled sweeps
        // replay the same sequence across many seeds.
        if self.input != *input {
            self.input = input.clone();
        }
        self.steps = 0;
        self.sends_s = 0;
        self.sends_r = 0;
        self.deliveries_r = 0;
        self.deliveries_s = 0;
        self.drops = 0;
        self.written = 0;
        self.safe = true;
        self.write_steps.clear();
    }

    fn on_event(&mut self, step: Step, event: &Event) {
        match *event {
            Event::SendS { .. } => self.sends_s += 1,
            Event::SendR { .. } => self.sends_r += 1,
            Event::DeliverToR { .. } => self.deliveries_r += 1,
            Event::DeliverToS { .. } => self.deliveries_s += 1,
            Event::ChannelDrop { .. } | Event::ChannelExpire { .. } => self.drops += 1,
            Event::Write { item, pos } => {
                // Same rule as `require::check_safety`: consecutive
                // positions, each matching the input item there.
                self.safe &= pos == self.written && self.input.get(pos) == Some(item);
                self.write_steps.push(step);
                self.written += 1;
            }
            Event::Read { .. } | Event::Corruption { .. } => {}
        }
    }

    fn on_step_end(&mut self, step: Step) {
        self.steps = step + 1;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A fixed-bucket histogram over `f64` samples.
///
/// `bounds` are the (strictly increasing) upper bucket edges; a sample
/// `v` lands in the first bucket whose bound satisfies `v < bound`, and
/// samples at or above the last bound land in the overflow bucket, so
/// there are `bounds.len() + 1` counters. Bucket layout is fixed at
/// construction — recording never allocates — and two histograms with the
/// same layout can be [`merge`](Histogram::merge)d, which is how
/// per-worker reports combine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bucket edges, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `counts[bounds.len()]` is the overflow.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample, `0.0` while empty (never NaN, so the histogram
    /// always serializes to valid JSON).
    pub min: f64,
    /// Largest sample, `0.0` while empty.
    pub max: f64,
}

impl Histogram {
    /// Creates a histogram with the given upper bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// `n` buckets with edges `start, start+width, …` (plus overflow).
    pub fn linear(start: f64, width: f64, n: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        Histogram::new((0..n).map(|i| start + width * i as f64).collect())
    }

    /// `n` buckets with edges `start, start·factor, start·factor², …`
    /// (plus overflow) — the right shape for step counts that span orders
    /// of magnitude.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0, "need start > 0, factor > 1");
        let mut edge = start;
        Histogram::new(
            (0..n)
                .map(|_| {
                    let e = edge;
                    edge *= factor;
                    e
                })
                .collect(),
        )
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b <= v);
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Folds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram layouts must match");
        if other.count == 0 {
            return;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of all samples, `0.0` while empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution estimate of the `q`-quantile (`0 < q ≤ 1`): the
    /// upper edge of the bucket holding the `⌈q·count⌉`-th smallest
    /// sample, clamped to the observed `[min, max]`. `0.0` while empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = self.bounds.get(i).copied().unwrap_or(self.max);
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Sweep-wide aggregation of per-run statistics: scalar totals plus
/// fixed-bucket distributions of the four quantities the experiments
/// care about.
///
/// Build one per worker with [`SweepReport::new`], feed it runs via
/// [`observe`](SweepReport::observe), and combine workers with
/// [`merge`](SweepReport::merge) — aggregation order does not affect the
/// result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Runs observed.
    pub runs: usize,
    /// Runs that delivered the whole input safely.
    pub complete: usize,
    /// Runs where safety was violated.
    pub unsafe_runs: usize,
    /// Total global steps across all runs.
    pub total_steps: u64,
    /// Total messages sent (both processors) across all runs.
    pub total_sends: u64,
    /// Total in-transit losses (deletions + expiries) across all runs.
    pub total_drops: u64,
    /// Total items written across all runs.
    pub total_written: u64,
    /// Steps-to-complete distribution (complete runs only).
    pub steps_to_complete: Histogram,
    /// Sends-per-delivered-item distribution (runs that wrote anything).
    pub sends_per_item: Histogram,
    /// Per-run drop-count distribution (all runs).
    pub drop_counts: Histogram,
    /// Per-item write latency: every inter-write gap of every run.
    pub write_gaps: Histogram,
}

impl SweepReport {
    /// An empty report with the standard bucket layout: exponential
    /// buckets for steps and gaps (they span orders of magnitude), linear
    /// buckets for the bounded sends-per-item ratio.
    pub fn new() -> Self {
        SweepReport {
            runs: 0,
            complete: 0,
            unsafe_runs: 0,
            total_steps: 0,
            total_sends: 0,
            total_drops: 0,
            total_written: 0,
            steps_to_complete: Histogram::exponential(1.0, 2.0, 16),
            sends_per_item: Histogram::linear(1.0, 0.5, 16),
            drop_counts: Histogram::exponential(1.0, 2.0, 12),
            write_gaps: Histogram::exponential(1.0, 2.0, 12),
        }
    }

    /// Folds one run into the report.
    pub fn observe(&mut self, stats: &RunStats) {
        self.runs += 1;
        if stats.is_complete() {
            self.complete += 1;
            self.steps_to_complete.record(stats.steps as f64);
        }
        if !stats.safe {
            self.unsafe_runs += 1;
        }
        self.total_steps += stats.steps;
        self.total_sends += stats.total_sends() as u64;
        self.total_drops += stats.drops as u64;
        self.total_written += stats.written as u64;
        if let Some(spi) = stats.sends_per_item() {
            self.sends_per_item.record(spi);
        }
        self.drop_counts.record(stats.drops as f64);
        for g in stats.inter_write_gaps() {
            self.write_gaps.record(g as f64);
        }
    }

    /// Folds `other` into `self` (worker-level reports into the sweep
    /// total).
    ///
    /// # Panics
    ///
    /// Panics if the histogram layouts differ.
    pub fn merge(&mut self, other: &SweepReport) {
        self.runs += other.runs;
        self.complete += other.complete;
        self.unsafe_runs += other.unsafe_runs;
        self.total_steps += other.total_steps;
        self.total_sends += other.total_sends;
        self.total_drops += other.total_drops;
        self.total_written += other.total_written;
        self.steps_to_complete.merge(&other.steps_to_complete);
        self.sends_per_item.merge(&other.sends_per_item);
        self.drop_counts.merge(&other.drop_counts);
        self.write_gaps.merge(&other.write_gaps);
    }

    /// Fraction of runs that completed, `0.0` when no runs were observed.
    pub fn completion_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.complete as f64 / self.runs as f64
        }
    }
}

impl Default for SweepReport {
    fn default() -> Self {
        SweepReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_core::alphabet::{RMsg, SMsg};
    use stp_core::data::{DataItem, DataSeq};
    use stp_core::event::ProcessId;

    fn sample() -> Trace {
        let mut t = Trace::new(DataSeq::from_indices([1, 0]));
        t.record(0, Event::SendS { msg: SMsg(1) });
        t.record(1, Event::DeliverToR { msg: SMsg(1) });
        t.record(
            1,
            Event::Write {
                item: DataItem(1),
                pos: 0,
            },
        );
        t.record(1, Event::SendR { msg: RMsg(1) });
        t.record(
            2,
            Event::ChannelDrop {
                to: ProcessId::Sender,
                msg: 0,
            },
        );
        t.record(3, Event::SendS { msg: SMsg(0) });
        t.record(5, Event::DeliverToR { msg: SMsg(0) });
        t.record(
            5,
            Event::Write {
                item: DataItem(0),
                pos: 1,
            },
        );
        t.set_steps(6);
        t
    }

    #[test]
    fn counts_are_extracted() {
        let s = RunStats::of(&sample());
        assert_eq!(s.steps, 6);
        assert_eq!(s.sends_s, 2);
        assert_eq!(s.sends_r, 1);
        assert_eq!(s.deliveries_r, 2);
        assert_eq!(s.deliveries_s, 0);
        assert_eq!(s.drops, 1);
        assert_eq!(s.written, 2);
        assert!(s.safe);
        assert!(s.is_complete());
    }

    #[test]
    fn cost_metrics() {
        let s = RunStats::of(&sample());
        assert_eq!(s.total_sends(), 3);
        assert_eq!(s.sends_per_item(), Some(1.5));
        assert_eq!(s.write_steps, vec![1, 5]);
        assert_eq!(s.inter_write_gaps(), vec![1, 4]);
        assert_eq!(s.max_gap(), Some(4));
    }

    #[test]
    fn empty_run_has_no_rate() {
        let t = Trace::new(DataSeq::from_indices([1]));
        let s = RunStats::of(&t);
        assert_eq!(s.sends_per_item(), None);
        assert_eq!(s.max_gap(), None);
        assert!(!s.is_complete());
    }

    #[test]
    fn unsafe_runs_are_flagged() {
        let mut t = Trace::new(DataSeq::from_indices([1]));
        t.record(
            0,
            Event::Write {
                item: DataItem(0),
                pos: 0,
            },
        );
        let s = RunStats::of(&t);
        assert!(!s.safe);
        assert!(!s.is_complete());
    }

    #[test]
    fn expiries_count_as_drops() {
        let mut t = sample();
        t.record(
            5,
            Event::ChannelExpire {
                to: ProcessId::Receiver,
                msg: 1,
            },
        );
        let s = RunStats::of(&t);
        assert_eq!(s.drops, 2, "ChannelDrop + ChannelExpire both count");
    }

    #[test]
    fn out_of_order_positions_are_unsafe() {
        let mut t = Trace::new(DataSeq::from_indices([1, 0]));
        t.record(
            0,
            Event::Write {
                item: DataItem(0),
                pos: 1,
            },
        );
        assert!(!RunStats::of(&t).safe);
    }

    #[test]
    fn probe_matches_trace_derived_stats() {
        let trace = sample();
        let mut p = MetricsProbe::new();
        p.on_run_start(trace.input());
        let mut last = 0;
        for e in trace.events() {
            while last < e.step {
                p.on_step_end(last);
                last += 1;
            }
            p.on_event(e.step, &e.event);
        }
        while last < trace.steps() {
            p.on_step_end(last);
            last += 1;
        }
        assert_eq!(p.stats(), RunStats::of(&trace));
    }

    #[test]
    fn probe_resets_cleanly_between_runs() {
        let input = DataSeq::from_indices([2]);
        let mut p = MetricsProbe::new();
        p.on_run_start(&input);
        p.on_event(0, &Event::SendS { msg: SMsg(2) });
        p.on_event(
            0,
            &Event::Write {
                item: DataItem(9),
                pos: 0,
            },
        );
        p.on_step_end(0);
        assert!(!p.stats().safe);
        p.on_run_start(&input);
        let s = p.stats();
        assert_eq!(s.steps, 0);
        assert_eq!(s.sends_s, 0);
        assert_eq!(s.written, 0);
        assert!(s.safe, "reset restores the safe flag");
        assert!(s.write_steps.is_empty());
    }

    #[test]
    fn histogram_buckets_and_summary() {
        let mut h = Histogram::linear(1.0, 1.0, 3); // edges 1, 2, 3
        for v in [0.5, 1.0, 1.5, 2.5, 10.0] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 10.0);
        assert!((h.mean() - 3.1).abs() < 1e-9);
        assert_eq!(h.quantile(0.2), 1.0);
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    fn empty_histogram_has_finite_summary() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.0);
        // No NaN anywhere: the serialized form must be valid JSON.
        let json = serde_json::to_string(&h).unwrap();
        assert!(!json.contains("NaN"));
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn histogram_merge_is_union() {
        let mut a = Histogram::linear(1.0, 1.0, 3);
        let mut b = Histogram::linear(1.0, 1.0, 3);
        a.record(0.5);
        b.record(7.0);
        let mut empty_then_b = Histogram::linear(1.0, 1.0, 3);
        empty_then_b.merge(&b);
        assert_eq!(empty_then_b.min, 7.0);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.min, 0.5);
        assert_eq!(a.max, 7.0);
        a.merge(&Histogram::linear(1.0, 1.0, 3)); // merging empty is a no-op
        assert_eq!(a.count, 2);
    }

    #[test]
    #[should_panic(expected = "layouts")]
    fn histogram_merge_rejects_mismatched_layouts() {
        let mut a = Histogram::linear(1.0, 1.0, 3);
        a.merge(&Histogram::linear(1.0, 2.0, 3));
    }

    #[test]
    fn single_bucket_histogram_quantiles_clamp_to_samples() {
        // One bound: everything below it in bucket 0, everything else in
        // overflow. Quantiles must stay inside [min, max] either way.
        let mut h = Histogram::new(vec![10.0]);
        h.record(3.0);
        assert_eq!(h.quantile(0.0), 3.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 3.0);
        h.record(7.0);
        // Bucket resolution: both samples share the one bucket, so any
        // quantile reports that bucket's edge clamped to the observed
        // range — never outside [min, max].
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert!((3.0..=7.0).contains(&h.quantile(q)), "q={q}");
        }
    }

    #[test]
    fn overflow_only_histogram_quantiles_stay_in_sample_range() {
        // Every sample lands past the last edge: the quantile walk ends
        // in the overflow bucket, whose "edge" is the recorded max.
        let mut h = Histogram::linear(1.0, 1.0, 4);
        h.record(100.0);
        h.record(250.0);
        h.record(9_000.0);
        assert_eq!(h.counts[4], 3, "all three in the overflow bucket");
        let p99 = h.quantile(0.99);
        assert!((100.0..=9_000.0).contains(&p99), "p99={p99}");
        assert_eq!(h.min, 100.0);
        assert_eq!(h.max, 9_000.0);
        assert!((h.mean() - (100.0 + 250.0 + 9_000.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_then_quantile_equals_quantile_of_concatenation() {
        // The mergeability contract the fleet aggregation leans on:
        // merging per-shard histograms then taking a percentile gives
        // exactly the percentile of recording every sample into one.
        let shard_a: Vec<f64> = vec![1.0, 2.0, 2.0, 5.0, 90.0];
        let shard_b: Vec<f64> = vec![0.0, 3.0, 3.0, 3.0, 7.0, 300.0];
        let mut a = Histogram::linear(1.0, 1.0, 16);
        let mut b = Histogram::linear(1.0, 1.0, 16);
        let mut all = Histogram::linear(1.0, 1.0, 16);
        for &v in &shard_a {
            a.record(v);
            all.record(v);
        }
        for &v in &shard_b {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all, "merge is exactly the concatenation");
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), all.quantile(q), "q={q}");
        }
        // And merging in the other order agrees too.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(other.quantile(0.99), all.quantile(0.99));
    }

    #[test]
    fn sweep_report_folds_runs_and_merges() {
        let stats = RunStats::of(&sample());
        let mut a = SweepReport::new();
        a.observe(&stats);
        assert_eq!(a.runs, 1);
        assert_eq!(a.complete, 1);
        assert_eq!(a.unsafe_runs, 0);
        assert_eq!(a.total_sends, 3);
        assert_eq!(a.total_drops, 1);
        assert_eq!(a.steps_to_complete.count, 1);
        assert_eq!(a.write_gaps.count, 2);
        assert!((a.completion_rate() - 1.0).abs() < 1e-9);

        let mut incomplete = stats.clone();
        incomplete.written = 1;
        incomplete.write_steps.truncate(1);
        let mut b = SweepReport::new();
        b.observe(&incomplete);
        assert_eq!(b.complete, 0);
        assert_eq!(b.steps_to_complete.count, 0);

        // merge(a, b) equals observing both runs in one report.
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = SweepReport::new();
        direct.observe(&stats);
        direct.observe(&incomplete);
        assert_eq!(merged, direct);
        assert_eq!(merged.runs, 2);
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let mut r = SweepReport::new();
        r.observe(&RunStats::of(&sample()));
        let json = serde_json::to_string(&r).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
