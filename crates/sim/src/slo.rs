//! Recovery-SLO measurement: how long a protocol takes to make progress
//! again after a mid-run fault campaign strikes.
//!
//! The paper's Definition 2 calls a protocol *bounded* when there is a
//! function `f` such that, from any point of any run extended by any
//! adversary, the receiver learns item `i` within `f(i)` further steps —
//! crucially, `f` may depend on `i` but **not** on the input sequence.
//! A *weakly bounded* protocol only guarantees recovery within
//! `f(i, |X|)`. This module turns that distinction into a measurement:
//! inject the same fault right after item `i` is written (via a
//! [`Trigger::OnWrite`] campaign clause), then count the steps until the
//! next write and until completion. Sweeping the input length while
//! holding `i` fixed produces a *recovery envelope*; bounded protocols
//! have flat envelopes, weakly bounded ones grow with the input.

use crate::world::World;
use serde::{Deserialize, Serialize};
use stp_channel::campaign::{
    CampaignScheduler, Direction, FaultAction, FaultClause, FaultPlan, Trigger,
};
use stp_channel::{Channel, ChannelSpec, Scheduler, SchedulerSpec};
use stp_core::data::DataSeq;
use stp_core::event::Step;
use stp_core::proto::{Receiver, Sender};
use stp_protocols::ProtocolFamily;

/// How a recovery probe strikes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloConfig {
    /// The fault injected at each probe point.
    pub action: FaultAction,
    /// How many consecutive steps the fault stays active.
    pub duration: Step,
    /// Which channel direction is struck.
    pub direction: Direction,
    /// Seed for the campaign's randomized choices.
    pub seed: u64,
    /// Step budget per probe run.
    pub max_steps: Step,
}

impl SloConfig {
    /// A deletion burst wiping every in-flight copy for `duration` steps —
    /// the harshest strike a deleting channel admits.
    pub fn wipeout(duration: Step, max_steps: Step) -> Self {
        SloConfig {
            action: FaultAction::DeletionBurst { copies: usize::MAX },
            duration,
            direction: Direction::Both,
            seed: 0,
            max_steps,
        }
    }

    /// A silence window (delivery suppression) — the strike that trips a
    /// timed channel's deadline and forces the Section-5 hybrid into its
    /// recovery phase.
    pub fn silence(duration: Step, max_steps: Step) -> Self {
        SloConfig {
            action: FaultAction::SilenceWindow,
            duration,
            direction: Direction::Both,
            seed: 0,
            max_steps,
        }
    }
}

/// The measured recovery behaviour after one fault at one probe point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryProbe {
    /// Index `i` of the item whose write triggered the fault.
    pub index: usize,
    /// Step at which the fault clause fired.
    pub fault_step: Step,
    /// Steps from the fault until the receiver's next write, if it ever
    /// wrote again within the budget.
    pub steps_to_next_write: Option<Step>,
    /// Steps from the fault until the whole input was written, if the run
    /// completed within the budget.
    pub steps_to_completion: Option<Step>,
}

/// The recovery envelope of one protocol on one input: probes for every
/// index that could be struck.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryEnvelope {
    /// Protocol family name.
    pub protocol: String,
    /// Input length.
    pub input_len: usize,
    /// One probe per struck index, in index order.
    pub probes: Vec<RecoveryProbe>,
}

impl RecoveryEnvelope {
    /// Largest observed steps-to-next-write, the envelope's height.
    /// `None` when no probe recovered.
    pub fn max_next_write(&self) -> Option<Step> {
        self.probes
            .iter()
            .filter_map(|p| p.steps_to_next_write)
            .max()
    }

    /// Whether every probe recovered within the budget — to the next
    /// write, or (for the final index, which has no next write) to
    /// completion.
    pub fn fully_recovered(&self) -> bool {
        !self.probes.is_empty()
            && self
                .probes
                .iter()
                .all(|p| p.steps_to_next_write.is_some() || p.steps_to_completion.is_some())
    }
}

/// Measures one probe: runs `family` on `input` with `cfg`'s fault fired
/// right after item `index` is written, returning `None` if the run never
/// reached the probe point.
pub fn probe_recovery(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: &ChannelSpec,
    inner: &SchedulerSpec,
    cfg: &SloConfig,
    index: usize,
) -> Option<RecoveryProbe> {
    let clause = FaultClause::new(cfg.action.clone(), Trigger::OnWrite { index })
        .direction(cfg.direction)
        .lasting(cfg.duration);
    let probe_seed = cfg.seed.wrapping_add(index as u64);
    let plan = FaultPlan::single(probe_seed, clause);
    let trace = run_with_plan(
        family,
        input,
        channel.build(),
        inner.build(probe_seed),
        &plan,
        cfg.max_steps,
    );
    let writes = trace.write_steps();
    if writes.len() <= index {
        return None;
    }
    // OnWrite{index} fires at the first decision after the write of item
    // `index` lands, i.e. at step write_steps[index] + 1 (progress is
    // reported to the scheduler at the top of each step).
    let fault_step = writes[index] + 1;
    let steps_to_next_write = writes.get(index + 1).map(|&s| s.saturating_sub(fault_step));
    let steps_to_completion = if writes.len() >= input.len() {
        writes.last().map(|&s| s.saturating_sub(fault_step))
    } else {
        None
    };
    Some(RecoveryProbe {
        index,
        fault_step,
        steps_to_next_write,
        steps_to_completion,
    })
}

/// Measures the full envelope: one probe per index `0..input.len()`.
pub fn recovery_envelope(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: &ChannelSpec,
    inner: &SchedulerSpec,
    cfg: &SloConfig,
) -> RecoveryEnvelope {
    let probes = (0..input.len())
        .filter_map(|i| probe_recovery(family, input, channel, inner, cfg, i))
        .collect();
    RecoveryEnvelope {
        protocol: family.name().to_string(),
        input_len: input.len(),
        probes,
    }
}

/// [`recovery_envelope`] with live progress: each probe run (one full
/// fault-injected execution) ticks the meter, which matters because SLO
/// envelopes are the slowest harness in the workspace — E11 runs
/// hundreds of probes back to back.
pub fn recovery_envelope_observed(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: &ChannelSpec,
    inner: &SchedulerSpec,
    cfg: &SloConfig,
    meter: &crate::telemetry::ProgressMeter,
) -> RecoveryEnvelope {
    meter.begin(input.len());
    meter.worker_started();
    let probes = (0..input.len())
        .filter_map(|i| {
            let p = probe_recovery(family, input, channel, inner, cfg, i);
            meter.record_done(1);
            p
        })
        .collect();
    meter.worker_finished();
    meter.finish();
    RecoveryEnvelope {
        protocol: family.name().to_string(),
        input_len: input.len(),
        probes,
    }
}

/// Runs `family` on `input` under `plan` compiled over a fresh inner
/// scheduler, for at most `max_steps` steps or until completion.
pub fn run_with_plan(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: Box<dyn Channel>,
    inner: Box<dyn Scheduler>,
    plan: &FaultPlan,
    max_steps: Step,
) -> stp_core::event::Trace {
    run_campaign(
        input,
        family.sender_for(input),
        family.receiver(),
        channel,
        inner,
        plan,
        max_steps,
    )
}

/// Runs an explicit protocol pair under `plan`, for at most `max_steps`
/// steps or until completion.
pub fn run_campaign(
    input: &DataSeq,
    sender: Box<dyn Sender>,
    receiver: Box<dyn Receiver>,
    channel: Box<dyn Channel>,
    inner: Box<dyn Scheduler>,
    plan: &FaultPlan,
    max_steps: Step,
) -> stp_core::event::Trace {
    let scheduler = CampaignScheduler::new(inner, plan.clone());
    let mut world = World::builder(input.clone())
        .sender(sender)
        .receiver(receiver)
        .channel(channel)
        .scheduler(Box::new(scheduler))
        .build()
        .expect("all components supplied");
    world.run_until(max_steps, World::is_complete);
    world.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_protocols::{HybridFamily, ResendPolicy, TightFamily};

    fn seq(n: u16) -> DataSeq {
        DataSeq::from_indices(0..n)
    }

    #[test]
    fn tight_del_recovers_from_a_wipeout() {
        let fam = TightFamily::new(8, ResendPolicy::EveryTick);
        let input = seq(6);
        let cfg = SloConfig::wipeout(3, 20_000);
        let env = recovery_envelope(&fam, &input, &ChannelSpec::Del, &SchedulerSpec::Eager, &cfg);
        assert_eq!(env.probes.len(), 6);
        assert!(env.fully_recovered(), "probes: {:?}", env.probes);
    }

    #[test]
    fn probe_records_a_plausible_fault_step() {
        let fam = TightFamily::new(4, ResendPolicy::EveryTick);
        let input = seq(3);
        let cfg = SloConfig::wipeout(2, 5_000);
        let p = probe_recovery(
            &fam,
            &input,
            &ChannelSpec::Del,
            &SchedulerSpec::Eager,
            &cfg,
            1,
        )
        .expect("item 1 is written");
        assert_eq!(p.index, 1);
        assert!(p.fault_step >= 1);
        assert!(p.steps_to_next_write.unwrap() >= 1, "the fault costs time");
    }

    #[test]
    fn hybrid_envelope_grows_with_input_while_tight_stays_flat() {
        // The separation the module exists to exhibit: strike right after
        // item 0, sweep the input length. The tight protocol's recovery
        // depends only on the index struck; the hybrid re-sends the whole
        // remaining sequence, so its recovery grows with the input.
        let cfg = SloConfig::silence(8, 50_000);
        let probe_first = |n: u16| -> (Step, Step) {
            let input = seq(n);
            let tight = TightFamily::new(32, ResendPolicy::EveryTick);
            let t = probe_recovery(
                &tight,
                &input,
                &ChannelSpec::Del,
                &SchedulerSpec::Eager,
                &cfg,
                0,
            )
            .expect("tight writes item 0");
            let hybrid = HybridFamily::new(32, 4, n as usize);
            let h = probe_recovery(
                &hybrid,
                &input,
                &ChannelSpec::Timed { deadline: 4 },
                &SchedulerSpec::Eager,
                &cfg,
                0,
            )
            .expect("hybrid writes item 0");
            (
                t.steps_to_next_write.expect("tight recovers"),
                h.steps_to_next_write.expect("hybrid recovers"),
            )
        };
        let (t_small, h_small) = probe_first(4);
        let (t_big, h_big) = probe_first(16);
        assert!(
            t_big <= t_small + 2,
            "tight recovery must not grow with input: {t_small} -> {t_big}"
        );
        assert!(
            h_big > h_small,
            "hybrid recovery should grow with input: {h_small} -> {h_big}"
        );
        assert!(
            h_big > t_big,
            "hybrid should recover slower than tight at the same size"
        );
    }
}
