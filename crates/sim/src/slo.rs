//! Recovery-SLO measurement: how long a protocol takes to make progress
//! again after a mid-run fault campaign strikes.
//!
//! The paper's Definition 2 calls a protocol *bounded* when there is a
//! function `f` such that, from any point of any run extended by any
//! adversary, the receiver learns item `i` within `f(i)` further steps —
//! crucially, `f` may depend on `i` but **not** on the input sequence.
//! A *weakly bounded* protocol only guarantees recovery within
//! `f(i, |X|)`. This module turns that distinction into a measurement:
//! inject the same fault right after item `i` is written (via a
//! [`Trigger::OnWrite`] campaign clause), then count the steps until the
//! next write and until completion. Sweeping the input length while
//! holding `i` fixed produces a *recovery envelope*; bounded protocols
//! have flat envelopes, weakly bounded ones grow with the input.

use crate::world::World;
use serde::{Deserialize, Serialize};
use stp_channel::campaign::{
    CampaignScheduler, Direction, FaultAction, FaultClause, FaultPlan, Trigger,
};
use stp_channel::{Channel, ChannelSpec, Scheduler, SchedulerSpec};
use stp_core::data::DataSeq;
use stp_core::event::{Event, Step, Trace};
use stp_core::proto::{Receiver, Sender};
use stp_protocols::ProtocolFamily;

/// How a recovery probe strikes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloConfig {
    /// The fault injected at each probe point.
    pub action: FaultAction,
    /// How many consecutive steps the fault stays active.
    pub duration: Step,
    /// Which channel direction is struck.
    pub direction: Direction,
    /// Seed for the campaign's randomized choices.
    pub seed: u64,
    /// Step budget per probe run.
    pub max_steps: Step,
}

impl SloConfig {
    /// A deletion burst wiping every in-flight copy for `duration` steps —
    /// the harshest strike a deleting channel admits.
    pub fn wipeout(duration: Step, max_steps: Step) -> Self {
        SloConfig {
            action: FaultAction::DeletionBurst { copies: usize::MAX },
            duration,
            direction: Direction::Both,
            seed: 0,
            max_steps,
        }
    }

    /// A silence window (delivery suppression) — the strike that trips a
    /// timed channel's deadline and forces the Section-5 hybrid into its
    /// recovery phase.
    pub fn silence(duration: Step, max_steps: Step) -> Self {
        SloConfig {
            action: FaultAction::SilenceWindow,
            duration,
            direction: Direction::Both,
            seed: 0,
            max_steps,
        }
    }

    /// A single-step transient state-corruption strike — one of the
    /// corruption [`FaultAction`]s, aimed at the processor(s) selected by
    /// `direction`. The workhorse config for stabilization envelopes
    /// (experiment E12).
    pub fn corruption(action: FaultAction, direction: Direction, max_steps: Step) -> Self {
        SloConfig {
            action,
            duration: 1,
            direction,
            seed: 0,
            max_steps,
        }
    }
}

/// The measured recovery behaviour after one fault at one probe point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryProbe {
    /// Index `i` of the item whose write triggered the fault.
    pub index: usize,
    /// Step at which the fault clause fired.
    pub fault_step: Step,
    /// Steps from the fault until the receiver's next write, if it ever
    /// wrote again within the budget.
    pub steps_to_next_write: Option<Step>,
    /// Steps from the fault until the whole input was written, if the run
    /// completed within the budget.
    pub steps_to_completion: Option<Step>,
}

/// The recovery envelope of one protocol on one input: probes for every
/// index that could be struck.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryEnvelope {
    /// Protocol family name.
    pub protocol: String,
    /// Input length.
    pub input_len: usize,
    /// One probe per struck index, in index order.
    pub probes: Vec<RecoveryProbe>,
}

impl RecoveryEnvelope {
    /// Largest observed steps-to-next-write, the envelope's height.
    /// `None` when no probe recovered.
    pub fn max_next_write(&self) -> Option<Step> {
        self.probes
            .iter()
            .filter_map(|p| p.steps_to_next_write)
            .max()
    }

    /// Whether every probe recovered within the budget — to the next
    /// write, or (for the final index, which has no next write) to
    /// completion.
    pub fn fully_recovered(&self) -> bool {
        !self.probes.is_empty()
            && self
                .probes
                .iter()
                .all(|p| p.steps_to_next_write.is_some() || p.steps_to_completion.is_some())
    }
}

/// Measures one probe: runs `family` on `input` with `cfg`'s fault fired
/// right after item `index` is written, returning `None` if the run never
/// reached the probe point.
pub fn probe_recovery(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: &ChannelSpec,
    inner: &SchedulerSpec,
    cfg: &SloConfig,
    index: usize,
) -> Option<RecoveryProbe> {
    let clause = FaultClause::new(cfg.action.clone(), Trigger::OnWrite { index })
        .direction(cfg.direction)
        .lasting(cfg.duration);
    let probe_seed = cfg.seed.wrapping_add(index as u64);
    let plan = FaultPlan::single(probe_seed, clause);
    let trace = run_with_plan(
        family,
        input,
        channel.build(),
        inner.build(probe_seed),
        &plan,
        cfg.max_steps,
    );
    let writes = trace.write_steps();
    if writes.len() <= index {
        return None;
    }
    // OnWrite{index} fires at the first decision after the write of item
    // `index` lands, i.e. at step write_steps[index] + 1 (progress is
    // reported to the scheduler at the top of each step).
    let fault_step = writes[index] + 1;
    let steps_to_next_write = writes.get(index + 1).map(|&s| s.saturating_sub(fault_step));
    let steps_to_completion = if writes.len() >= input.len() {
        writes.last().map(|&s| s.saturating_sub(fault_step))
    } else {
        None
    };
    Some(RecoveryProbe {
        index,
        fault_step,
        steps_to_next_write,
        steps_to_completion,
    })
}

/// Measures the full envelope: one probe per index `0..input.len()`.
pub fn recovery_envelope(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: &ChannelSpec,
    inner: &SchedulerSpec,
    cfg: &SloConfig,
) -> RecoveryEnvelope {
    let probes = (0..input.len())
        .filter_map(|i| probe_recovery(family, input, channel, inner, cfg, i))
        .collect();
    RecoveryEnvelope {
        protocol: family.name().to_string(),
        input_len: input.len(),
        probes,
    }
}

/// [`recovery_envelope`] with live progress: each probe run (one full
/// fault-injected execution) ticks the meter, which matters because SLO
/// envelopes are the slowest harness in the workspace — E11 runs
/// hundreds of probes back to back.
pub fn recovery_envelope_observed(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: &ChannelSpec,
    inner: &SchedulerSpec,
    cfg: &SloConfig,
    meter: &crate::telemetry::ProgressMeter,
) -> RecoveryEnvelope {
    meter.begin(input.len());
    meter.worker_started();
    let probes = (0..input.len())
        .filter_map(|i| {
            let p = probe_recovery(family, input, channel, inner, cfg, i);
            meter.record_done(1);
            p
        })
        .collect();
    meter.worker_finished();
    meter.finish();
    RecoveryEnvelope {
        protocol: family.name().to_string(),
        input_len: input.len(),
        probes,
    }
}

/// The step at which the **last** corruption command took effect in
/// `trace`, or `None` if no corruption event was recorded. This is the
/// point `c` from which stabilization is measured: a self-stabilizing
/// protocol must reconverge within a bounded number of steps after the
/// transient faults stop.
pub fn last_corruption_step(trace: &Trace) -> Option<Step> {
    trace
        .events()
        .iter()
        .filter(|e| matches!(e.event, Event::Corruption { .. }))
        .map(|e| e.step)
        .next_back()
}

/// The stabilization point of `trace`: the earliest step `T` such that
/// the writes at steps `>= T` are **exactly** `x[p..n)` for some `p` — an
/// in-order run of input items ending at the input's end. Returns `None`
/// when no such step exists (the run stalled short of the final item, or
/// its tail contains corrupted values).
///
/// The output tape is append-only, so transient corruption can leave
/// garbage or duplicates permanently on the tape; what a self-stabilizing
/// protocol guarantees (DESIGN.md §13) is that the tape's *tail* becomes a
/// clean in-order suffix of the input, reaching the input's end. For an
/// uncorrupted run this degenerates to the step of the first write
/// (`p = 0`). For an empty input any write-free run stabilizes at step 0.
pub fn stabilization_point(trace: &Trace) -> Option<Step> {
    let input = trace.input().items().to_vec();
    let n = input.len();
    let writes: Vec<(Step, stp_core::data::DataItem)> = trace
        .events()
        .iter()
        .filter_map(|e| match e.event {
            Event::Write { item, .. } => Some((e.step, item)),
            _ => None,
        })
        .collect();
    if n == 0 {
        // Nothing to transmit: stabilized once (garbage) writes stop.
        return Some(writes.last().map_or(0, |w| w.0 + 1));
    }
    let w = writes.len();
    // Longest trailing run of writes equal to a suffix of the input that
    // ends at the input's end.
    let mut k = 0usize;
    while k < w && k < n && writes[w - 1 - k].1 == input[n - 1 - k] {
        k += 1;
    }
    if k == 0 {
        return None;
    }
    Some(writes[w - k].0)
}

/// The measured outcome of one corruption strike at one probe point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StabilizationProbe {
    /// Index `i` of the item whose write triggered the corruption.
    pub index: usize,
    /// Step of the last corruption command that took effect.
    pub fault_end: Step,
    /// How many corruption commands took effect.
    pub corruption_events: usize,
    /// The stabilization point `T` (see [`stabilization_point`]), if the
    /// run's write tail reconverged to a clean input suffix within the
    /// budget.
    pub stabilized_at: Option<Step>,
    /// `stabilized_at - fault_end`, saturating at zero when the tail was
    /// already clean before the strike ended.
    pub steps_to_stabilize: Option<Step>,
}

/// The stabilization envelope of one protocol on one input: one corruption
/// strike per index, mirroring [`RecoveryEnvelope`] for transient state
/// corruption instead of channel faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StabilizationEnvelope {
    /// Protocol family name.
    pub protocol: String,
    /// Input length.
    pub input_len: usize,
    /// One probe per struck index, in index order.
    pub probes: Vec<StabilizationProbe>,
}

impl StabilizationEnvelope {
    /// Largest observed steps-to-stabilize — the envelope's height, and
    /// the empirical stabilization bound a certificate claims. `None`
    /// when no probe stabilized.
    pub fn max_steps_to_stabilize(&self) -> Option<Step> {
        self.probes
            .iter()
            .filter_map(|p| p.steps_to_stabilize)
            .max()
    }

    /// Whether every probe reconverged within the budget. A protocol
    /// whose envelope is not fully stabilized is flagged *divergent*
    /// under this corruption plan.
    pub fn fully_stabilized(&self) -> bool {
        !self.probes.is_empty() && self.probes.iter().all(|p| p.stabilized_at.is_some())
    }
}

/// Measures one stabilization probe: runs `family` on `input` with
/// `cfg`'s corruption fired right after item `index` is written. Returns
/// `None` if the run never reached the probe point or no corruption
/// command took effect (e.g. the hook found nothing to perturb).
pub fn probe_stabilization(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: &ChannelSpec,
    inner: &SchedulerSpec,
    cfg: &SloConfig,
    index: usize,
) -> Option<StabilizationProbe> {
    let clause = FaultClause::new(cfg.action.clone(), Trigger::OnWrite { index })
        .direction(cfg.direction)
        .lasting(cfg.duration);
    let probe_seed = cfg.seed.wrapping_add(index as u64);
    let plan = FaultPlan::single(probe_seed, clause);
    let trace = run_with_plan(
        family,
        input,
        channel.build(),
        inner.build(probe_seed),
        &plan,
        cfg.max_steps,
    );
    let fault_end = last_corruption_step(&trace)?;
    let corruption_events = trace
        .events()
        .iter()
        .filter(|e| matches!(e.event, Event::Corruption { .. }))
        .count();
    // A tail that began before the strike still counts: it means the
    // corruption left the clean suffix intact (otherwise the tail match
    // would have broken), so the protocol stabilized instantly.
    let stabilized_at = stabilization_point(&trace);
    Some(StabilizationProbe {
        index,
        fault_end,
        corruption_events,
        steps_to_stabilize: stabilized_at.map(|t| t.saturating_sub(fault_end)),
        stabilized_at,
    })
}

/// Measures the full stabilization envelope: one corruption strike per
/// index `0..input.len()`.
pub fn stabilization_envelope(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: &ChannelSpec,
    inner: &SchedulerSpec,
    cfg: &SloConfig,
) -> StabilizationEnvelope {
    let probes = (0..input.len())
        .filter_map(|i| probe_stabilization(family, input, channel, inner, cfg, i))
        .collect();
    StabilizationEnvelope {
        protocol: family.name().to_string(),
        input_len: input.len(),
        probes,
    }
}

/// Runs `family` on `input` under `plan` compiled over a fresh inner
/// scheduler, for at most `max_steps` steps or until completion.
pub fn run_with_plan(
    family: &dyn ProtocolFamily,
    input: &DataSeq,
    channel: Box<dyn Channel>,
    inner: Box<dyn Scheduler>,
    plan: &FaultPlan,
    max_steps: Step,
) -> stp_core::event::Trace {
    run_campaign(
        input,
        family.sender_for(input),
        family.receiver(),
        channel,
        inner,
        plan,
        max_steps,
    )
}

/// Runs an explicit protocol pair under `plan`, for at most `max_steps`
/// steps or until completion.
pub fn run_campaign(
    input: &DataSeq,
    sender: Box<dyn Sender>,
    receiver: Box<dyn Receiver>,
    channel: Box<dyn Channel>,
    inner: Box<dyn Scheduler>,
    plan: &FaultPlan,
    max_steps: Step,
) -> stp_core::event::Trace {
    let scheduler = CampaignScheduler::new(inner, plan.clone());
    let mut world = World::builder(input.clone())
        .sender(sender)
        .receiver(receiver)
        .channel(channel)
        .scheduler(Box::new(scheduler))
        .build()
        .expect("all components supplied");
    world.run_until(max_steps, World::is_complete);
    world.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_protocols::{HybridFamily, ResendPolicy, StabilizingFamily, TightFamily};

    fn seq(n: u16) -> DataSeq {
        DataSeq::from_indices(0..n)
    }

    #[test]
    fn stabilization_point_of_a_clean_run_is_its_first_write() {
        let fam = TightFamily::new(8, ResendPolicy::EveryTick);
        let input = seq(4);
        let trace = run_with_plan(
            &fam,
            &input,
            ChannelSpec::Dup.build(),
            SchedulerSpec::Eager.build(0),
            &FaultPlan::new(0),
            5_000,
        );
        let writes = trace.write_steps();
        assert_eq!(writes.len(), 4);
        assert_eq!(stabilization_point(&trace), Some(writes[0]));
        assert_eq!(last_corruption_step(&trace), None);
    }

    #[test]
    fn stabilizing_family_reconverges_from_receiver_scrambles() {
        let fam = StabilizingFamily::new(4, 6);
        let input = seq(4);
        // Seed chosen so no scramble draw lands the receiver counter on
        // exactly `n` — the documented blind spot where corruption is
        // indistinguishable from genuine completion (DESIGN.md §13).
        let mut cfg =
            SloConfig::corruption(FaultAction::StateScramble, Direction::ToReceiver, 50_000);
        cfg.seed = 22;
        let env =
            stabilization_envelope(&fam, &input, &ChannelSpec::Del, &SchedulerSpec::Eager, &cfg);
        assert!(!env.probes.is_empty(), "some strikes must land");
        assert!(env.fully_stabilized(), "probes: {:?}", env.probes);
        let bound = env.max_steps_to_stabilize().unwrap();
        assert!(bound < 50_000);
    }

    #[test]
    fn tight_sender_desync_is_flagged_divergent() {
        // CounterDesync clears the tight sender's outstanding item: the
        // handshake deadlocks mid-transfer, the final item is never
        // written, and no clean input suffix ever forms.
        let fam = TightFamily::new(8, ResendPolicy::EveryTick);
        let input = seq(5);
        let cfg = SloConfig::corruption(FaultAction::CounterDesync, Direction::ToSender, 5_000);
        let p = probe_stabilization(
            &fam,
            &input,
            &ChannelSpec::Del,
            &SchedulerSpec::Eager,
            &cfg,
            1,
        )
        .expect("the strike lands after item 1");
        assert_eq!(p.stabilized_at, None, "probe: {p:?}");
    }

    #[test]
    fn tight_del_recovers_from_a_wipeout() {
        let fam = TightFamily::new(8, ResendPolicy::EveryTick);
        let input = seq(6);
        let cfg = SloConfig::wipeout(3, 20_000);
        let env = recovery_envelope(&fam, &input, &ChannelSpec::Del, &SchedulerSpec::Eager, &cfg);
        assert_eq!(env.probes.len(), 6);
        assert!(env.fully_recovered(), "probes: {:?}", env.probes);
    }

    #[test]
    fn probe_records_a_plausible_fault_step() {
        let fam = TightFamily::new(4, ResendPolicy::EveryTick);
        let input = seq(3);
        let cfg = SloConfig::wipeout(2, 5_000);
        let p = probe_recovery(
            &fam,
            &input,
            &ChannelSpec::Del,
            &SchedulerSpec::Eager,
            &cfg,
            1,
        )
        .expect("item 1 is written");
        assert_eq!(p.index, 1);
        assert!(p.fault_step >= 1);
        assert!(p.steps_to_next_write.unwrap() >= 1, "the fault costs time");
    }

    #[test]
    fn hybrid_envelope_grows_with_input_while_tight_stays_flat() {
        // The separation the module exists to exhibit: strike right after
        // item 0, sweep the input length. The tight protocol's recovery
        // depends only on the index struck; the hybrid re-sends the whole
        // remaining sequence, so its recovery grows with the input.
        let cfg = SloConfig::silence(8, 50_000);
        let probe_first = |n: u16| -> (Step, Step) {
            let input = seq(n);
            let tight = TightFamily::new(32, ResendPolicy::EveryTick);
            let t = probe_recovery(
                &tight,
                &input,
                &ChannelSpec::Del,
                &SchedulerSpec::Eager,
                &cfg,
                0,
            )
            .expect("tight writes item 0");
            let hybrid = HybridFamily::new(32, 4, n as usize);
            let h = probe_recovery(
                &hybrid,
                &input,
                &ChannelSpec::Timed { deadline: 4 },
                &SchedulerSpec::Eager,
                &cfg,
                0,
            )
            .expect("hybrid writes item 0");
            (
                t.steps_to_next_write.expect("tight recovers"),
                h.steps_to_next_write.expect("hybrid recovers"),
            )
        };
        let (t_small, h_small) = probe_first(4);
        let (t_big, h_big) = probe_first(16);
        assert!(
            t_big <= t_small + 2,
            "tight recovery must not grow with input: {t_small} -> {t_big}"
        );
        assert!(
            h_big > h_small,
            "hybrid recovery should grow with input: {h_small} -> {h_big}"
        );
        assert!(
            h_big > t_big,
            "hybrid should recover slower than tight at the same size"
        );
    }
}
