//! The lock-step world executor.

use stp_channel::{Channel, DelChannel, DupChannel, EagerScheduler, Scheduler};
use stp_core::data::DataSeq;
use stp_core::event::{Event, ProcessId, Step, Trace};
use stp_core::proto::{Receiver, ReceiverEvent, Sender, SenderEvent};
use stp_core::require;
use stp_protocols::{ResendPolicy, TightReceiver, TightSender};

/// A complete simulated system: two processors, a channel, an adversary,
/// and the trace being recorded.
#[derive(Debug)]
pub struct World {
    sender: Box<dyn Sender>,
    receiver: Box<dyn Receiver>,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    trace: Trace,
    step: Step,
    written: usize,
    reads_seen: usize,
}

impl World {
    /// Assembles a world from its parts.
    pub fn new(
        input: DataSeq,
        sender: Box<dyn Sender>,
        receiver: Box<dyn Receiver>,
        channel: Box<dyn Channel>,
        scheduler: Box<dyn Scheduler>,
    ) -> Self {
        World {
            sender,
            receiver,
            channel,
            scheduler,
            trace: Trace::new(input),
            step: 0,
            written: 0,
            reads_seen: 0,
        }
    }

    /// Convenience: the paper's tight protocol on `input` over a
    /// duplicating channel with an eager scheduler.
    pub fn tight_dup(input: DataSeq, d: u16) -> Self {
        World::new(
            input.clone(),
            Box::new(TightSender::new(input, d, ResendPolicy::Once)),
            Box::new(TightReceiver::new(d, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(EagerScheduler::new()),
        )
    }

    /// Convenience: the tight protocol (retransmitting variant) on `input`
    /// over a deleting channel with an eager scheduler.
    pub fn tight_del(input: DataSeq, d: u16) -> Self {
        World::new(
            input.clone(),
            Box::new(TightSender::new(input, d, ResendPolicy::EveryTick)),
            Box::new(TightReceiver::new(d, ResendPolicy::EveryTick)),
            Box::new(DelChannel::new()),
            Box::new(EagerScheduler::new()),
        )
    }

    /// The current global step (number of steps executed so far).
    pub fn step_count(&self) -> Step {
        self.step
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The channel, for inspection.
    pub fn channel(&self) -> &dyn Channel {
        &*self.channel
    }

    /// The sender, for inspection.
    pub fn sender(&self) -> &dyn Sender {
        &*self.sender
    }

    /// The receiver, for inspection.
    pub fn receiver(&self) -> &dyn Receiver {
        &*self.receiver
    }

    /// Number of items written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Clones the live parts of the system — `(sender, receiver, channel,
    /// written)` — so an analysis (e.g. the boundedness prober in
    /// `stp-verify`) can explore hypothetical extensions of this exact
    /// point without disturbing the run.
    #[allow(clippy::type_complexity)]
    pub fn fork_parts(&self) -> (Box<dyn Sender>, Box<dyn Receiver>, Box<dyn Channel>, usize) {
        (
            self.sender.box_clone(),
            self.receiver.box_clone(),
            self.channel.box_clone(),
            self.written,
        )
    }

    /// Whether the sender reports completion and the output covers the
    /// whole input.
    pub fn is_complete(&self) -> bool {
        self.sender.is_done() && self.written >= self.trace.input().len()
    }

    /// Executes one global step.
    pub fn step(&mut self) {
        let t = self.step;
        self.scheduler.note_progress(t, self.written);
        let decision = self.scheduler.decide(t, &*self.channel);

        // Adversarial deletions first (they model in-transit loss).
        for msg in &decision.delete_to_r {
            if self.channel.delete_to_r(*msg).is_ok() {
                self.trace.record(
                    t,
                    Event::ChannelDrop {
                        to: ProcessId::Receiver,
                        msg: msg.0,
                    },
                );
            }
        }
        for msg in &decision.delete_to_s {
            if self.channel.delete_to_s(*msg).is_ok() {
                self.trace.record(
                    t,
                    Event::ChannelDrop {
                        to: ProcessId::Sender,
                        msg: msg.0,
                    },
                );
            }
        }

        // Deliveries (against the post-deletion state; infeasible choices
        // are ignored, which keeps adversaries honest without crashing).
        let delivered_to_s = decision
            .deliver_to_s
            .filter(|m| self.channel.deliver_to_s(*m).is_ok());
        if let Some(m) = delivered_to_s {
            self.trace.record(t, Event::DeliverToS { msg: m });
        }
        let delivered_to_r = decision
            .deliver_to_r
            .filter(|m| self.channel.deliver_to_r(*m).is_ok());
        if let Some(m) = delivered_to_r {
            self.trace.record(t, Event::DeliverToR { msg: m });
        }

        // Processor steps.
        let s_event = if t == 0 {
            SenderEvent::Init
        } else {
            match delivered_to_s {
                Some(m) => SenderEvent::Deliver(m),
                None => SenderEvent::Tick,
            }
        };
        let r_event = if t == 0 {
            ReceiverEvent::Init
        } else {
            match delivered_to_r {
                Some(m) => ReceiverEvent::Deliver(m),
                None => ReceiverEvent::Tick,
            }
        };
        let s_out = self.sender.on_event(s_event);
        let r_out = self.receiver.on_event(r_event);

        // Record tape reads the sender performed during this step.
        let reads_now = self.sender.reads();
        for pos in self.reads_seen..reads_now {
            if let Some(item) = self.trace.input().get(pos) {
                self.trace.record(t, Event::Read { item, pos });
            }
        }
        self.reads_seen = reads_now;

        // Apply outputs after deliveries: sends become deliverable next
        // step at the earliest.
        for item in r_out.write {
            self.trace.record(
                t,
                Event::Write {
                    item,
                    pos: self.written,
                },
            );
            self.written += 1;
        }
        for m in s_out.send {
            self.channel.send_s(m);
            self.trace.record(t, Event::SendS { msg: m });
        }
        for m in r_out.send {
            self.channel.send_r(m);
            self.trace.record(t, Event::SendR { msg: m });
        }

        // Channel clock (timed channels expire messages here).
        self.channel.tick();

        self.step += 1;
        self.trace.set_steps(self.step);
    }

    /// Runs exactly `steps` global steps and returns the trace.
    pub fn run(&mut self, steps: Step) -> &Trace {
        for _ in 0..steps {
            self.step();
        }
        &self.trace
    }

    /// Runs until [`World::is_complete`] or `max_steps`, whichever first.
    ///
    /// # Errors
    ///
    /// Returns the safety/liveness error if the run ended incomplete or
    /// unsafe (see [`require::check_complete`]).
    pub fn run_to_completion(&mut self, max_steps: Step) -> stp_core::Result<Trace> {
        while self.step < max_steps && !self.is_complete() {
            self.step();
        }
        require::check_complete(&self.trace)?;
        Ok(self.trace.clone())
    }

    /// Runs until `cond` holds or `max_steps` elapsed; reports whether the
    /// condition was reached.
    pub fn run_until<F: FnMut(&World) -> bool>(&mut self, max_steps: Step, mut cond: F) -> bool {
        while self.step < max_steps {
            if cond(self) {
                return true;
            }
            self.step();
        }
        cond(self)
    }

    /// Consumes the world and returns the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DropHeavyScheduler, DupStormScheduler, RandomScheduler, ReorderScheduler};
    use stp_core::require::{check_complete, check_safety};

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    #[test]
    fn tight_dup_delivers_under_eager_scheduler() {
        let input = seq(&[2, 0, 1]);
        let mut w = World::tight_dup(input.clone(), 3);
        let trace = w.run_to_completion(1_000).unwrap();
        assert_eq!(trace.output(), input);
        check_complete(&trace).unwrap();
    }

    #[test]
    fn tight_dup_survives_duplication_storms() {
        let input = seq(&[3, 1, 4, 0, 2]);
        for storm_seed in 0..20 {
            let mut w = World::new(
                input.clone(),
                Box::new(TightSender::new(input.clone(), 5, ResendPolicy::Once)),
                Box::new(TightReceiver::new(5, ResendPolicy::Once)),
                Box::new(DupChannel::new()),
                Box::new(DupStormScheduler::new(storm_seed, 0.9)),
            );
            let trace = w.run_to_completion(5_000).unwrap();
            assert_eq!(trace.output(), input, "seed={storm_seed}");
        }
    }

    #[test]
    fn tight_del_survives_drop_heavy_adversaries() {
        let input = seq(&[1, 3, 0]);
        for s in 0..20 {
            let mut w = World::new(
                input.clone(),
                Box::new(TightSender::new(input.clone(), 4, ResendPolicy::EveryTick)),
                Box::new(TightReceiver::new(4, ResendPolicy::EveryTick)),
                Box::new(DelChannel::new()),
                Box::new(DropHeavyScheduler::new(s, 0.4, 0.5)),
            );
            let trace = w.run_to_completion(20_000).unwrap();
            assert_eq!(trace.output(), input, "seed={s}");
        }
    }

    #[test]
    fn safety_holds_even_when_liveness_is_starved() {
        // A scheduler that never delivers: nothing gets written, but
        // nothing wrong gets written either.
        let input = seq(&[1, 0]);
        let mut w = World::new(
            input.clone(),
            Box::new(TightSender::new(input, 2, ResendPolicy::Once)),
            Box::new(TightReceiver::new(2, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(RandomScheduler::new(0, 0.0)),
        );
        w.run(500);
        assert!(check_safety(w.trace()).is_ok());
        assert_eq!(w.trace().output().len(), 0);
        assert!(!w.is_complete());
    }

    #[test]
    fn reorder_scheduler_cannot_break_the_tight_protocol() {
        let input = seq(&[0, 2, 1, 3]);
        let mut w = World::new(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 4, ResendPolicy::Once)),
            Box::new(TightReceiver::new(4, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(ReorderScheduler::new()),
        );
        let trace = w.run_to_completion(2_000).unwrap();
        assert_eq!(trace.output(), input);
    }

    #[test]
    fn runs_are_deterministic_under_a_fixed_seed() {
        let input = seq(&[1, 2, 0]);
        let run = |seed: u64| {
            let mut w = World::new(
                input.clone(),
                Box::new(TightSender::new(input.clone(), 3, ResendPolicy::EveryTick)),
                Box::new(TightReceiver::new(3, ResendPolicy::EveryTick)),
                Box::new(DelChannel::new()),
                Box::new(DropHeavyScheduler::new(seed, 0.3, 0.6)),
            );
            w.run(300).clone()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn trace_records_reads_and_writes_with_positions() {
        let input = seq(&[2, 0]);
        let mut w = World::tight_dup(input.clone(), 3);
        let trace = w.run_to_completion(100).unwrap();
        assert_eq!(trace.reads(), 2);
        let writes: Vec<_> = trace
            .events()
            .iter()
            .filter_map(|e| match e.event {
                Event::Write { pos, .. } => Some(pos),
                _ => None,
            })
            .collect();
        assert_eq!(writes, vec![0, 1]);
    }

    #[test]
    fn empty_input_completes_instantly() {
        let mut w = World::tight_dup(seq(&[]), 2);
        let trace = w.run_to_completion(10).unwrap();
        assert_eq!(trace.output(), seq(&[]));
    }

    #[test]
    fn run_until_condition() {
        let input = seq(&[1, 0]);
        let mut w = World::tight_dup(input, 2);
        let reached = w.run_until(1_000, |w| !w.trace().output().is_empty());
        assert!(reached);
        assert!(w.step_count() < 1_000);
        let never = w.run_until(w.step_count() + 5, |w| w.trace().output().len() >= 99);
        assert!(!never);
    }
}
