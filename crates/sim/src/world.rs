//! The lock-step world executor.

use crate::error::SimError;
use crate::metrics::RunStats;
use crate::prof::{NoObs, Phase, PhaseProfiler, ProfObs, StepObs};
use stp_channel::{Channel, CorruptionCommand, DelChannel, DupChannel, EagerScheduler, Scheduler};
use stp_core::alphabet::{RMsg, SMsg};
use stp_core::data::DataSeq;
use stp_core::event::{
    CorruptionKind, Event, MsgEvent, MsgId, Probe, ProcessId, Step, Trace, TraceMode,
};
use stp_core::proto::{Receiver, ReceiverEvent, Sender, SenderEvent};
use stp_core::require;
use stp_protocols::{ResendPolicy, TightReceiver, TightSender};

/// A complete simulated system: two processors, a channel, an adversary,
/// and the trace being recorded.
///
/// Assemble one with [`World::builder`]; the [`TraceMode`] chosen there
/// decides what the trace remembers, while the aggregate counters behind
/// [`World::stats`] are maintained in every mode. A finished world can be
/// rewound with [`World::reset`] and reused for another run, which is how
/// the sweep engine amortizes allocation across a grid.
#[derive(Debug)]
pub struct World {
    sender: Box<dyn Sender>,
    receiver: Box<dyn Receiver>,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    trace: Trace,
    mode: TraceMode,
    probes: Vec<Box<dyn Probe>>,
    // Whether any attached probe asked for per-message provenance; decides
    // both the channel's id bookkeeping and `MsgEvent` emission.
    provenance: bool,
    // Indices into `probes` of the provenance-wanting (resp. plain-event-
    // wanting) ones, precomputed at build time so the per-event fan-outs
    // make one direct call per subscriber instead of asking every probe on
    // every event.
    prov_probes: Vec<usize>,
    event_probes: Vec<usize>,
    // Fast-path flag: every attached probe wants plain events (the common
    // case), so `record` can fan out with a direct slice walk instead of
    // the indexed one.
    all_want_events: bool,
    // Provenance is on AND the channel can actually lose copies (delete
    // or expire) — the only case the per-step loss-id bookkeeping has
    // anything to track.
    prov_loss: bool,
    // Ids are assigned densely from 0 per run, so `(seed, MsgId)` is
    // stable across pooled resets and re-runs of the same cell.
    next_msg_id: u64,
    step: Step,
    written: usize,
    reads_seen: usize,
    // Aggregate counters, maintained in every trace mode so stats-only
    // sweeps can skip event recording entirely.
    sends_s: usize,
    sends_r: usize,
    deliveries_r: usize,
    deliveries_s: usize,
    drops: usize,
    write_steps: Vec<Step>,
    safe: bool,
    // Scratch buffers for draining channel-initiated expiries once per
    // step without allocating.
    expiry_scratch_r: Vec<SMsg>,
    expiry_scratch_s: Vec<RMsg>,
    expiry_id_scratch_r: Vec<Option<MsgId>>,
    expiry_id_scratch_s: Vec<Option<MsgId>>,
    // Ids the adversary deleted during the current step, kept (under
    // provenance) to assert that the expiry drain never re-surfaces a copy
    // already reported dropped in the same step.
    deleted_ids_step: Vec<MsgId>,
}

/// Fluent assembly of a [`World`].
///
/// ```
/// use stp_channel::{DupChannel, EagerScheduler};
/// use stp_core::data::DataSeq;
/// use stp_protocols::{ResendPolicy, TightReceiver, TightSender};
/// use stp_sim::World;
///
/// let input = DataSeq::from_indices([1, 0]);
/// let mut w = World::builder(input.clone())
///     .sender(Box::new(TightSender::new(input, 2, ResendPolicy::Once)))
///     .receiver(Box::new(TightReceiver::new(2, ResendPolicy::Once)))
///     .channel(Box::new(DupChannel::new()))
///     .scheduler(Box::new(EagerScheduler::new()))
///     .build()
///     .unwrap();
/// assert!(w.run_to_completion(100).is_ok());
/// ```
#[derive(Debug)]
pub struct WorldBuilder {
    input: DataSeq,
    sender: Option<Box<dyn Sender>>,
    receiver: Option<Box<dyn Receiver>>,
    channel: Option<Box<dyn Channel>>,
    scheduler: Option<Box<dyn Scheduler>>,
    mode: TraceMode,
    probes: Vec<Box<dyn Probe>>,
}

impl WorldBuilder {
    /// Sets the sender.
    pub fn sender(mut self, sender: Box<dyn Sender>) -> Self {
        self.sender = Some(sender);
        self
    }

    /// Sets the receiver.
    pub fn receiver(mut self, receiver: Box<dyn Receiver>) -> Self {
        self.receiver = Some(receiver);
        self
    }

    /// Sets the channel.
    pub fn channel(mut self, channel: Box<dyn Channel>) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Sets the adversarial scheduler.
    pub fn scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the trace-recording mode (default: [`TraceMode::Full`]).
    pub fn mode(mut self, mode: TraceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches a streaming [`Probe`], which observes every event of every
    /// run regardless of the trace mode (default: none). Call repeatedly
    /// to attach several probes — they are driven in attachment order. The
    /// world calls `Probe::on_run_start` at assembly and on every
    /// [`World::reset`]; recover a concrete probe afterwards with
    /// [`World::probe_of`]. If any attached probe answers
    /// [`Probe::wants_provenance`], the world enables the channel's
    /// per-copy id tracking and feeds every provenance-aware probe a
    /// [`MsgEvent`] stream alongside the plain events.
    pub fn probe(mut self, probe: Box<dyn Probe>) -> Self {
        self.probes.push(probe);
        self
    }

    /// Assembles the world.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingComponent`] naming the first component
    /// that was never supplied.
    pub fn build(self) -> Result<World, SimError> {
        let missing = |component| SimError::MissingComponent { component };
        let mut world = World::assemble(
            self.input,
            self.sender.ok_or_else(|| missing("sender"))?,
            self.receiver.ok_or_else(|| missing("receiver"))?,
            self.channel.ok_or_else(|| missing("channel"))?,
            self.scheduler.ok_or_else(|| missing("scheduler"))?,
            self.mode,
        );
        world.probes = self.probes;
        world.prov_probes = world
            .probes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.wants_provenance())
            .map(|(i, _)| i)
            .collect();
        world.provenance = !world.prov_probes.is_empty();
        world.event_probes = world
            .probes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.wants_events())
            .map(|(i, _)| i)
            .collect();
        world.all_want_events = world.event_probes.len() == world.probes.len();
        // Provenance must be switched on before the first send of the run;
        // the flag survives channel resets, so this is a build-time choice.
        world.channel.set_provenance(world.provenance);
        world.prov_loss =
            world.provenance && (world.channel.can_delete() || world.channel.can_expire());
        for p in &mut world.probes {
            p.on_run_start(world.trace.input());
        }
        Ok(world)
    }
}

impl World {
    /// Starts assembling a world for `input`.
    pub fn builder(input: DataSeq) -> WorldBuilder {
        WorldBuilder {
            input,
            sender: None,
            receiver: None,
            channel: None,
            scheduler: None,
            mode: TraceMode::default(),
            probes: Vec::new(),
        }
    }

    fn assemble(
        input: DataSeq,
        sender: Box<dyn Sender>,
        receiver: Box<dyn Receiver>,
        channel: Box<dyn Channel>,
        scheduler: Box<dyn Scheduler>,
        mode: TraceMode,
    ) -> Self {
        World {
            sender,
            receiver,
            channel,
            scheduler,
            trace: Trace::new(input),
            mode,
            probes: Vec::new(),
            provenance: false,
            prov_probes: Vec::new(),
            event_probes: Vec::new(),
            all_want_events: true,
            prov_loss: false,
            next_msg_id: 0,
            step: 0,
            written: 0,
            reads_seen: 0,
            sends_s: 0,
            sends_r: 0,
            deliveries_r: 0,
            deliveries_s: 0,
            drops: 0,
            write_steps: Vec::new(),
            safe: true,
            expiry_scratch_r: Vec::new(),
            expiry_scratch_s: Vec::new(),
            expiry_id_scratch_r: Vec::new(),
            expiry_id_scratch_s: Vec::new(),
            deleted_ids_step: Vec::new(),
        }
    }

    /// Convenience: the paper's tight protocol on `input` over a
    /// duplicating channel with an eager scheduler.
    pub fn tight_dup(input: DataSeq, d: u16) -> Self {
        World::builder(input.clone())
            .sender(Box::new(TightSender::new(input, d, ResendPolicy::Once)))
            .receiver(Box::new(TightReceiver::new(d, ResendPolicy::Once)))
            .channel(Box::new(DupChannel::new()))
            .scheduler(Box::new(EagerScheduler::new()))
            .build()
            .expect("all components supplied")
    }

    /// Convenience: the tight protocol (retransmitting variant) on `input`
    /// over a deleting channel with an eager scheduler.
    pub fn tight_del(input: DataSeq, d: u16) -> Self {
        World::builder(input.clone())
            .sender(Box::new(TightSender::new(
                input,
                d,
                ResendPolicy::EveryTick,
            )))
            .receiver(Box::new(TightReceiver::new(d, ResendPolicy::EveryTick)))
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(EagerScheduler::new()))
            .build()
            .expect("all components supplied")
    }

    /// Rewinds the world for a fresh run on `input`, re-deriving the
    /// scheduler's randomized state from `seed`.
    ///
    /// All four components are reset in place (see [`Sender::reset`] for
    /// the contract), the trace is replaced, and every counter is zeroed —
    /// the subsequent run is bit-identical to one on a freshly built
    /// world, without re-boxing anything.
    pub fn reset(&mut self, input: &DataSeq, seed: u64) {
        self.sender.reset(input);
        self.receiver.reset();
        self.channel.reset();
        self.scheduler.reset(seed);
        self.trace.reset(input);
        self.next_msg_id = 0;
        self.step = 0;
        self.written = 0;
        self.reads_seen = 0;
        self.sends_s = 0;
        self.sends_r = 0;
        self.deliveries_r = 0;
        self.deliveries_s = 0;
        self.drops = 0;
        self.write_steps.clear();
        self.safe = true;
        self.expiry_scratch_r.clear();
        self.expiry_scratch_s.clear();
        self.expiry_id_scratch_r.clear();
        self.expiry_id_scratch_s.clear();
        self.deleted_ids_step.clear();
        for p in &mut self.probes {
            p.on_run_start(self.trace.input());
        }
    }

    /// The trace-recording mode this world was assembled with.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// The current global step (number of steps executed so far).
    pub fn step_count(&self) -> Step {
        self.step
    }

    /// The trace recorded so far. Under [`TraceMode::WritesOnly`] it holds
    /// only `Write` events; under [`TraceMode::Off`] it holds no events at
    /// all — use [`World::stats`] for the aggregates in those modes.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Aggregate statistics of the run so far, maintained incrementally in
    /// every trace mode. Under [`TraceMode::Full`] this equals
    /// [`RunStats::of`] on the recorded trace.
    pub fn stats(&self) -> RunStats {
        RunStats {
            steps: self.step,
            sends_s: self.sends_s,
            sends_r: self.sends_r,
            deliveries_r: self.deliveries_r,
            deliveries_s: self.deliveries_s,
            drops: self.drops,
            written: self.written,
            input_len: self.trace.input().len(),
            safe: self.safe,
            write_steps: self.write_steps.clone(),
        }
    }

    /// The channel, for inspection.
    pub fn channel(&self) -> &dyn Channel {
        &*self.channel
    }

    /// The sender, for inspection.
    pub fn sender(&self) -> &dyn Sender {
        &*self.sender
    }

    /// The receiver, for inspection.
    pub fn receiver(&self) -> &dyn Receiver {
        &*self.receiver
    }

    /// Number of items written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// A hash of the live system state — sender and receiver fingerprints,
    /// the channel's canonical state key, and the output length. Two worlds
    /// with equal fingerprints are (up to hash collision) in the same
    /// global state, so a run revisiting a fingerprint has entered a cycle.
    /// This is what the certificate checker compares when replaying a
    /// fair-cycle witness.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.sender.fingerprint().hash(&mut h);
        self.receiver.fingerprint().hash(&mut h);
        self.channel.state_key().hash(&mut h);
        self.written.hash(&mut h);
        h.finish()
    }

    /// Clones the live parts of the system — `(sender, receiver, channel,
    /// written)` — so an analysis (e.g. the boundedness prober in
    /// `stp-verify`) can explore hypothetical extensions of this exact
    /// point without disturbing the run.
    #[allow(clippy::type_complexity)]
    pub fn fork_parts(&self) -> (Box<dyn Sender>, Box<dyn Receiver>, Box<dyn Channel>, usize) {
        (
            self.sender.box_clone(),
            self.receiver.box_clone(),
            self.channel.box_clone(),
            self.written,
        )
    }

    /// Whether the sender reports completion and the output covers the
    /// whole input.
    pub fn is_complete(&self) -> bool {
        self.sender.is_done() && self.written >= self.trace.input().len()
    }

    /// The first attached probe of concrete type `P`, if one is attached —
    /// how a harness reads a `MetricsProbe`'s statistics back out of a
    /// pooled world.
    pub fn probe_of<P: Probe + 'static>(&self) -> Option<&P> {
        self.probes.iter().find_map(|p| p.as_any().downcast_ref())
    }

    /// Mutable access to the first attached probe of concrete type `P`;
    /// see [`World::probe_of`].
    pub fn probe_of_mut<P: Probe + 'static>(&mut self) -> Option<&mut P> {
        self.probes
            .iter_mut()
            .find_map(|p| p.as_any_mut().downcast_mut())
    }

    /// Whether per-message provenance tracking is active for this world
    /// (at least one attached probe asked for it).
    pub fn provenance_enabled(&self) -> bool {
        self.provenance
    }

    fn record(&mut self, step: Step, event: Event) {
        // Subscribed probes see every event, in execution order,
        // regardless of what the trace mode keeps.
        if self.all_want_events {
            for p in &mut self.probes {
                p.on_event(step, &event);
            }
        } else {
            for &i in &self.event_probes {
                self.probes[i].on_event(step, &event);
            }
        }
        if self.mode.records(&event) {
            self.trace.record(step, event);
        }
    }

    fn emit_msg(&mut self, step: Step, event: MsgEvent) {
        for &i in &self.prov_probes {
            self.probes[i].on_msg_event(step, &event);
        }
    }

    /// Applies one step's corruption commands. Scramble/desync strikes
    /// call the processors' opt-in hooks (a protocol that does not
    /// implement them absorbs the strike silently); injections forge a
    /// message onto the channel as if the peer had sent it, with the
    /// payload reduced modulo the victim's alphabet. Forged copies are
    /// *not* recorded as `SendS`/`SendR` — that would misattribute them
    /// to a processor in the local-history projections and double-send
    /// on replay — but they do get provenance ids so message-lifecycle
    /// probes can follow them.
    fn apply_corruptions(&mut self, t: Step, commands: &[CorruptionCommand]) {
        for cmd in commands {
            let applied = match cmd.kind {
                CorruptionKind::ScrambleSender => self.sender.scramble(cmd.draw),
                CorruptionKind::ScrambleReceiver => self.receiver.scramble(cmd.draw),
                CorruptionKind::DesyncSender => self.sender.desync(cmd.draw),
                CorruptionKind::DesyncReceiver => self.receiver.desync(cmd.draw),
                CorruptionKind::InjectToR => {
                    let size = self.sender.alphabet().size();
                    if size == 0 {
                        false
                    } else {
                        let m = SMsg((cmd.draw % u64::from(size)) as u16);
                        self.channel.send_s(m);
                        if self.provenance {
                            let id = MsgId(self.next_msg_id);
                            self.next_msg_id += 1;
                            let filed = self.channel.note_send_s(m, id);
                            self.emit_msg(
                                t,
                                MsgEvent::Sent {
                                    id,
                                    to: ProcessId::Receiver,
                                    msg: m.0,
                                    coalesced_into: (filed != id).then_some(filed),
                                },
                            );
                        }
                        true
                    }
                }
                CorruptionKind::InjectToS => {
                    let size = self.receiver.alphabet().size();
                    if size == 0 {
                        false
                    } else {
                        let m = RMsg((cmd.draw % u64::from(size)) as u16);
                        self.channel.send_r(m);
                        if self.provenance {
                            let id = MsgId(self.next_msg_id);
                            self.next_msg_id += 1;
                            let filed = self.channel.note_send_r(m, id);
                            self.emit_msg(
                                t,
                                MsgEvent::Sent {
                                    id,
                                    to: ProcessId::Sender,
                                    msg: m.0,
                                    coalesced_into: (filed != id).then_some(filed),
                                },
                            );
                        }
                        true
                    }
                }
            };
            if applied {
                self.record(
                    t,
                    Event::Corruption {
                        kind: cmd.kind,
                        draw: cmd.draw,
                    },
                );
            }
        }
    }

    /// Executes one global step.
    pub fn step(&mut self) {
        // The phases are irrelevant under `NoObs` (marks compile away);
        // any pair works.
        self.step_impl(&mut NoObs, Phase::DeliverPerfect, Phase::ExpirePerfect);
    }

    // One global step observed through an open profiling window (the
    // threaded runner drives this directly when profiled).
    pub(crate) fn step_observed(&mut self, obs: &mut ProfObs, deliver: Phase, expire: Phase) {
        self.step_impl(obs, deliver, expire);
    }

    // The single source of truth for the step body. `O = NoObs`
    // monomorphizes every `obs.mark` to nothing, so the unprofiled
    // `step()` compiles to the same code as before the profiler existed;
    // `O = ProfObs` timestamps each phase boundary. `deliver`/`expire`
    // carry the channel kind so cost splits per kind.
    fn step_impl<O: StepObs>(&mut self, obs: &mut O, deliver: Phase, expire: Phase) {
        obs.mark(Phase::SchedulerDecide);
        let t = self.step;
        self.scheduler.note_progress(t, self.written);
        let decision = self.scheduler.decide(t, &*self.channel);
        if self.prov_loss {
            self.deleted_ids_step.clear();
        }

        // Adversarial deletions first (they model in-transit loss).
        obs.mark(deliver);
        for i in 0..decision.delete_to_r.len() {
            let msg = decision.delete_to_r[i];
            if self.channel.delete_to_r(msg).is_ok() {
                self.drops += 1;
                self.record(
                    t,
                    Event::ChannelDrop {
                        to: ProcessId::Receiver,
                        msg: msg.0,
                    },
                );
                if self.provenance {
                    let id = self.channel.take_deleted_id_to_r();
                    self.deleted_ids_step.extend(id);
                    self.emit_msg(
                        t,
                        MsgEvent::Dropped {
                            id,
                            to: ProcessId::Receiver,
                            msg: msg.0,
                        },
                    );
                }
            }
        }
        for i in 0..decision.delete_to_s.len() {
            let msg = decision.delete_to_s[i];
            if self.channel.delete_to_s(msg).is_ok() {
                self.drops += 1;
                self.record(
                    t,
                    Event::ChannelDrop {
                        to: ProcessId::Sender,
                        msg: msg.0,
                    },
                );
                if self.provenance {
                    let id = self.channel.take_deleted_id_to_s();
                    self.deleted_ids_step.extend(id);
                    self.emit_msg(
                        t,
                        MsgEvent::Dropped {
                            id,
                            to: ProcessId::Sender,
                            msg: msg.0,
                        },
                    );
                }
            }
        }

        // Transient corruption strikes land between loss and delivery:
        // state scrambles and counter desyncs call the processors' opt-in
        // hooks, injections forge messages onto the channel. A strike is
        // recorded (as `Event::Corruption`) only when it took effect, so
        // a scripted replay re-applies exactly the strikes that mattered.
        if !decision.corruptions.is_empty() {
            self.apply_corruptions(t, &decision.corruptions);
        }

        // Deliveries (against the post-deletion state; infeasible choices
        // are ignored, which keeps adversaries honest without crashing).
        let delivered_to_s = decision
            .deliver_to_s
            .filter(|m| self.channel.deliver_to_s(*m).is_ok());
        if let Some(m) = delivered_to_s {
            self.deliveries_s += 1;
            self.record(t, Event::DeliverToS { msg: m });
            if self.provenance {
                let id = self.channel.take_delivered_id_to_s();
                self.emit_msg(
                    t,
                    MsgEvent::Delivered {
                        id,
                        to: ProcessId::Sender,
                        msg: m.0,
                    },
                );
            }
        }
        let delivered_to_r = decision
            .deliver_to_r
            .filter(|m| self.channel.deliver_to_r(*m).is_ok());
        if let Some(m) = delivered_to_r {
            self.deliveries_r += 1;
            self.record(t, Event::DeliverToR { msg: m });
            if self.provenance {
                let id = self.channel.take_delivered_id_to_r();
                self.emit_msg(
                    t,
                    MsgEvent::Delivered {
                        id,
                        to: ProcessId::Receiver,
                        msg: m.0,
                    },
                );
            }
        }

        // Processor steps.
        obs.mark(Phase::SenderStep);
        let s_event = if t == 0 {
            SenderEvent::Init
        } else {
            match delivered_to_s {
                Some(m) => SenderEvent::Deliver(m),
                None => SenderEvent::Tick,
            }
        };
        let r_event = if t == 0 {
            ReceiverEvent::Init
        } else {
            match delivered_to_r {
                Some(m) => ReceiverEvent::Deliver(m),
                None => ReceiverEvent::Tick,
            }
        };
        let s_out = self.sender.on_event(s_event);
        obs.mark(Phase::ReceiverStep);
        let r_out = self.receiver.on_event(r_event);

        // Record tape reads the sender performed during this step.
        obs.mark(Phase::SenderStep);
        let reads_now = self.sender.reads();
        for pos in self.reads_seen..reads_now {
            if let Some(item) = self.trace.input().get(pos) {
                self.record(t, Event::Read { item, pos });
            }
        }
        self.reads_seen = reads_now;

        // Apply outputs after deliveries: sends become deliverable next
        // step at the earliest.
        obs.mark(Phase::ReceiverStep);
        for item in r_out.write {
            // Positions are assigned consecutively, so safety reduces to
            // "each written item matches the input at its position" —
            // exactly what `require::check_safety` verifies on full traces.
            self.safe &= self.trace.input().get(self.written) == Some(item);
            self.write_steps.push(t);
            self.record(
                t,
                Event::Write {
                    item,
                    pos: self.written,
                },
            );
            self.written += 1;
        }
        obs.mark(deliver);
        for m in s_out.send {
            self.channel.send_s(m);
            self.sends_s += 1;
            self.record(t, Event::SendS { msg: m });
            if self.provenance {
                let id = MsgId(self.next_msg_id);
                self.next_msg_id += 1;
                let filed = self.channel.note_send_s(m, id);
                self.emit_msg(
                    t,
                    MsgEvent::Sent {
                        id,
                        to: ProcessId::Receiver,
                        msg: m.0,
                        coalesced_into: (filed != id).then_some(filed),
                    },
                );
            }
        }
        for m in r_out.send {
            self.channel.send_r(m);
            self.sends_r += 1;
            self.record(t, Event::SendR { msg: m });
            if self.provenance {
                let id = MsgId(self.next_msg_id);
                self.next_msg_id += 1;
                let filed = self.channel.note_send_r(m, id);
                self.emit_msg(
                    t,
                    MsgEvent::Sent {
                        id,
                        to: ProcessId::Sender,
                        msg: m.0,
                        coalesced_into: (filed != id).then_some(filed),
                    },
                );
            }
        }

        // Channel clock (timed channels expire messages here), then the
        // expiry drain: copies the channel itself destroyed this step are
        // counted — and evented — exactly like adversarial loss, except as
        // `ChannelExpire` so replay does not re-inject them.
        obs.mark(expire);
        self.channel.tick();
        self.channel
            .take_expirations(&mut self.expiry_scratch_r, &mut self.expiry_scratch_s);
        if self.prov_loss {
            self.channel
                .take_expiration_ids(&mut self.expiry_id_scratch_r, &mut self.expiry_id_scratch_s);
            // A copy the adversary already deleted this step left the
            // channel then — it must never re-surface through the expiry
            // drain, or drops would be double-counted.
            debug_assert!(
                self.expiry_id_scratch_r
                    .iter()
                    .chain(self.expiry_id_scratch_s.iter())
                    .flatten()
                    .all(|id| !self.deleted_ids_step.contains(id)),
                "take_expirations yielded a copy already reported dropped this step"
            );
        }
        for i in 0..self.expiry_scratch_r.len() {
            let msg = self.expiry_scratch_r[i];
            self.drops += 1;
            self.record(
                t,
                Event::ChannelExpire {
                    to: ProcessId::Receiver,
                    msg: msg.0,
                },
            );
            if self.provenance {
                let id = self.expiry_id_scratch_r.get(i).copied().flatten();
                self.emit_msg(
                    t,
                    MsgEvent::Expired {
                        id,
                        to: ProcessId::Receiver,
                        msg: msg.0,
                    },
                );
            }
        }
        for i in 0..self.expiry_scratch_s.len() {
            let msg = self.expiry_scratch_s[i];
            self.drops += 1;
            self.record(
                t,
                Event::ChannelExpire {
                    to: ProcessId::Sender,
                    msg: msg.0,
                },
            );
            if self.provenance {
                let id = self.expiry_id_scratch_s.get(i).copied().flatten();
                self.emit_msg(
                    t,
                    MsgEvent::Expired {
                        id,
                        to: ProcessId::Sender,
                        msg: msg.0,
                    },
                );
            }
        }
        self.expiry_scratch_r.clear();
        self.expiry_scratch_s.clear();
        self.expiry_id_scratch_r.clear();
        self.expiry_id_scratch_s.clear();

        obs.mark(Phase::Bookkeeping);
        self.step += 1;
        self.trace.set_steps(self.step);
        obs.mark(Phase::ProbeDispatch);
        for p in &mut self.probes {
            p.on_step_end(t);
        }
        obs.mark(Phase::Bookkeeping);
    }

    /// Runs exactly `steps` global steps and returns the trace.
    pub fn run(&mut self, steps: Step) -> &Trace {
        for _ in 0..steps {
            self.step();
        }
        &self.trace
    }

    /// Runs until [`World::is_complete`] or `max_steps`, whichever first.
    ///
    /// # Errors
    ///
    /// Returns the safety/liveness error if the run ended incomplete or
    /// unsafe (see [`require::check_complete`]).
    pub fn run_to_completion(&mut self, max_steps: Step) -> stp_core::Result<Trace> {
        while self.step < max_steps && !self.is_complete() {
            self.step();
        }
        require::check_complete(&self.trace)?;
        Ok(self.trace.clone())
    }

    /// Runs until `cond` holds or `max_steps` elapsed; reports whether the
    /// condition was reached.
    pub fn run_until<F: FnMut(&World) -> bool>(&mut self, max_steps: Step, mut cond: F) -> bool {
        while self.step < max_steps {
            if cond(self) {
                return true;
            }
            self.step();
        }
        cond(self)
    }

    /// Like [`World::run_until`], but the whole run is one profiling
    /// window of `prof`: channel cost lands in the per-kind
    /// `deliver`/`expire` phases (see [`crate::prof::delivery_phase`]),
    /// the rest in the shared taxonomy. Profiling only observes —
    /// behaviour, trace, and stats are identical to an unprofiled run.
    pub fn run_until_profiled<F: FnMut(&World) -> bool>(
        &mut self,
        max_steps: Step,
        mut cond: F,
        prof: &PhaseProfiler,
        deliver: Phase,
        expire: Phase,
    ) -> bool {
        let mut obs = ProfObs::begin();
        let reached = loop {
            if self.step >= max_steps {
                break cond(self);
            }
            if cond(self) {
                break true;
            }
            self.step_impl(&mut obs, deliver, expire);
        };
        obs.finish(prof);
        reached
    }

    /// Consumes the world and returns the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DropHeavyScheduler, DupStormScheduler, RandomScheduler, ReorderScheduler};
    use stp_core::require::{check_complete, check_safety};

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    fn tight(input: &DataSeq, d: u16, policy: ResendPolicy) -> WorldBuilder {
        World::builder(input.clone())
            .sender(Box::new(TightSender::new(input.clone(), d, policy)))
            .receiver(Box::new(TightReceiver::new(d, policy)))
    }

    #[test]
    fn tight_dup_delivers_under_eager_scheduler() {
        let input = seq(&[2, 0, 1]);
        let mut w = World::tight_dup(input.clone(), 3);
        let trace = w.run_to_completion(1_000).unwrap();
        assert_eq!(trace.output(), input);
        check_complete(&trace).unwrap();
    }

    #[test]
    fn tight_dup_survives_duplication_storms() {
        let input = seq(&[3, 1, 4, 0, 2]);
        for storm_seed in 0..20 {
            let mut w = tight(&input, 5, ResendPolicy::Once)
                .channel(Box::new(DupChannel::new()))
                .scheduler(Box::new(DupStormScheduler::new(storm_seed, 0.9)))
                .build()
                .unwrap();
            let trace = w.run_to_completion(5_000).unwrap();
            assert_eq!(trace.output(), input, "seed={storm_seed}");
        }
    }

    #[test]
    fn tight_del_survives_drop_heavy_adversaries() {
        let input = seq(&[1, 3, 0]);
        for s in 0..20 {
            let mut w = tight(&input, 4, ResendPolicy::EveryTick)
                .channel(Box::new(DelChannel::new()))
                .scheduler(Box::new(DropHeavyScheduler::new(s, 0.4, 0.5)))
                .build()
                .unwrap();
            let trace = w.run_to_completion(20_000).unwrap();
            assert_eq!(trace.output(), input, "seed={s}");
        }
    }

    #[test]
    fn safety_holds_even_when_liveness_is_starved() {
        // A scheduler that never delivers: nothing gets written, but
        // nothing wrong gets written either.
        let input = seq(&[1, 0]);
        let mut w = tight(&input, 2, ResendPolicy::Once)
            .channel(Box::new(DupChannel::new()))
            .scheduler(Box::new(RandomScheduler::new(0, 0.0)))
            .build()
            .unwrap();
        w.run(500);
        assert!(check_safety(w.trace()).is_ok());
        assert_eq!(w.trace().output().len(), 0);
        assert!(!w.is_complete());
    }

    #[test]
    fn reorder_scheduler_cannot_break_the_tight_protocol() {
        let input = seq(&[0, 2, 1, 3]);
        let mut w = tight(&input, 4, ResendPolicy::Once)
            .channel(Box::new(DupChannel::new()))
            .scheduler(Box::new(ReorderScheduler::new()))
            .build()
            .unwrap();
        let trace = w.run_to_completion(2_000).unwrap();
        assert_eq!(trace.output(), input);
    }

    #[test]
    fn runs_are_deterministic_under_a_fixed_seed() {
        let input = seq(&[1, 2, 0]);
        let run = |seed: u64| {
            let mut w = tight(&input, 3, ResendPolicy::EveryTick)
                .channel(Box::new(DelChannel::new()))
                .scheduler(Box::new(DropHeavyScheduler::new(seed, 0.3, 0.6)))
                .build()
                .unwrap();
            w.run(300).clone()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn trace_records_reads_and_writes_with_positions() {
        let input = seq(&[2, 0]);
        let mut w = World::tight_dup(input.clone(), 3);
        let trace = w.run_to_completion(100).unwrap();
        assert_eq!(trace.reads(), 2);
        let writes: Vec<_> = trace
            .events()
            .iter()
            .filter_map(|e| match e.event {
                Event::Write { pos, .. } => Some(pos),
                _ => None,
            })
            .collect();
        assert_eq!(writes, vec![0, 1]);
    }

    #[test]
    fn empty_input_completes_instantly() {
        let mut w = World::tight_dup(seq(&[]), 2);
        let trace = w.run_to_completion(10).unwrap();
        assert_eq!(trace.output(), seq(&[]));
    }

    #[test]
    fn run_until_condition() {
        let input = seq(&[1, 0]);
        let mut w = World::tight_dup(input, 2);
        let reached = w.run_until(1_000, |w| !w.trace().output().is_empty());
        assert!(reached);
        assert!(w.step_count() < 1_000);
        let never = w.run_until(w.step_count() + 5, |w| w.trace().output().len() >= 99);
        assert!(!never);
    }

    #[test]
    fn builder_rejects_missing_components() {
        let err = World::builder(seq(&[0])).build().unwrap_err();
        assert_eq!(
            err,
            SimError::MissingComponent {
                component: "sender"
            }
        );
        let err = tight(&seq(&[0]), 1, ResendPolicy::Once)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::MissingComponent {
                component: "channel"
            }
        );
    }

    #[test]
    fn incremental_stats_match_trace_derived_stats() {
        let input = seq(&[1, 3, 0, 2]);
        for s in 0..8 {
            let mut w = tight(&input, 4, ResendPolicy::EveryTick)
                .channel(Box::new(DelChannel::new()))
                .scheduler(Box::new(DropHeavyScheduler::new(s, 0.3, 0.6)))
                .build()
                .unwrap();
            w.run_until(20_000, World::is_complete);
            assert_eq!(w.stats(), RunStats::of(w.trace()), "seed={s}");
        }
    }

    #[test]
    fn off_mode_records_nothing_but_counts_everything() {
        let input = seq(&[2, 0, 1]);
        let mut full = tight(&input, 3, ResendPolicy::Once)
            .channel(Box::new(DupChannel::new()))
            .scheduler(Box::new(DupStormScheduler::new(7, 0.9)))
            .build()
            .unwrap();
        let mut off = tight(&input, 3, ResendPolicy::Once)
            .channel(Box::new(DupChannel::new()))
            .scheduler(Box::new(DupStormScheduler::new(7, 0.9)))
            .mode(TraceMode::Off)
            .build()
            .unwrap();
        full.run_until(5_000, World::is_complete);
        off.run_until(5_000, World::is_complete);
        assert!(off.trace().events().is_empty());
        assert!(off.is_complete());
        assert_eq!(off.stats(), full.stats(), "mode must not change behaviour");
    }

    #[test]
    fn writes_only_mode_keeps_output_queries_alive() {
        let input = seq(&[1, 0]);
        let mut w = tight(&input, 2, ResendPolicy::Once)
            .channel(Box::new(DupChannel::new()))
            .scheduler(Box::new(EagerScheduler::new()))
            .mode(TraceMode::WritesOnly)
            .build()
            .unwrap();
        w.run_until(1_000, World::is_complete);
        assert_eq!(w.trace().output(), input);
        assert!(w
            .trace()
            .events()
            .iter()
            .all(|e| matches!(e.event, Event::Write { .. })));
    }

    #[test]
    fn probe_stats_match_trace_and_counters() {
        use crate::metrics::MetricsProbe;
        let input = seq(&[1, 3, 0, 2]);
        for s in 0..8 {
            let mut w = tight(&input, 4, ResendPolicy::EveryTick)
                .channel(Box::new(DelChannel::new()))
                .scheduler(Box::new(DropHeavyScheduler::new(s, 0.3, 0.6)))
                .probe(Box::new(MetricsProbe::new()))
                .build()
                .unwrap();
            w.run_until(20_000, World::is_complete);
            let probe_stats = w.probe_of::<MetricsProbe>().unwrap().stats();
            assert_eq!(probe_stats, w.stats(), "seed={s}");
            assert_eq!(probe_stats, RunStats::of(w.trace()), "seed={s}");
        }
    }

    #[test]
    fn probe_works_with_trace_off() {
        use crate::metrics::MetricsProbe;
        let input = seq(&[2, 0, 1]);
        let mut w = tight(&input, 3, ResendPolicy::Once)
            .channel(Box::new(DupChannel::new()))
            .scheduler(Box::new(DupStormScheduler::new(7, 0.9)))
            .mode(TraceMode::Off)
            .probe(Box::new(MetricsProbe::new()))
            .build()
            .unwrap();
        w.run_until(5_000, World::is_complete);
        assert!(w.trace().events().is_empty());
        let probe_stats = w.probe_of::<MetricsProbe>().unwrap().stats();
        assert_eq!(probe_stats, w.stats());
        assert!(probe_stats.is_complete());
    }

    #[test]
    fn probe_resets_with_the_world() {
        use crate::metrics::MetricsProbe;
        let input_a = seq(&[1, 2, 0]);
        let input_b = seq(&[0, 2]);
        let mut pooled = tight(&input_a, 3, ResendPolicy::EveryTick)
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(DropHeavyScheduler::new(5, 0.3, 0.6)))
            .probe(Box::new(MetricsProbe::new()))
            .build()
            .unwrap();
        pooled.run(400);
        pooled.reset(&input_b, 9);
        pooled.run(400);
        let mut fresh = tight(&input_b, 3, ResendPolicy::EveryTick)
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(DropHeavyScheduler::new(9, 0.3, 0.6)))
            .probe(Box::new(MetricsProbe::new()))
            .build()
            .unwrap();
        fresh.run(400);
        assert_eq!(
            pooled.probe_of::<MetricsProbe>().unwrap().stats(),
            fresh.probe_of::<MetricsProbe>().unwrap().stats()
        );
        assert_eq!(pooled.stats(), fresh.stats());
    }

    #[test]
    fn timed_expiries_are_counted_and_evented_as_drops() {
        use stp_channel::TimedChannel;
        // A scheduler that never delivers: on a deadline-1 timed channel
        // every send expires at the end of its sending step.
        let input = seq(&[1, 0]);
        let mut w = tight(&input, 2, ResendPolicy::EveryTick)
            .channel(Box::new(TimedChannel::new(1)))
            .scheduler(Box::new(RandomScheduler::new(0, 0.0)))
            .build()
            .unwrap();
        w.run(50);
        let stats = w.stats();
        assert!(stats.drops > 0, "expiries must register as drops");
        let expire_events = w
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e.event, Event::ChannelExpire { .. }))
            .count();
        assert_eq!(stats.drops, expire_events);
        assert_eq!(stats, RunStats::of(w.trace()));
    }

    #[test]
    fn reset_replays_bit_identically() {
        let input_a = seq(&[1, 2, 0]);
        let input_b = seq(&[0, 2]);
        let mut pooled = tight(&input_a, 3, ResendPolicy::EveryTick)
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(DropHeavyScheduler::new(5, 0.3, 0.6)))
            .build()
            .unwrap();
        pooled.run(400);
        // Rewind onto a different input and seed; must match a fresh world.
        pooled.reset(&input_b, 9);
        pooled.run(400);
        let mut fresh = tight(&input_b, 3, ResendPolicy::EveryTick)
            .channel(Box::new(DelChannel::new()))
            .scheduler(Box::new(DropHeavyScheduler::new(9, 0.3, 0.6)))
            .build()
            .unwrap();
        fresh.run(400);
        assert_eq!(pooled.trace(), fresh.trace());
        assert_eq!(pooled.stats(), fresh.stats());
    }
}
