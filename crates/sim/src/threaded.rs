//! A threaded harness: the same lock-step semantics, with each protocol
//! state machine running on its own OS thread.
//!
//! The coordinator still drives the [`World`] loop — determinism is not
//! negotiable — but the processors live behind proxy objects that forward
//! events over crossbeam channels to worker threads. This exercises the
//! protocols under real concurrency (Send bounds, cross-thread moves,
//! backpressure) without giving up replayability, and provides a shared
//! [`Progress`] handle a monitoring thread can poll.

use crate::world::World;
use crossbeam::channel::{bounded, Receiver as CbReceiver, Sender as CbSender};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use stp_channel::{Channel, Scheduler};
use stp_core::alphabet::Alphabet;
use stp_core::data::DataSeq;
use stp_core::event::{Step, Trace};
use stp_core::proto::{
    Receiver, ReceiverEvent, ReceiverOutput, Sender, SenderEvent, SenderOutput,
};

/// Live progress of a threaded run, updated by the coordinator each step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Progress {
    /// Steps executed so far.
    pub steps: Step,
    /// Items written so far.
    pub written: usize,
    /// Whether the run has finished.
    pub done: bool,
}

/// Response from a sender worker.
struct SenderReply {
    out: SenderOutput,
    reads: usize,
    done: bool,
}

/// Proxy implementing [`Sender`] by round-tripping to a worker thread.
struct ProxySender {
    alphabet: Alphabet,
    tx: CbSender<SenderEvent>,
    rx: CbReceiver<SenderReply>,
    reads: usize,
    done: bool,
}

impl fmt::Debug for ProxySender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxySender")
            .field("reads", &self.reads)
            .field("done", &self.done)
            .finish()
    }
}

impl Sender for ProxySender {
    fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    fn on_event(&mut self, ev: SenderEvent) -> SenderOutput {
        self.tx.send(ev).expect("sender worker alive");
        let reply = self.rx.recv().expect("sender worker replies");
        self.reads = reply.reads;
        self.done = reply.done;
        reply.out
    }

    fn reads(&self) -> usize {
        self.reads
    }

    fn is_done(&self) -> bool {
        self.done
    }

    /// # Panics
    ///
    /// Thread-backed proxies cannot be cloned; the threaded harness never
    /// clones its processors.
    fn box_clone(&self) -> Box<dyn Sender> {
        unreachable!("ProxySender is not cloneable")
    }
}

/// Response from a receiver worker.
struct ReceiverReply {
    out: ReceiverOutput,
}

/// Proxy implementing [`Receiver`] by round-tripping to a worker thread.
struct ProxyReceiver {
    alphabet: Alphabet,
    tx: CbSender<ReceiverEvent>,
    rx: CbReceiver<ReceiverReply>,
}

impl fmt::Debug for ProxyReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyReceiver").finish()
    }
}

impl Receiver for ProxyReceiver {
    fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    fn on_event(&mut self, ev: ReceiverEvent) -> ReceiverOutput {
        self.tx.send(ev).expect("receiver worker alive");
        self.rx.recv().expect("receiver worker replies").out
    }

    /// # Panics
    ///
    /// Thread-backed proxies cannot be cloned.
    fn box_clone(&self) -> Box<dyn Receiver> {
        unreachable!("ProxyReceiver is not cloneable")
    }
}

fn spawn_sender(mut sender: Box<dyn Sender + Send>) -> (ProxySender, JoinHandle<()>) {
    let (ev_tx, ev_rx) = bounded::<SenderEvent>(1);
    let (re_tx, re_rx) = bounded::<SenderReply>(1);
    let alphabet = sender.alphabet();
    let handle = std::thread::spawn(move || {
        while let Ok(ev) = ev_rx.recv() {
            let out = sender.on_event(ev);
            let reply = SenderReply {
                out,
                reads: sender.reads(),
                done: sender.is_done(),
            };
            if re_tx.send(reply).is_err() {
                break;
            }
        }
    });
    (
        ProxySender {
            alphabet,
            tx: ev_tx,
            rx: re_rx,
            reads: 0,
            done: false,
        },
        handle,
    )
}

fn spawn_receiver(mut receiver: Box<dyn Receiver + Send>) -> (ProxyReceiver, JoinHandle<()>) {
    let (ev_tx, ev_rx) = bounded::<ReceiverEvent>(1);
    let (re_tx, re_rx) = bounded::<ReceiverReply>(1);
    let alphabet = receiver.alphabet();
    let handle = std::thread::spawn(move || {
        while let Ok(ev) = ev_rx.recv() {
            let out = receiver.on_event(ev);
            if re_tx.send(ReceiverReply { out }).is_err() {
                break;
            }
        }
    });
    (
        ProxyReceiver {
            alphabet,
            tx: ev_tx,
            rx: re_rx,
        },
        handle,
    )
}

/// Runs a protocol pair on worker threads until completion or `max_steps`,
/// returning the recorded trace. Semantically identical to driving a
/// [`World`] directly — and the tests assert exactly that.
pub fn run_threaded(
    input: DataSeq,
    sender: Box<dyn Sender + Send>,
    receiver: Box<dyn Receiver + Send>,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    max_steps: Step,
    progress: Option<Arc<Mutex<Progress>>>,
) -> Trace {
    let (s_proxy, s_handle) = spawn_sender(sender);
    let (r_proxy, r_handle) = spawn_receiver(receiver);
    let mut world = World::new(
        input,
        Box::new(s_proxy),
        Box::new(r_proxy),
        channel,
        scheduler,
    );
    while world.step_count() < max_steps && !world.is_complete() {
        world.step();
        if let Some(p) = &progress {
            let mut p = p.lock();
            p.steps = world.step_count();
            p.written = world.trace().output().len();
        }
    }
    if let Some(p) = &progress {
        p.lock().done = true;
    }
    let trace = world.into_trace();
    // Dropping the world drops the proxies, closing the event channels and
    // letting the workers exit.
    s_handle.join().expect("sender worker exits cleanly");
    r_handle.join().expect("receiver worker exits cleanly");
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DelChannel, DropHeavyScheduler, DupChannel, DupStormScheduler};
    use stp_protocols::{ResendPolicy, TightReceiver, TightSender};

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    #[test]
    fn threaded_run_completes() {
        let input = seq(&[2, 0, 1]);
        let trace = run_threaded(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 3, ResendPolicy::Once)),
            Box::new(TightReceiver::new(3, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(DupStormScheduler::new(5, 0.9)),
            5_000,
            None,
        );
        assert_eq!(trace.output(), input);
    }

    #[test]
    fn threaded_matches_single_threaded_exactly() {
        let input = seq(&[1, 3, 0, 2]);
        let mk_sched = || Box::new(DropHeavyScheduler::new(9, 0.3, 0.6));
        let threaded = run_threaded(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 4, ResendPolicy::EveryTick)),
            Box::new(TightReceiver::new(4, ResendPolicy::EveryTick)),
            Box::new(DelChannel::new()),
            mk_sched(),
            20_000,
            None,
        );
        let mut world = World::new(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 4, ResendPolicy::EveryTick)),
            Box::new(TightReceiver::new(4, ResendPolicy::EveryTick)),
            Box::new(DelChannel::new()),
            mk_sched(),
        );
        world.run_until(20_000, World::is_complete);
        assert_eq!(threaded, world.into_trace());
    }

    #[test]
    fn progress_is_published() {
        let input = seq(&[1, 0]);
        let progress = Arc::new(Mutex::new(Progress::default()));
        let trace = run_threaded(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 2, ResendPolicy::Once)),
            Box::new(TightReceiver::new(2, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(stp_channel::EagerScheduler::new()),
            1_000,
            Some(progress.clone()),
        );
        let p = progress.lock();
        assert!(p.done);
        assert_eq!(p.written, 2);
        assert_eq!(p.steps, trace.steps());
    }

    #[test]
    fn empty_input_threaded() {
        let trace = run_threaded(
            seq(&[]),
            Box::new(TightSender::new(seq(&[]), 2, ResendPolicy::Once)),
            Box::new(TightReceiver::new(2, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(stp_channel::EagerScheduler::new()),
            100,
            None,
        );
        assert_eq!(trace.output(), seq(&[]));
    }
}
