//! A threaded harness: the same lock-step semantics, with each protocol
//! state machine running on its own OS thread.
//!
//! The coordinator still drives the [`World`] loop — determinism is not
//! negotiable — but the processors live behind proxy objects that forward
//! events over crossbeam channels to worker threads. This exercises the
//! protocols under real concurrency (Send bounds, cross-thread moves,
//! backpressure) without giving up replayability, and provides a shared
//! [`Progress`] handle a monitoring thread can poll.
//!
//! A dead worker (panicked or hung up) is reported as
//! [`SimError::WorkerDied`] rather than panicking the coordinator: the
//! proxies raise a failure flag, the coordinator checks it every step,
//! and the run returns `Err` with the step it had reached.

use crate::error::SimError;
use crate::metrics::{MetricsProbe, RunStats};
use crate::prof::{Phase, PhaseProfiler, ProfObs};
use crate::world::World;
use crossbeam::channel::{bounded, Receiver as CbReceiver, Sender as CbSender};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use stp_channel::{Channel, Scheduler};
use stp_core::alphabet::Alphabet;
use stp_core::data::DataSeq;
use stp_core::event::{Step, Trace};
use stp_core::proto::{Receiver, ReceiverEvent, ReceiverOutput, Sender, SenderEvent, SenderOutput};

/// Live progress of a threaded run, updated by the coordinator each step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Progress {
    /// Steps executed so far.
    pub steps: Step,
    /// Items written so far.
    pub written: usize,
    /// Whether the run has finished.
    pub done: bool,
}

/// Response from a sender worker.
struct SenderReply {
    out: SenderOutput,
    reads: usize,
    done: bool,
}

/// Proxy implementing [`Sender`] by round-tripping to a worker thread.
struct ProxySender {
    alphabet: Alphabet,
    tx: CbSender<SenderEvent>,
    rx: CbReceiver<SenderReply>,
    reads: usize,
    done: bool,
    failed: Arc<AtomicBool>,
}

impl fmt::Debug for ProxySender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxySender")
            .field("reads", &self.reads)
            .field("done", &self.done)
            .finish()
    }
}

impl Sender for ProxySender {
    fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    fn on_event(&mut self, ev: SenderEvent) -> SenderOutput {
        if self.tx.send(ev).is_err() {
            self.failed.store(true, Ordering::SeqCst);
            return SenderOutput::idle();
        }
        match self.rx.recv() {
            Ok(reply) => {
                self.reads = reply.reads;
                self.done = reply.done;
                reply.out
            }
            Err(_) => {
                self.failed.store(true, Ordering::SeqCst);
                SenderOutput::idle()
            }
        }
    }

    fn reads(&self) -> usize {
        self.reads
    }

    fn is_done(&self) -> bool {
        self.done
    }

    /// # Panics
    ///
    /// Thread-backed proxies cannot be reset; the threaded harness builds
    /// fresh workers per run.
    fn reset(&mut self, _input: &DataSeq) {
        unreachable!("ProxySender is not resettable")
    }

    /// # Panics
    ///
    /// Thread-backed proxies cannot be cloned; the threaded harness never
    /// clones its processors.
    fn box_clone(&self) -> Box<dyn Sender> {
        unreachable!("ProxySender is not cloneable")
    }
}

/// Response from a receiver worker.
struct ReceiverReply {
    out: ReceiverOutput,
}

/// Proxy implementing [`Receiver`] by round-tripping to a worker thread.
struct ProxyReceiver {
    alphabet: Alphabet,
    tx: CbSender<ReceiverEvent>,
    rx: CbReceiver<ReceiverReply>,
    failed: Arc<AtomicBool>,
}

impl fmt::Debug for ProxyReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyReceiver").finish()
    }
}

impl Receiver for ProxyReceiver {
    fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    fn on_event(&mut self, ev: ReceiverEvent) -> ReceiverOutput {
        if self.tx.send(ev).is_err() {
            self.failed.store(true, Ordering::SeqCst);
            return ReceiverOutput::idle();
        }
        match self.rx.recv() {
            Ok(reply) => reply.out,
            Err(_) => {
                self.failed.store(true, Ordering::SeqCst);
                ReceiverOutput::idle()
            }
        }
    }

    /// # Panics
    ///
    /// Thread-backed proxies cannot be reset.
    fn reset(&mut self) {
        unreachable!("ProxyReceiver is not resettable")
    }

    /// # Panics
    ///
    /// Thread-backed proxies cannot be cloned.
    fn box_clone(&self) -> Box<dyn Receiver> {
        unreachable!("ProxyReceiver is not cloneable")
    }
}

fn spawn_sender(mut sender: Box<dyn Sender + Send>) -> (ProxySender, JoinHandle<()>) {
    let (ev_tx, ev_rx) = bounded::<SenderEvent>(1);
    let (re_tx, re_rx) = bounded::<SenderReply>(1);
    let alphabet = sender.alphabet();
    let handle = std::thread::spawn(move || {
        while let Ok(ev) = ev_rx.recv() {
            let out = sender.on_event(ev);
            let reply = SenderReply {
                out,
                reads: sender.reads(),
                done: sender.is_done(),
            };
            if re_tx.send(reply).is_err() {
                break;
            }
        }
    });
    (
        ProxySender {
            alphabet,
            tx: ev_tx,
            rx: re_rx,
            reads: 0,
            done: false,
            failed: Arc::new(AtomicBool::new(false)),
        },
        handle,
    )
}

fn spawn_receiver(mut receiver: Box<dyn Receiver + Send>) -> (ProxyReceiver, JoinHandle<()>) {
    let (ev_tx, ev_rx) = bounded::<ReceiverEvent>(1);
    let (re_tx, re_rx) = bounded::<ReceiverReply>(1);
    let alphabet = receiver.alphabet();
    let handle = std::thread::spawn(move || {
        while let Ok(ev) = ev_rx.recv() {
            let out = receiver.on_event(ev);
            if re_tx.send(ReceiverReply { out }).is_err() {
                break;
            }
        }
    });
    (
        ProxyReceiver {
            alphabet,
            tx: ev_tx,
            rx: re_rx,
            failed: Arc::new(AtomicBool::new(false)),
        },
        handle,
    )
}

/// Runs a protocol pair on worker threads until completion or `max_steps`,
/// returning the recorded trace. Semantically identical to driving a
/// [`World`] directly — and the tests assert exactly that.
///
/// # Errors
///
/// Returns [`SimError::WorkerDied`] if a worker thread panics or hangs up
/// mid-run, with the step the coordinator had reached.
pub fn run_threaded(
    input: DataSeq,
    sender: Box<dyn Sender + Send>,
    receiver: Box<dyn Receiver + Send>,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    max_steps: Step,
    progress: Option<Arc<Mutex<Progress>>>,
) -> Result<Trace, SimError> {
    run_threaded_inner(
        input, sender, receiver, channel, scheduler, max_steps, progress, false, None,
    )
    .map(|(trace, _)| trace)
}

/// [`run_threaded`] with a streaming [`MetricsProbe`] attached: the run's
/// [`RunStats`] come back computed online, so threaded harnesses get
/// statistics at the same cost as the pooled engine — no trace scan.
///
/// # Errors
///
/// Returns [`SimError::WorkerDied`] if a worker thread panics or hangs up
/// mid-run, with the step the coordinator had reached.
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_probed(
    input: DataSeq,
    sender: Box<dyn Sender + Send>,
    receiver: Box<dyn Receiver + Send>,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    max_steps: Step,
    progress: Option<Arc<Mutex<Progress>>>,
) -> Result<(Trace, RunStats), SimError> {
    run_threaded_inner(
        input, sender, receiver, channel, scheduler, max_steps, progress, true, None,
    )
    .map(|(trace, stats)| (trace, stats.expect("probe was attached")))
}

/// [`run_threaded`] with the whole run profiled as one window of `prof`:
/// phase time includes the proxy round-trips inside the sender/receiver
/// phases, so the cost of thread-hopping shows up exactly where it is
/// paid. `deliver`/`expire` name the channel kind (see
/// [`delivery_phase`](crate::prof::delivery_phase)). The trace is
/// identical to an unprofiled run.
///
/// # Errors
///
/// Returns [`SimError::WorkerDied`] if a worker thread panics or hangs up
/// mid-run, with the step the coordinator had reached.
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_prof(
    input: DataSeq,
    sender: Box<dyn Sender + Send>,
    receiver: Box<dyn Receiver + Send>,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    max_steps: Step,
    progress: Option<Arc<Mutex<Progress>>>,
    prof: &PhaseProfiler,
    deliver: Phase,
    expire: Phase,
) -> Result<Trace, SimError> {
    run_threaded_inner(
        input,
        sender,
        receiver,
        channel,
        scheduler,
        max_steps,
        progress,
        false,
        Some((prof, deliver, expire)),
    )
    .map(|(trace, _)| trace)
}

#[allow(clippy::too_many_arguments)]
fn run_threaded_inner(
    input: DataSeq,
    sender: Box<dyn Sender + Send>,
    receiver: Box<dyn Receiver + Send>,
    channel: Box<dyn Channel>,
    scheduler: Box<dyn Scheduler>,
    max_steps: Step,
    progress: Option<Arc<Mutex<Progress>>>,
    probed: bool,
    prof: Option<(&PhaseProfiler, Phase, Phase)>,
) -> Result<(Trace, Option<RunStats>), SimError> {
    let (s_proxy, s_handle) = spawn_sender(sender);
    let (r_proxy, r_handle) = spawn_receiver(receiver);
    let s_failed = s_proxy.failed.clone();
    let r_failed = r_proxy.failed.clone();
    let mut builder = World::builder(input)
        .sender(Box::new(s_proxy))
        .receiver(Box::new(r_proxy))
        .channel(channel)
        .scheduler(scheduler);
    if probed {
        builder = builder.probe(Box::new(MetricsProbe::new()));
    }
    let mut world = builder.build().expect("all components supplied");
    let worker_down = |step: Step| -> Option<SimError> {
        if s_failed.load(Ordering::SeqCst) {
            Some(SimError::WorkerDied {
                role: "sender",
                step,
            })
        } else if r_failed.load(Ordering::SeqCst) {
            Some(SimError::WorkerDied {
                role: "receiver",
                step,
            })
        } else {
            None
        }
    };
    let mut obs = prof.map(|_| ProfObs::begin());
    while world.step_count() < max_steps && !world.is_complete() {
        match (&mut obs, prof) {
            (Some(o), Some((_, deliver, expire))) => world.step_observed(o, deliver, expire),
            _ => world.step(),
        }
        if let Some(err) = worker_down(world.step_count()) {
            if let Some(p) = &progress {
                p.lock().done = true;
            }
            return Err(err);
        }
        if let Some(p) = &progress {
            let mut p = p.lock();
            p.steps = world.step_count();
            p.written = world.trace().output().len();
        }
    }
    if let (Some(o), Some((p, _, _))) = (obs.take(), prof) {
        o.finish(p);
    }
    if let Some(p) = &progress {
        p.lock().done = true;
    }
    let steps = world.step_count();
    let stats = world.probe_of::<MetricsProbe>().map(MetricsProbe::stats);
    let trace = world.into_trace();
    // Dropping the world drops the proxies, closing the event channels and
    // letting the workers exit.
    if s_handle.join().is_err() {
        return Err(SimError::WorkerDied {
            role: "sender",
            step: steps,
        });
    }
    if r_handle.join().is_err() {
        return Err(SimError::WorkerDied {
            role: "receiver",
            step: steps,
        });
    }
    Ok((trace, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_channel::{DelChannel, DropHeavyScheduler, DupChannel, DupStormScheduler};
    use stp_protocols::{ResendPolicy, TightReceiver, TightSender};

    fn seq(v: &[u16]) -> DataSeq {
        DataSeq::from_indices(v.iter().copied())
    }

    #[test]
    fn threaded_run_completes() {
        let input = seq(&[2, 0, 1]);
        let trace = run_threaded(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 3, ResendPolicy::Once)),
            Box::new(TightReceiver::new(3, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(DupStormScheduler::new(5, 0.9)),
            5_000,
            None,
        )
        .expect("workers stay alive");
        assert_eq!(trace.output(), input);
    }

    #[test]
    fn threaded_matches_single_threaded_exactly() {
        let input = seq(&[1, 3, 0, 2]);
        let mk_sched = || Box::new(DropHeavyScheduler::new(9, 0.3, 0.6));
        let threaded = run_threaded(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 4, ResendPolicy::EveryTick)),
            Box::new(TightReceiver::new(4, ResendPolicy::EveryTick)),
            Box::new(DelChannel::new()),
            mk_sched(),
            20_000,
            None,
        )
        .expect("workers stay alive");
        let mut world = World::builder(input.clone())
            .sender(Box::new(TightSender::new(
                input.clone(),
                4,
                ResendPolicy::EveryTick,
            )))
            .receiver(Box::new(TightReceiver::new(4, ResendPolicy::EveryTick)))
            .channel(Box::new(DelChannel::new()))
            .scheduler(mk_sched())
            .build()
            .unwrap();
        world.run_until(20_000, World::is_complete);
        assert_eq!(threaded, world.into_trace());
    }

    #[test]
    fn progress_is_published() {
        let input = seq(&[1, 0]);
        let progress = Arc::new(Mutex::new(Progress::default()));
        let trace = run_threaded(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 2, ResendPolicy::Once)),
            Box::new(TightReceiver::new(2, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(stp_channel::EagerScheduler::new()),
            1_000,
            Some(progress.clone()),
        )
        .expect("workers stay alive");
        let p = progress.lock();
        assert!(p.done);
        assert_eq!(p.written, 2);
        assert_eq!(p.steps, trace.steps());
    }

    #[test]
    fn probed_threaded_run_streams_its_stats() {
        let input = seq(&[1, 3, 0, 2]);
        let (trace, stats) = run_threaded_probed(
            input.clone(),
            Box::new(TightSender::new(input.clone(), 4, ResendPolicy::EveryTick)),
            Box::new(TightReceiver::new(4, ResendPolicy::EveryTick)),
            Box::new(DelChannel::new()),
            Box::new(DropHeavyScheduler::new(9, 0.3, 0.6)),
            20_000,
            None,
        )
        .expect("workers stay alive");
        assert_eq!(stats, crate::metrics::RunStats::of(&trace));
        assert!(stats.is_complete());
    }

    #[test]
    fn empty_input_threaded() {
        let trace = run_threaded(
            seq(&[]),
            Box::new(TightSender::new(seq(&[]), 2, ResendPolicy::Once)),
            Box::new(TightReceiver::new(2, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(stp_channel::EagerScheduler::new()),
            100,
            None,
        )
        .expect("workers stay alive");
        assert_eq!(trace.output(), seq(&[]));
    }

    /// A sender that panics when asked to handle its `n`-th event.
    #[derive(Debug, Clone)]
    struct PanickySender {
        inner: TightSender,
        events_left: usize,
    }

    impl Sender for PanickySender {
        fn alphabet(&self) -> Alphabet {
            self.inner.alphabet()
        }

        fn on_event(&mut self, ev: SenderEvent) -> SenderOutput {
            if self.events_left == 0 {
                panic!("injected worker crash");
            }
            self.events_left -= 1;
            self.inner.on_event(ev)
        }

        fn reads(&self) -> usize {
            self.inner.reads()
        }

        fn is_done(&self) -> bool {
            self.inner.is_done()
        }

        fn reset(&mut self, input: &DataSeq) {
            self.inner.reset(input);
        }

        fn box_clone(&self) -> Box<dyn Sender> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn dead_worker_is_an_error_not_a_panic() {
        let input = seq(&[2, 0, 1]);
        let crashy = PanickySender {
            inner: TightSender::new(input.clone(), 3, ResendPolicy::Once),
            events_left: 2,
        };
        // Silence the worker's panic message; restore the hook after.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = run_threaded(
            input,
            Box::new(crashy),
            Box::new(TightReceiver::new(3, ResendPolicy::Once)),
            Box::new(DupChannel::new()),
            Box::new(stp_channel::EagerScheduler::new()),
            1_000,
            None,
        );
        std::panic::set_hook(prev);
        match result {
            Err(SimError::WorkerDied {
                role: "sender",
                step,
            }) => {
                assert!(step >= 2, "crash surfaced at step {step}");
            }
            other => panic!("expected a sender WorkerDied error, got {other:?}"),
        }
    }
}
