//! Simulator-level errors.

use std::fmt;
use stp_core::event::Step;

/// Errors the executor can surface instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A worker thread of the threaded harness died (panicked or hung up)
    /// mid-run.
    WorkerDied {
        /// Which worker: `"sender"` or `"receiver"`.
        role: &'static str,
        /// The step the coordinator had reached when the death surfaced.
        step: Step,
    },
    /// A [`WorldBuilder`](crate::world::WorldBuilder) was finalized without
    /// one of its required parts.
    MissingComponent {
        /// Which part: `"sender"`, `"receiver"`, `"channel"` or
        /// `"scheduler"`.
        component: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WorkerDied { role, step } => {
                write!(f, "{role} worker thread died at step {step}")
            }
            SimError::MissingComponent { component } => {
                write!(f, "world builder is missing its {component}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_role_and_step() {
        let e = SimError::WorkerDied {
            role: "sender",
            step: 17,
        };
        assert_eq!(e.to_string(), "sender worker thread died at step 17");
    }

    #[test]
    fn display_names_the_missing_component() {
        let e = SimError::MissingComponent {
            component: "channel",
        };
        assert_eq!(e.to_string(), "world builder is missing its channel");
    }
}
