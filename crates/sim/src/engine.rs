//! The high-throughput sweep engine: one declarative [`SweepSpec`], a
//! pool of persistent worker [`World`]s, and a lock-free merge.
//!
//! The legacy sweep path boxed four fresh trait objects per grid cell
//! (sender, receiver, channel, scheduler) and recorded a full event trace
//! even when only the final statistics were wanted. [`SweepEngine`]
//! removes both costs:
//!
//! * **Pooled worlds** — each worker thread assembles one [`World`] per
//!   scheduler recipe the first time it meets it, then
//!   [`World::reset`]s it between runs. The reset contract (every
//!   component behaves as freshly constructed) makes this exactly
//!   equivalent to re-boxing, without the allocations.
//! * **Optional tracing** — the spec carries a
//!   [`TraceMode`]; under [`TraceMode::Off`] the run
//!   allocates no events at all and statistics come from the world's
//!   incremental counters.
//! * **Lock-free merge** — workers pull cells off a shared
//!   [`AtomicUsize`] cursor and keep their results in a private vector;
//!   the merge is a post-join sort, so no lock is ever contended.
//!
//! The grid itself is the cartesian product *schedulers × claimed
//! sequences × seeds*, flattened scheduler-major so a single-scheduler
//! spec reproduces the legacy sweep order bit-for-bit.

use crate::metrics::{MetricsProbe, RunStats};
use crate::prof::{delivery_phase, expiry_phase, PhaseProfiler};
use crate::runner::{MemberRun, SweepOutcome};
use crate::slo::SloConfig;
use crate::telemetry::ProgressMeter;
use crate::world::World;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use stp_channel::{ChannelSpec, SchedulerSpec};
use stp_core::data::DataSeq;
use stp_core::event::{Step, TraceMode};
use stp_protocols::ProtocolFamily;

/// A declarative description of an entire sweep: the grid, the channel
/// and adversary recipes, the tracing policy and the thread count. It is
/// plain serde data, so a spec can travel in a JSON config file or a bug
/// report and reproduce the sweep exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Step budget per run.
    pub max_steps: Step,
    /// Adversary seeds to try per sequence.
    pub seeds: Vec<u64>,
    /// What each run's trace remembers. Defaults to [`TraceMode::Full`];
    /// stats-only sweeps should use [`TraceMode::Off`].
    #[serde(default)]
    pub trace_mode: TraceMode,
    /// Worker threads. `0` (the default) means one per available core;
    /// `1` forces the serial path.
    #[serde(default)]
    pub threads: usize,
    /// Attach a streaming [`MetricsProbe`] to every pooled world and
    /// source each run's statistics from it (default `false`). With
    /// [`TraceMode::Off`] this is the cheapest configuration that still
    /// yields full per-run [`RunStats`].
    #[serde(default)]
    pub probe: bool,
    /// Attach a causal [`TraceProbe`](crate::trace::TraceProbe) to every
    /// pooled world (default `false`). This switches the channel's
    /// provenance bookkeeping on, so every run's per-message lifecycle is
    /// reconstructed — the most expensive observability configuration,
    /// benchmarked by `bench_sweep`'s traced lane.
    #[serde(default)]
    pub traced: bool,
    /// Channel recipe, rebuilt once per pooled world.
    pub channel: ChannelSpec,
    /// Adversary recipes; the grid runs every sequence × seed under each.
    pub schedulers: Vec<SchedulerSpec>,
    /// Optional recovery-SLO probe configuration riding along with the
    /// sweep (consumed by the E11 harness, ignored by the engine proper).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slo: Option<SloConfig>,
}

impl SweepSpec {
    /// A spec with the legacy defaults (10 000 steps, seeds `[0, 1, 2]`,
    /// full tracing, auto threads) over one channel and one adversary.
    pub fn new(channel: ChannelSpec, scheduler: SchedulerSpec) -> Self {
        SweepSpec {
            max_steps: 10_000,
            seeds: vec![0, 1, 2],
            trace_mode: TraceMode::default(),
            threads: 0,
            probe: false,
            traced: false,
            channel,
            schedulers: vec![scheduler],
            slo: None,
        }
    }

    /// Replaces the step budget.
    pub fn max_steps(mut self, max_steps: Step) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Replaces the seed list.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the tracing policy.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Replaces the worker-thread count (`0` = one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggles the streaming [`MetricsProbe`] on every pooled world.
    pub fn probe(mut self, probe: bool) -> Self {
        self.probe = probe;
        self
    }

    /// Toggles the causal [`TraceProbe`](crate::trace::TraceProbe) on
    /// every pooled world.
    pub fn traced(mut self, traced: bool) -> Self {
        self.traced = traced;
        self
    }

    /// Adds another adversary recipe to the grid.
    pub fn also_scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.schedulers.push(scheduler);
        self
    }

    /// Attaches a recovery-SLO probe configuration.
    pub fn slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }

    /// The number of grid cells this spec describes for `family`.
    pub fn grid_size(&self, family: &dyn ProtocolFamily) -> usize {
        self.schedulers.len() * family.claimed_family().len() * self.seeds.len()
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::Eager)
    }
}

/// The engine: owns a [`SweepSpec`] and runs protocol families through
/// it. Construction is free; all work happens in [`SweepEngine::run`].
#[derive(Debug, Clone)]
pub struct SweepEngine {
    spec: SweepSpec,
}

/// One grid cell: scheduler index, index into the family's claimed
/// sequences, adversary seed. Indices rather than owned sequences keep
/// the work list allocation-free however large the grid.
pub(crate) type Cell = (usize, usize, u64);

impl SweepEngine {
    /// Wraps a spec.
    pub fn new(spec: SweepSpec) -> Self {
        SweepEngine { spec }
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// Flattens the grid scheduler-major, then sequence, then seed — the
    /// legacy sweep order within each scheduler block.
    pub(crate) fn work_list(&self, claimed: &[DataSeq]) -> Vec<Cell> {
        let mut work =
            Vec::with_capacity(self.spec.schedulers.len() * claimed.len() * self.spec.seeds.len());
        for sched in 0..self.spec.schedulers.len() {
            for xi in 0..claimed.len() {
                for &seed in &self.spec.seeds {
                    work.push((sched, xi, seed));
                }
            }
        }
        work
    }

    /// Runs the whole grid across the spec's worker threads, pooling one
    /// world per (worker, scheduler recipe). Results are returned in grid
    /// order, identical to [`SweepEngine::run_serial`].
    pub fn run(&self, family: &(dyn ProtocolFamily + Sync)) -> SweepOutcome {
        self.run_observed(family, None)
    }

    /// [`SweepEngine::run`] with optional live progress: the meter is
    /// armed for the grid size and ticked once per finished run; workers
    /// announce themselves so liveness shows in every snapshot. Progress
    /// observation never changes the results.
    pub fn run_observed(
        &self,
        family: &(dyn ProtocolFamily + Sync),
        meter: Option<&ProgressMeter>,
    ) -> SweepOutcome {
        self.run_inner(family, meter, None)
    }

    /// [`SweepEngine::run`] with a phase profiler attached: every
    /// [`period`](PhaseProfiler::period)-th grid cell per worker runs as
    /// one profiled window, attributing time to [`Phase`](crate::prof::Phase)s
    /// split by the spec's channel kind. Results are bit-identical to an
    /// unprofiled run — profiling only observes (see `tests/prof_parity.rs`).
    pub fn run_profiled(
        &self,
        family: &(dyn ProtocolFamily + Sync),
        prof: &PhaseProfiler,
    ) -> SweepOutcome {
        self.run_inner(family, None, Some(prof))
    }

    fn run_inner(
        &self,
        family: &(dyn ProtocolFamily + Sync),
        meter: Option<&ProgressMeter>,
        prof: Option<&PhaseProfiler>,
    ) -> SweepOutcome {
        let threads = self.spec.resolved_threads();
        if threads <= 1 {
            return self.run_serial_inner(family, meter, prof);
        }
        let claimed = family.claimed_family();
        let work = self.work_list(claimed.seqs());
        if let Some(m) = meter {
            m.begin(work.len());
        }
        let cursor = AtomicUsize::new(0);
        let spec = &self.spec;
        let claimed = &claimed;
        let work = &work;
        let cursor = &cursor;
        let buckets: Vec<Vec<(usize, MemberRun)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        // The pool: one lazily built world per scheduler
                        // recipe, reset between cells. Worlds never cross
                        // threads, so no Send bound is needed on the
                        // boxed components.
                        if let Some(m) = meter {
                            m.worker_started();
                        }
                        let mut worlds: Vec<Option<World>> =
                            (0..spec.schedulers.len()).map(|_| None).collect();
                        let mut out = Vec::new();
                        // Per-worker sampling tick: each worker profiles
                        // every `period`-th of *its own* cells, so the
                        // sampled share is period-independent of the
                        // thread count.
                        let mut tick: u64 = 0;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= work.len() {
                                break;
                            }
                            let cell_prof = prof.filter(|p| {
                                tick += 1;
                                p.sample(tick)
                            });
                            let (sched, xi, seed) = work[i];
                            out.push((
                                i,
                                run_cell(
                                    &mut worlds,
                                    family,
                                    spec,
                                    sched,
                                    &claimed.seqs()[xi],
                                    seed,
                                    cell_prof,
                                ),
                            ));
                            if let Some(m) = meter {
                                m.record_done(1);
                            }
                        }
                        if let Some(m) = meter {
                            m.worker_finished();
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        let mut indexed: Vec<(usize, MemberRun)> = buckets.into_iter().flatten().collect();
        indexed.sort_unstable_by_key(|(i, _)| *i);
        let outcome = SweepOutcome::from_runs(indexed.into_iter().map(|(_, r)| r).collect());
        if let Some(m) = meter {
            m.finish();
        }
        outcome
    }

    /// Runs the whole grid on the calling thread with one pooled world
    /// per scheduler recipe.
    pub fn run_serial(&self, family: &dyn ProtocolFamily) -> SweepOutcome {
        self.run_serial_observed(family, None)
    }

    /// [`SweepEngine::run_serial`] with optional live progress.
    pub fn run_serial_observed(
        &self,
        family: &dyn ProtocolFamily,
        meter: Option<&ProgressMeter>,
    ) -> SweepOutcome {
        self.run_serial_inner(family, meter, None)
    }

    /// [`SweepEngine::run_serial`] with a phase profiler attached; see
    /// [`SweepEngine::run_profiled`].
    pub fn run_serial_profiled(
        &self,
        family: &dyn ProtocolFamily,
        prof: &PhaseProfiler,
    ) -> SweepOutcome {
        self.run_serial_inner(family, None, Some(prof))
    }

    fn run_serial_inner(
        &self,
        family: &dyn ProtocolFamily,
        meter: Option<&ProgressMeter>,
        prof: Option<&PhaseProfiler>,
    ) -> SweepOutcome {
        let mut worlds: Vec<Option<World>> =
            (0..self.spec.schedulers.len()).map(|_| None).collect();
        let claimed = family.claimed_family();
        let work = self.work_list(claimed.seqs());
        if let Some(m) = meter {
            m.begin(work.len());
            m.worker_started();
        }
        let mut tick: u64 = 0;
        let runs = work
            .into_iter()
            .map(|(sched, xi, seed)| {
                let cell_prof = prof.filter(|p| {
                    tick += 1;
                    p.sample(tick)
                });
                let run = run_cell(
                    &mut worlds,
                    family,
                    &self.spec,
                    sched,
                    &claimed.seqs()[xi],
                    seed,
                    cell_prof,
                );
                if let Some(m) = meter {
                    m.record_done(1);
                }
                run
            })
            .collect();
        let outcome = SweepOutcome::from_runs(runs);
        if let Some(m) = meter {
            m.worker_finished();
            m.finish();
        }
        outcome
    }
}

/// Executes one grid cell on a pooled world, building it on first use and
/// resetting it otherwise. The reset path and the fresh-build path are
/// behaviourally identical by the component reset contract — the parity
/// test in `tests/parity.rs` pins this down against the legacy runner.
pub(crate) fn run_cell(
    worlds: &mut [Option<World>],
    family: &dyn ProtocolFamily,
    spec: &SweepSpec,
    sched: usize,
    x: &DataSeq,
    seed: u64,
    prof: Option<&PhaseProfiler>,
) -> MemberRun {
    let slot = &mut worlds[sched];
    let world = match slot {
        Some(w) => {
            w.reset(x, seed);
            w
        }
        None => {
            let mut builder = World::builder(x.clone())
                .sender(family.sender_for(x))
                .receiver(family.receiver())
                .channel(spec.channel.build())
                .scheduler(spec.schedulers[sched].build(seed))
                .mode(spec.trace_mode);
            if spec.probe {
                builder = builder.probe(Box::new(MetricsProbe::new()));
            }
            if spec.traced {
                builder = builder.probe(Box::new(crate::trace::TraceProbe::new()));
            }
            slot.insert(builder.build().expect("engine supplies every component"))
        }
    };
    match prof {
        // A sampled cell: the whole run is one profiling window, with
        // channel cost split by the spec's channel kind. Unsampled cells
        // take the unchanged fast path.
        Some(p) => {
            world.run_until_profiled(
                spec.max_steps,
                World::is_complete,
                p,
                delivery_phase(&spec.channel),
                expiry_phase(&spec.channel),
            );
        }
        None => {
            world.run_until(spec.max_steps, World::is_complete);
        }
    }
    // With a probe attached, statistics come from the streaming path —
    // the parity tests pin this to the world's incremental counters and
    // to trace-derived stats.
    let stats: RunStats = match world.probe_of::<MetricsProbe>() {
        Some(p) => p.stats(),
        None => world.stats(),
    };
    let trace = if spec.trace_mode == TraceMode::Off {
        None
    } else {
        Some(world.trace().clone())
    };
    MemberRun {
        input: x.clone(),
        seed,
        scheduler: sched,
        stats,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_protocols::{ResendPolicy, TightFamily};

    fn storm_spec() -> SweepSpec {
        SweepSpec::new(ChannelSpec::Dup, SchedulerSpec::DupStorm { p_deliver: 0.9 })
            .max_steps(5_000)
            .seeds([0, 7])
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = storm_spec()
            .trace_mode(TraceMode::WritesOnly)
            .threads(3)
            .also_scheduler(SchedulerSpec::Reorder)
            .slo(SloConfig::wipeout(3, 20_000));
        let json = serde_json::to_string_pretty(&spec).expect("serializes");
        let back: SweepSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_defaults_apply_when_fields_are_omitted() {
        // trace_mode, threads and slo are optional in the wire format.
        let json = r#"{
            "max_steps": 100,
            "seeds": [4],
            "channel": "Del",
            "schedulers": ["Eager"]
        }"#;
        let spec: SweepSpec = serde_json::from_str(json).expect("parses");
        assert_eq!(spec.trace_mode, TraceMode::Full);
        assert_eq!(spec.threads, 0);
        assert!(!spec.probe);
        assert!(!spec.traced);
        assert_eq!(spec.slo, None);
    }

    #[test]
    fn traced_sweeps_reconcile_and_change_no_stats() {
        use crate::trace::TraceProbe;
        let family = TightFamily::new(3, ResendPolicy::Once);
        let plain = SweepEngine::new(storm_spec().threads(1)).run_serial(&family);
        let traced_spec = storm_spec()
            .trace_mode(TraceMode::Off)
            .probe(true)
            .traced(true)
            .threads(1);
        let traced = SweepEngine::new(traced_spec.clone()).run_serial(&family);
        assert_eq!(plain.len(), traced.len());
        for (a, b) in plain.runs.iter().zip(&traced.runs) {
            assert_eq!(a.stats, b.stats, "tracing must not change behaviour");
        }
        // The flag survives the wire format.
        let json = serde_json::to_string(&traced_spec).expect("serializes");
        let back: SweepSpec = serde_json::from_str(&json).expect("parses");
        assert!(back.traced);
        // And a traced world really carries a reconciling TraceProbe.
        let mut worlds: Vec<Option<World>> = vec![None];
        // A non-empty sequence, so the run actually exercises the channel.
        let claimed = family.claimed_family();
        let x = claimed
            .seqs()
            .iter()
            .max_by_key(|s| s.len())
            .unwrap()
            .clone();
        let run = run_cell(&mut worlds, &family, &traced_spec, 0, &x, 0, None);
        let world = worlds[0].as_ref().unwrap();
        let probe = world
            .probe_of::<TraceProbe>()
            .expect("trace probe attached");
        probe.reconcile(&run.stats).expect("spans reconcile");
        assert!(!probe.spans().is_empty());
    }

    #[test]
    fn probed_off_mode_matches_traced_stats_bit_for_bit() {
        // The satellite-3 guarantee: attaching probes changes nothing
        // about the results, and the cheapest configuration (Off + probe)
        // yields the same per-run stats and aggregate report as a fully
        // traced sweep.
        let family = TightFamily::new(3, ResendPolicy::Once);
        let traced = SweepEngine::new(storm_spec().threads(1)).run_serial(&family);
        let probed = SweepEngine::new(
            storm_spec()
                .trace_mode(TraceMode::Off)
                .probe(true)
                .threads(4),
        )
        .run(&family);
        assert_eq!(traced.len(), probed.len());
        for (a, b) in traced.runs.iter().zip(&probed.runs) {
            assert_eq!(a.stats, b.stats, "probe path must match trace path");
            assert!(b.trace.is_none());
        }
        assert_eq!(traced.report, probed.report);
    }

    #[test]
    fn observed_run_reports_progress_without_changing_results() {
        use crate::telemetry::ProgressMeter;
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let family = TightFamily::new(3, ResendPolicy::Once);
        let engine = SweepEngine::new(storm_spec().threads(2));
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = ticks.clone();
        let meter = ProgressMeter::new(std::time::Duration::ZERO, move |snap| {
            seen.fetch_add(1, Ordering::Relaxed);
            assert!(snap.done <= snap.total);
        });
        let observed = engine.run_observed(&family, Some(&meter));
        let plain = engine.run(&family);
        assert_eq!(observed.runs, plain.runs);
        assert!(ticks.load(Ordering::Relaxed) > 0, "meter must fire");
        let final_snap = meter.snapshot();
        assert_eq!(final_snap.done, observed.len());
        assert_eq!(final_snap.workers_alive, 0);
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let family = TightFamily::new(3, ResendPolicy::Once);
        let engine = SweepEngine::new(storm_spec().threads(4));
        let serial = engine.run_serial(&family);
        let parallel = engine.run(&family);
        assert_eq!(serial.runs, parallel.runs);
        assert!(parallel.all_complete(), "failures: {:?}", parallel.failures);
    }

    #[test]
    fn multi_scheduler_grids_tag_runs_with_their_recipe_index() {
        let family = TightFamily::new(2, ResendPolicy::EveryTick);
        let spec = SweepSpec::new(ChannelSpec::Del, SchedulerSpec::Eager)
            .also_scheduler(SchedulerSpec::DropHeavy {
                p_drop: 0.3,
                p_deliver: 0.6,
            })
            .max_steps(20_000)
            .seeds([3])
            .threads(1);
        let outcome = SweepEngine::new(spec).run_serial(&family);
        let grid = family.claimed_family().len();
        assert_eq!(outcome.len(), grid * 2);
        assert!(outcome.runs[..grid].iter().all(|r| r.scheduler == 0));
        assert!(outcome.runs[grid..].iter().all(|r| r.scheduler == 1));
        assert!(outcome.all_complete(), "failures: {:?}", outcome.failures);
    }

    #[test]
    fn campaign_reset_survives_pooled_reuse_bit_identically() {
        // Regression guard for the pooled-world path: a CampaignScheduler
        // carries per-clause firing state, an OnWrite progress latch and a
        // PRNG cursor, all of which must be fully rewound by reset() when
        // the SweepEngine reuses a world across cells. A second lap over
        // 32 seeds must be bit-identical, and every pooled cell must match
        // a world built fresh for that cell.
        use stp_channel::campaign::{Direction, FaultAction, FaultClause, FaultPlan, Trigger};
        let family = TightFamily::new(3, ResendPolicy::EveryTick);
        let plan = FaultPlan::new(11)
            .with(
                FaultClause::new(FaultAction::StateScramble, Trigger::OnWrite { index: 1 })
                    .direction(Direction::ToReceiver),
            )
            .with(
                FaultClause::new(
                    FaultAction::DeletionBurst { copies: 1 },
                    Trigger::EveryK {
                        period: 7,
                        offset: 3,
                    },
                )
                .repeats(3),
            );
        let spec = SweepSpec::new(
            ChannelSpec::Del,
            SchedulerSpec::Campaign {
                inner: Box::new(SchedulerSpec::Eager),
                plan,
            },
        )
        .max_steps(5_000)
        .seeds(0..32)
        .threads(1);
        let engine = SweepEngine::new(spec.clone());
        let first = engine.run_serial(&family);
        let second = engine.run_serial(&family);
        assert_eq!(first.runs, second.runs, "second lap diverged");
        // The scramble clause must actually have fired somewhere, or this
        // test guards nothing.
        assert!(
            first.runs.iter().any(|r| r.trace.as_ref().is_some_and(|t| t
                .events()
                .iter()
                .any(|e| matches!(e.event, stp_core::event::Event::Corruption { .. })))),
            "no corruption fired anywhere in the sweep"
        );
        for run in &first.runs {
            let mut w = World::builder(run.input.clone())
                .sender(family.sender_for(&run.input))
                .receiver(family.receiver())
                .channel(spec.channel.build())
                .scheduler(spec.schedulers[0].build(run.seed))
                .build()
                .expect("all components supplied");
            w.run_until(spec.max_steps, World::is_complete);
            assert_eq!(&w.stats(), &run.stats, "seed {}: stats", run.seed);
            assert_eq!(
                Some(w.trace()),
                run.trace.as_ref(),
                "seed {}: trace",
                run.seed
            );
        }
    }

    #[test]
    fn off_mode_runs_carry_no_trace_but_full_stats() {
        let family = TightFamily::new(3, ResendPolicy::Once);
        let engine = SweepEngine::new(storm_spec().trace_mode(TraceMode::Off).threads(1));
        let with_trace = SweepEngine::new(storm_spec().threads(1)).run_serial(&family);
        let without = engine.run_serial(&family);
        assert_eq!(with_trace.len(), without.len());
        for (a, b) in with_trace.runs.iter().zip(&without.runs) {
            assert!(a.trace.is_some());
            assert!(b.trace.is_none());
            assert_eq!(a.stats, b.stats, "tracing must not change behaviour");
        }
    }
}
